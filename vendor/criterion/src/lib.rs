//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real crates-io
//! `criterion` cannot be fetched. This shim keeps the workspace's
//! `cargo bench` targets compiling and running: each benchmark measures
//! median-of-samples wall time with a warmup phase and prints a
//! `name  time: X ns/iter (throughput)` line. There are no HTML reports,
//! no statistical regression analysis and no saved baselines.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLE_MS` — per-sample budget in milliseconds (default 20).
//! * `CRITERION_SAMPLES` — samples per benchmark (default 11; the
//!   reported time is the median sample).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units of work per iteration, reported alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_budget: Duration,
    samples: usize,
    /// Median ns/iter of the collected samples, populated by `iter`.
    measured_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns-per-iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that fills the
        // per-sample budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_budget / 4 || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
                let budget_ns = self.sample_budget.as_nanos() as f64;
                iters = ((budget_ns / per_iter).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.measured_ns = samples[samples.len() / 2];
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    sample_count: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_budget: Duration::from_millis(env_u64("CRITERION_SAMPLE_MS", 20)),
        samples: env_u64("CRITERION_SAMPLES", sample_count as u64).max(1) as usize,
        measured_ns: f64::NAN,
    };
    f(&mut b);
    let mut line = format!("{name:<44} time: {:>12.1} ns/iter", b.measured_ns);
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / (b.measured_ns * 1e-9);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!("   thrpt: {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, 11, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            throughput: None,
            sample_count: 11,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput reported for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        run_one(&name, self.throughput, self.sample_count, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, N: fmt::Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        run_one(&name, self.throughput, self.sample_count, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
