//! Deterministic RNG and per-test configuration for the proptest shim.

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what and with which values.
    Fail(String),
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
}

/// Result type the `proptest!` body closure evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the full-workspace suite
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A small, fast, deterministic PRNG (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes), so
    /// every test gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is ≤ 2⁻⁶⁴·bound,
        // immaterial for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
