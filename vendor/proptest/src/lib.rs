//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real crates-io
//! `proptest` cannot be fetched. This shim implements exactly the API
//! surface the workspace's property tests use — `proptest!`,
//! `prop_assert*!`, `prop_assume!`, `prop_oneof!`, `Just`, `any`,
//! integer/float range strategies, tuple strategies, `.prop_map` and
//! `proptest::collection::vec` — on top of a small deterministic PRNG.
//!
//! Semantics differ from the real crate in two accepted ways: failing
//! cases are not shrunk (the failing input is printed as generated), and
//! the RNG is seeded from the test name, so runs are fully reproducible.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests over generated inputs.
///
/// Supports the two forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..9)) { ... }
/// }
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                    )+
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64) + 4096,
                                "proptest shim: too many rejected cases in {}",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\n  inputs: {}",
                                accepted + 1,
                                stringify!($name),
                                msg,
                                format!(
                                    concat!($(stringify!($arg), " = {:?}; "),+),
                                    $(&$arg),+
                                ),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("expected {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("expected {:?} == {:?}: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("expected {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("expected {:?} != {:?}: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discards the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                {
                    let s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::gen_value(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }
            ),+
        ])
    };
}
