//! `any::<T>()` support for the proptest shim.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only — ample for property tests over parameters.
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.next_u32() % 0xD800).unwrap_or('\u{fffd}')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! tuple_arbitrary {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

tuple_arbitrary! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
