//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;

/// Something that can generate values of one type from the test RNG.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A type-erased variant generator, as built by `prop_oneof!`.
pub type VariantFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// The strategy built by `prop_oneof!`: a uniform choice among variants
/// that all produce the same value type (erased behind closures so the
/// variants may be heterogeneous strategy types).
pub struct Union<V> {
    variants: Vec<VariantFn<V>>,
}

impl<V> Union<V> {
    /// Wraps the variant generators (`prop_oneof!` builds this list).
    pub fn new(variants: Vec<VariantFn<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.variants.len() as u64) as usize;
        (self.variants[idx])(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Ranges wider than u64 do not occur in practice here.
                let off = rng.below(span.min(u64::MAX as u128) as u64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = rng.below(span.min(u64::MAX as u128) as u64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
