//! Collection strategies for the proptest shim.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
