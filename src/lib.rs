//! # rev — facade crate for the REV reproduction
//!
//! Re-exports the workspace's public API under one roof. See the
//! [README](https://github.com/rev-sim/rev) and `DESIGN.md` for the system
//! inventory, and the `examples/` directory for runnable walkthroughs:
//!
//! * `quickstart` — assemble, protect, and run a tiny program,
//! * `attack_detection` — the paper's Table 1, executable,
//! * `spec_overhead` — base-vs-REV IPC on a SPEC-like workload,
//! * `validation_modes` — standard vs aggressive vs CFI-only.
//!
//! ```
//! use rev::core::{RevConfig, RevSimulator};
//! use rev::prog::{ModuleBuilder, Program};
//! use rev::isa::{Instruction, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new("hello", 0x1000);
//! b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
//! b.push(Instruction::Halt);
//! let mut pb = Program::builder();
//! pb.module(b.finish()?);
//! let mut sim = RevSimulator::new(pb.build(), RevConfig::paper_default())?;
//! let report = sim.run(1_000);
//! assert!(report.rev.violation.is_none());
//! # Ok(())
//! # }
//! ```

/// The Table 1 attack framework.
pub use rev_attacks as attacks;
/// The REV mechanism and top-level simulator.
pub use rev_core as core;
/// The out-of-order core.
pub use rev_cpu as cpu;
/// CubeHash, AES-128 and the CHG model.
pub use rev_crypto as crypto;
/// The synthetic byte-encoded ISA.
pub use rev_isa as isa;
/// The memory hierarchy.
pub use rev_mem as mem;
/// Programs, modules, the assembler and static CFG analysis.
pub use rev_prog as prog;
/// Encrypted reference signature tables.
pub use rev_sigtable as sigtable;
/// SPEC CPU 2006 statistical workloads.
pub use rev_workloads as workloads;
