#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from reproduce_all's output + ablation logs.

Run from the repository root after:
  cargo run --release -p rev-bench --bin reproduce_all > reproduce_all_output.txt

which also writes the machine-readable snapshot BENCH_rev.json; when that
file is present, Table 1 is rendered from its `attacks` array instead of
being scraped from the text (same data, sturdier source). Ablation logs
(ablation_*.txt) are picked up if regenerated, else the previous pass's
text is kept.
"""
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
out = (ROOT / "reproduce_all_output.txt").read_text()


def table1():
    """Table 1 from the JSON snapshot when available, else the text dump."""
    snap_path = ROOT / "BENCH_rev.json"
    if not snap_path.exists():
        return section("=== Table 1")
    snap = json.loads(snap_path.read_text())
    assert snap["schema"] == "rev-trace/1", snap["schema"]
    lines = []
    for a in snap["attacks"]:
        lines.append(
            f"  {a['kind']:<28} detected: {str(a['detected']).lower():<5} "
            f"via {a['violation'] or '-'}"
        )
    return "\n".join(lines)

def audit_table():
    """Per-profile protection-coverage / latency-bound table from the
    snapshot's `audit` registries (rev-lint's rev-audit pass)."""
    snap_path = ROOT / "BENCH_rev.json"
    if not snap_path.exists():
        return "(BENCH_rev.json not present in this pass)"
    snap = json.loads(snap_path.read_text())
    rows = []
    for profile in sorted(snap["profiles"]):
        a = snap["profiles"][profile].get("audit")
        if a is None:
            return "(snapshot predates the audit registry; regenerate)"

        def guarded(mode):
            total = a[f"audit.{mode}.edges"]
            g = total - a[f"audit.{mode}.edges.unguarded"]
            return f"{g}/{total}"

        aliases = (
            f"{a['audit.cfi.collision.colliding']} in "
            f"{a['audit.cfi.collision.classes']}"
            if a["audit.cfi.collision.colliding"]
            else "none"
        )
        rows.append(
            f"| {profile} | {guarded('std')} | {guarded('aggr')} | "
            f"{guarded('cfi')} | {aliases} | {a['audit.std.latency.bound']} |"
        )
    head = (
        "| profile | std guarded | aggr guarded | cfi guarded "
        "| cfi tag aliases | latency bound |\n|---|---|---|---|---|---|"
    )
    return head + "\n" + "\n".join(rows)


def section(name, stop="==="):
    start = out.index(name)
    start = out.index("\n", start) + 1
    end = out.find(stop, start)
    if end == -1:
        end = len(out)
    return out[start:end].rstrip()

def ablation(fname):
    p = ROOT / fname
    return p.read_text().rstrip() if p.exists() else "(not regenerated in this pass)"

doc = f"""# EXPERIMENTS — paper vs. measured

Every number below regenerates with one command (see `README.md`). This
pass used the default methodology: per benchmark, a 400 000-instruction
warmup (statistics discarded) followed by a 2 000 000-instruction
measurement window at full workload scale, on the Table 2 machine. The
paper measured 2×10⁹ instructions per benchmark on MARSS/x86-64; see
`DESIGN.md` for the substitution and scaling arguments.

**Reading guide.** Absolute IPCs are not comparable to the paper's testbed
(different ISA, simpler core model). What is compared is the *shape*:
which attacks are caught and how, which benchmarks pay for REV and why
(SC working sets, Figs. 8–11), how the modes rank, and where the averages
land.

**Regenerating.** One command produces everything below (tables on
stdout, plus the machine-readable `BENCH_rev.json` snapshot documented in
`docs/METRICS.md`); a second assembles this file:

```sh
cargo run --release -p rev-bench --bin reproduce_all > reproduce_all_output.txt
python3 scripts/make_experiments.py > EXPERIMENTS.md
```

Table 1 is rendered from the snapshot's `attacks` array. To check a new
pass against the committed quick-mode reference, run
`cargo run --release -p rev-trace -- compare baselines/quick.json BENCH_rev.json`
(`scripts/check.sh` does this automatically as a soft gate).

## Table 1 — attacks, detection, containment

Paper: qualitative table of six attack classes and the REV check that
catches each. Measured (plus table tampering from Sec. VII; "unprotected"
runs demonstrate the attacks genuinely compromise a machine without REV):

```
{table1()}
```

(Rendered from `BENCH_rev.json`'s `attacks` array.) Matches the paper
mechanism-for-mechanism: code injection → BB hash;
ROP/return-to-libc → return linkage (the delayed return check);
JOP/vtable → computed-target membership. In every case the malicious
store was quarantined and discarded — the harness's taint canaries stayed
clean in both containment modes (requirement R5).

## Table 2 — machine configuration

`table2_config` prints the simulated configuration; it reproduces the
paper's Table 2 values exactly (fetch queue 32, dispatch width 4, ROB 128,
LSQ 92, 256-register unified file, 2 ALU/2 FPU/2 load+2 store units,
64 KiB/4-way L1s at 2 cycles, 512 KiB/8-way L2 at 5 cycles, 100-cycle
first-chunk DRAM with 8 banks and 64-byte bursts, 32/128/512-entry TLBs,
32K gshare, S = H = 16).

## Sec. VIII — basic-block statistics

Paper anchors: static BBs 20 266 (mcf) … 92 218 (gamess); instructions/BB
5.5 (mcf) … 10.02 (gamess); successors/BB 1.68 (soplex) … 3.339 (gamess).
Measured over the generated suite:

```
{section("=== Sec. VIII BB statistics")}
```

mcf lands on its anchor (the profile is calibrated to it); the suite-wide
ranges overlap the paper's. Successor means run lower than the paper's
because our CFG counts the *dynamic-block* out-degree (one successor per
static fall-through/jump), while the paper's averages include the
multi-target entries of computed branches more heavily; the computed-BB
counts are reported alongside.

## Figure 6 — IPC: base vs REV-32K vs REV-64K

```
{section("=== Figure 6")}
```

## Figure 7 — IPC overhead (the headline result)

Paper: average 1.87 % (32 KiB SC) and 1.63 % (64 KiB); gobmk worst at
≈15 %, gcc next; everything else under 5 %.

```
{section("=== Figure 7")}
```

Shape reproduced: gobmk is worst (12.0 %), gcc second (11.1 %),
h264ref/dealII/gamess/hmmer form the moderate band, and the remaining
twelve benchmarks sit at or under ~2 % — including the exact set the
paper lists as having "a small set of unique branch addresses and very
low SC miss rate" (bzip2, cactusADM, calculix, hmmer, leslie3d,
libquantum, mcf, milc, soplex, sjeng). The averages (3.05 % / 1.96 %) run
≈1.6× the paper's, consistent with our 1000×-shorter measurement windows
carrying a larger relative share of SC-working-set turnover; the 64 KiB
column shows the same strong capacity sensitivity the paper reports.

## Figure 8 — committed branches

```
{section("=== Figure 8")}
```

Branch density tracks the instructions/BB statistics (mcf/gcc/gobmk/sjeng
branchiest; the FP codes sparsest), as in the paper.

## Figure 9 — unique branches

```
{section("=== Figure 9")}
```

gcc and gobmk dominate, exactly the paper's explanation for their Fig. 7
overhead ("for gcc, both the number of unique branches encountered and
the total number of committed branches are very high").

## Figure 10 — signature-cache misses (32 KiB SC)

```
{section("=== Figure 10")}
```

gobmk has the most SC misses, gcc next — the paper's stated reason gobmk
is the worst overhead ("gobmk has more SC misses and more L1 misses than
gcc"). Partial misses (successor records fetched from spill entries)
concentrate in the indirect-branch-heavy profiles.

## Figure 11 — cache behavior while servicing SC misses

```
{section("=== Figure 11")}
```

As in the paper, gcc/gobmk combine high SC miss counts with poor cache
behavior on the fill path (most fills go to DRAM), while the low-overhead
benchmarks service their few fills from L1D/L2.

## Figure 12 — aggressive validation

Paper: "slightly better performance because now we can verify the
addresses of up to two successors using a single entry."

```
{section("=== Figure 12")}
```

**Divergence (documented):** in this reproduction, aggressive mode is
*costlier* than standard, not slightly cheaper. With the SC capacity held
at 32 KiB, doubling the entry size to 32 bytes halves the number of
resident entries, and the capacity-limited benchmarks (gcc, gobmk,
h264ref, sjeng, dealII, gamess) pay for it; the 64 KiB aggressive column
(≈ the same entry *count* as 32 KiB standard) lands close to 32 KiB
standard, confirming the capacity explanation. Our standard mode also
never consults the second successor of a static branch (the hash already
authenticates it), so it cannot be sped up by inlining one.

## Sec. V.D — CFI-only validation

Paper: 0.04 %–1.68 % overhead; ~10 % of executed branches are computed.

```
{section("=== Sec. V.D: CFI-only overhead %")}
```

Squarely inside the paper's band, with the same worst cases.

## Secs. V.B–V.D — signature-table sizes

Paper: standard 15–52 % of the binary (avg 37 %); aggressive 40–65 %
("almost double"); CFI-only 3–20 % (avg 9 %).

```
{ablation("table_sizes_final.txt") if (ROOT / "table_sizes_final.txt").exists() else section("=== Secs. V.B-V.D")}
```

The *ratios between modes* match (aggressive ≈ 2.2× standard; CFI-only
≈ 1/15 of standard). Standard-mode absolute ratios run ≈1.7× the paper's
band: our entries are AES-block-aligned at 16 bytes where the paper packs
≈10 bytes with offset/implicit-field tricks, and our generated blocks
average fewer code bytes than x86 SPEC blocks. Applying the 10/16 packing
factor puts the measured average on the paper's 37 %.

## Protection-coverage audit (rev-audit, DESIGN.md §11)

Static per-edge protection coverage, CFI tag aliasing and worst-case
detection-latency bounds, computed by `rev-lint --audit` from the CFG
and the built tables and exported in the snapshot's `audit` registries.
"Guarded" counts CFG edges carrying at least one check (body hash,
target check, return latch, or store containment); the hashed modes
cover every edge by construction (REV-A120 tripwire), while CFI-only's
gap is its designed trade-off (REV-A121). "CFI tag aliases" is the
count of entries whose 12-bit source tags collide (entries in classes)
— structural pigeonhole aliasing absent from the hashed modes. The
latency bound (standard mode, commits) is validated dynamically: the
audit oracle (`rev-chaos --audit`, hard gate in `scripts/check.sh`)
fault-measures real detection latencies per profile and fails on any
measurement above its bound, and mounts all 7 attack classes under all
3 modes checking the measured outcomes against the matrix's
predictions (REV-A000 on any disagreement).

{audit_table()}

## Sec. VI — area & power

```
{section("=== Sec. VI: cost model")}
```

## Ablations (beyond the paper)

### SC capacity sweep (4–256 KiB)

```
{ablation("ablation_sc_size.txt")}
```

### CHG latency H vs pipeline depth S = 16

```
{ablation("ablation_chg.txt")}
```

Finding: flat even at H = 48. At these workloads' IPCs the ROB keeps
commit trailing fetch by far more than the hash latency, so the CHG is
fully hidden — stronger than the paper's sufficient condition (H ≤ S
guarantees overlap even at peak IPC; below peak there is slack to spare).

### Deferred-store buffer depth / BB split limits

```
{ablation("ablation_defer.txt")}
```

Finding: the post-commit buffer depth never binds (peak occupancy stays
single-digit), but aggressive artificial splitting (8-instruction /
2-store blocks) is costly — every split adds a validation, so gcc's
overhead rises from 14 % to 24 %. The paper's choice of generous limits
with rare splits is the right corner.

### Delayed vs naive return validation (Sec. V.A)

```
{ablation("ablation_returns.txt")}
```

The naive scheme walks the return block's (spill-resident) return-site
list on every return; the paper's two-step scheme replaces that with one
predecessor check on the next block — fewer spill fetches and lower
overhead, exactly the motivation given in Sec. V.A.

### Deferred stores vs page shadowing (Sec. IV.A)

```
{ablation("ablation_containment.txt")}
```

## Reproduction checklist

| Paper claim | Status |
|---|---|
| Detects all Table 1 attack classes | ✅ all seven, correct mechanism each |
| Compromised stores never reach memory (R5) | ✅ canary tests, both containment modes |
| Avg overhead 1.87 % (32 K) / 1.63 % (64 K) | ◐ measured 3.05 % / 1.96 %; shape ✓ (gobmk 12.0 % worst, gcc 11.1 % next, 12/18 benchmarks ≤2 %) |
| gobmk worst (~15 %), gcc next | ✅ |
| Overhead tracks unique branches + SC misses | ✅ Figs. 9/10/11 correlate exactly as described |
| CFI-only 0.04–1.68 % | ✅ within band |
| Aggressive slightly better than standard | ❌ measured worse at equal SC bytes (capacity effect, see Fig. 12 note) |
| Table sizes 15–52 %/40–65 %/3–20 % | ◐ mode ratios ✓; absolute ≈1.7× (16 B vs ~10 B entries) |
| ~8 % core area, ~7.2 % core power, <5.5 % chip | ✅ analytical model calibrated and swept |
| No ISA changes / no binary modification | ✅ by construction |
| Static coverage/latency model agrees with dynamics | ✅ audit oracle: 21 attack cells + 18 profile latency sets, zero REV-A000 |
"""

(ROOT / "EXPERIMENTS.md").write_text(doc)
print("EXPERIMENTS.md written,", len(doc), "bytes")
