#!/usr/bin/env bash
# Full local gate: release build, all tests, clippy with warnings denied.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
