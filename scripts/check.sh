#!/usr/bin/env bash
# Full local gate: formatting, release build, all tests, clippy with
# warnings denied, and the rev-lint static verifier over every workload
# profile (JSON mode; any error-severity diagnostic fails the gate via
# rev-lint's exit status).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

# CHANGELOG currency (hard): CHANGES.md gains exactly one line per PR,
# so its line count names the current PR — the top CHANGELOG.md entry
# must mention it, or the changelog has fallen behind again.
pr="$(wc -l < CHANGES.md | tr -d ' ')"
echo "==> CHANGELOG.md top entry mentions PR $pr"
if ! grep -m1 '^## ' CHANGELOG.md | grep -qE "PR ${pr}([^0-9]|$)"; then
    echo "FAIL: top CHANGELOG.md entry does not mention PR ${pr}."
    echo "      Add a changelog entry for the current PR (CHANGES.md has ${pr} lines)."
    exit 1
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> cargo bench --no-run (criterion smoke build)"
cargo bench --no-run --workspace -q

echo "==> rev-lint --all (static table verification)"
cargo run --release -q -p rev-lint -- --all --scale 0.05 --format json >/dev/null

# Warm-pool equivalence gate (hard): the default (pooled, forked) quick
# sweep must render stdout and the JSON snapshot byte-identical to a
# fresh-simulator run with the pool disabled. Any divergence means
# forking perturbed a counter — see DESIGN.md §13.
echo "==> pooled-vs-fresh quick sweep byte-diff (hard gate)"
pool_dir="$(mktemp -d /tmp/pool_gate.XXXXXX)"
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --json "$pool_dir/pooled.json" > "$pool_dir/pooled.txt"
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --pool=off --json "$pool_dir/fresh.json" > "$pool_dir/fresh.txt"
if ! diff -u "$pool_dir/fresh.txt" "$pool_dir/pooled.txt"; then
    echo "FAIL: pooled sweep stdout differs from --pool=off."
    exit 1
fi
if ! diff -u "$pool_dir/fresh.json" "$pool_dir/pooled.json"; then
    echo "FAIL: pooled sweep snapshot differs from --pool=off."
    exit 1
fi
rm -rf "$pool_dir"

# Shard merge-identity gate (hard): split one benchmark's sweep grid
# across two shard processes, merge the sealed items with --resume, and
# require stdout + JSON byte-identical to the monolithic run.
echo "==> sharded sweep merge-identity smoke (hard gate)"
shard_dir="$(mktemp -d /tmp/shard_gate.XXXXXX)"
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --bench mcf --json "$shard_dir/mono.json" > "$shard_dir/mono.txt"
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --bench mcf --shard 1/2 --shard-dir "$shard_dir/items" >/dev/null
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --bench mcf --shard 2/2 --shard-dir "$shard_dir/items" >/dev/null
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --bench mcf --resume --shard-dir "$shard_dir/items" \
    --json "$shard_dir/merged.json" > "$shard_dir/merged.txt"
if ! diff -u "$shard_dir/mono.txt" "$shard_dir/merged.txt"; then
    echo "FAIL: merged shard stdout differs from the monolithic run."
    exit 1
fi
if ! diff -u "$shard_dir/mono.json" "$shard_dir/merged.json"; then
    echo "FAIL: merged shard snapshot differs from the monolithic run."
    exit 1
fi
rm -rf "$shard_dir"

# rev-serve smoke gate (hard): drive the daemon end-to-end over stdio
# with the docs/SERVE.md example jobs and byte-compare the verdicts
# against the committed expectation. Two workers make completion *order*
# scheduling-dependent, so verdict lines are sorted before the diff; the
# verdict *payloads* must be byte-identical regardless of interleaving.
echo "==> rev-serve smoke (two jobs vs baselines/serve_smoke.jsonl)"
serve_out="$(mktemp /tmp/serve_rev.XXXXXX.jsonl)"
./target/release/rev-serve --workers 2 < scripts/serve_smoke_input.jsonl \
    | grep '"type":"verdict"' | sort > "$serve_out"
if ! diff -u baselines/serve_smoke.jsonl "$serve_out"; then
    echo "FAIL: rev-serve verdicts differ from baselines/serve_smoke.jsonl."
    echo "      If intentional, regenerate with:"
    echo "      ./target/release/rev-serve --workers 2 < scripts/serve_smoke_input.jsonl \\"
    echo "          | grep '\"type\":\"verdict\"' | sort > baselines/serve_smoke.jsonl"
    exit 1
fi
rm -f "$serve_out"

# Crash-recovery smoke gate (hard): the same two jobs with a worker
# panic injected on j1's second slice. Supervision must catch the panic,
# restore j1 from its checkpoint, and finish with verdicts byte-identical
# to the undisturbed run — so the *same* baseline is the expectation.
echo "==> rev-serve crash-recovery smoke (injected panic, same baseline)"
crash_out="$(mktemp /tmp/serve_crash.XXXXXX.jsonl)"
./target/release/rev-serve --workers 2 --chaos-panic j1:1 --backoff-ms 0 \
    < scripts/serve_smoke_input.jsonl \
    | grep '"type":"verdict"' | sort > "$crash_out"
if ! diff -u baselines/serve_smoke.jsonl "$crash_out"; then
    echo "FAIL: verdicts after crash recovery differ from the undisturbed run."
    echo "      Checkpoint/restore must be byte-exact; see docs/CHECKPOINT.md."
    exit 1
fi
rm -f "$crash_out"

# Chaos gate (hard): a quick seeded fault-injection campaign must report
# zero silent-corruption and zero false-positive outcomes (rev-chaos
# exits 1 otherwise). The byte-identical JSON is diffed against the
# committed baseline as a soft drift check.
echo "==> rev-chaos --quick (fault-injection gate)"
chaos="$(mktemp /tmp/chaos_rev.XXXXXX.json)"
cargo run --release -q -p rev-chaos -- --quick --seed 7 --quiet --json "$chaos" >/dev/null
if ! diff -q baselines/chaos_quick.json "$chaos" >/dev/null; then
    echo "WARN: campaign drifted from baselines/chaos_quick.json (soft gate)."
    echo "      If intentional, regenerate with:"
    echo "      cargo run --release -p rev-chaos -- --quick --seed 7 --quiet --json baselines/chaos_quick.json"
fi
rm -f "$chaos"

# Service-layer chaos gate (hard): the quick seeded campaign against the
# rev-serve gateway — worker panics, corrupted checkpoints, stalls under
# deadlines, client disconnects — must be clean (zero silent-corruption,
# zero false-positive; rev-chaos exits 1 otherwise). The byte-identical
# JSON is diffed against the committed baseline as a soft drift check.
echo "==> rev-chaos --serve --quick (service-layer chaos gate)"
chaos_serve="$(mktemp /tmp/chaos_serve.XXXXXX.json)"
cargo run --release -q -p rev-chaos -- \
    --serve --quick --seed 7 --jobs 4 --quiet --json "$chaos_serve" >/dev/null
if ! diff -q baselines/chaos_serve_quick.json "$chaos_serve" >/dev/null; then
    echo "WARN: serve campaign drifted from baselines/chaos_serve_quick.json (soft gate)."
    echo "      If intentional, regenerate with:"
    echo "      cargo run --release -p rev-chaos -- --serve --quick --seed 7 --quiet --json baselines/chaos_serve_quick.json"
fi
rm -f "$chaos_serve"

# Audit gates (DESIGN.md §11). Hard: the differential audit oracle —
# every attack class under every validation mode diffed against the
# static coverage prediction, plus per-profile measured detection
# latencies vs the static bounds; any REV-A000 disagreement exits 1.
# Soft: the rev-audit snapshot (coverage matrix, collision classes,
# latency bounds per profile) is byte-diffed against the committed
# baseline.
echo "==> rev-chaos --audit (static/dynamic audit-oracle gate)"
cargo run --release -q -p rev-chaos -- --audit --seed 7 --jobs 4 --quiet

echo "==> rev-lint --audit vs baselines/audit_quick.json (soft gate)"
audit="$(mktemp /tmp/audit_rev.XXXXXX.json)"
cargo run --release -q -p rev-lint -- \
    --all --scale 0.05 --jobs 4 --audit-json "$audit" >/dev/null
if ! diff -q baselines/audit_quick.json "$audit" >/dev/null; then
    echo "WARN: audit results drifted from baselines/audit_quick.json (soft gate)."
    echo "      If intentional, regenerate with:"
    echo "      cargo run --release -p rev-lint -- --all --scale 0.05 --audit-json baselines/audit_quick.json"
fi
rm -f "$audit"

# Soft gates (warn, never fail): regenerate the quick-mode measurement
# snapshot, diff it against the committed baseline with rev-trace, and
# sanity-check that the tracing-disabled sweep's wall clock has not
# drifted (>2% over the recorded reference + 25% host-noise allowance).
echo "==> rev-trace compare vs baselines/quick.json (soft gate)"
snap="$(mktemp /tmp/bench_rev.XXXXXX.json)"
t0=$(date +%s.%N)
cargo run --release -q -p rev-bench --bin reproduce_all -- \
    --quick --quiet --json "$snap" >/dev/null
t1=$(date +%s.%N)
if ! cargo run --release -q -p rev-trace -- compare baselines/quick.json "$snap"; then
    echo "WARN: measurements drifted from baselines/quick.json (soft gate)."
    echo "      If intentional, regenerate with:"
    echo "      cargo run --release -p rev-bench --bin reproduce_all -- --quick --quiet --json baselines/quick.json"
fi
if [ -f baselines/quick.time ]; then
    python3 - "$t0" "$t1" <<'EOF' || true
import sys
t0, t1 = float(sys.argv[1]), float(sys.argv[2])
ref = float(open("baselines/quick.time").read())
now = t1 - t0
limit = ref * 1.02 * 1.25  # 2% overhead budget + host-noise allowance
print(f"    quick sweep wall clock: {now:.1f}s (reference {ref:.1f}s)")
if now > limit:
    print(f"WARN: wall clock exceeds {limit:.1f}s — tracing taps may have grown a hot-path cost (soft gate).")
EOF
fi
rm -f "$snap"

# Perf soft gate (warn, never fail): simulator throughput per profile vs
# the committed baseline with a ±15% band. The perf binary exits 2 on
# out-of-band drift (soft-warning semantics matching rev-trace compare);
# any other non-zero exit is a real failure.
echo "==> perf soft gate vs baselines/perf_quick.json (±15% band)"
perf_rc=0
cargo run --release -q -p rev-bench --bin perf -- \
    --quick --quiet --check baselines/perf_quick.json --band 15 || perf_rc=$?
if [ "$perf_rc" -eq 2 ]; then
    echo "WARN: simulator throughput drifted >15% from baselines/perf_quick.json (soft gate)."
    echo "      If intentional (hot-loop change or new host), regenerate with:"
    echo "      cargo run --release -p rev-bench --bin perf -- --quick --quiet --json baselines/perf_quick.json"
elif [ "$perf_rc" -ne 0 ]; then
    exit "$perf_rc"
fi

echo "==> OK"
