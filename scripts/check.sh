#!/usr/bin/env bash
# Full local gate: formatting, release build, all tests, clippy with
# warnings denied, and the rev-lint static verifier over every workload
# profile (JSON mode; any error-severity diagnostic fails the gate via
# rev-lint's exit status).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rev-lint --all (static table verification)"
cargo run --release -q -p rev-lint -- --all --scale 0.05 --format json >/dev/null

echo "==> OK"
