//! Property-level integration tests of REV's security guarantees: the
//! deferred-store quarantine (requirement R5), the key's role in digest
//! forgery resistance, and detection latency.

use rev_attacks::{mount, victim_program, AttackKind};
use rev_core::{RevConfig, RevSimulator, RunOutcome, ValidationMode, ViolationKind};

#[test]
fn every_attack_is_contained_in_every_hash_mode() {
    // Standard and aggressive both quarantine stores; every attack class
    // must be caught before its canary store becomes architectural.
    for mode in [ValidationMode::Standard, ValidationMode::Aggressive] {
        for kind in [
            AttackKind::DirectCodeInjection,
            AttackKind::ReturnOriented,
            AttackKind::JumpOriented,
            AttackKind::VtableCompromise,
        ] {
            let out = mount(kind, RevConfig::paper_default().with_mode(mode)).expect("mounts");
            assert!(out.detected, "{kind} undetected in {mode} mode");
            assert!(!out.tainted, "{kind} tainted memory in {mode} mode");
        }
    }
}

#[test]
fn cfi_only_catches_control_flow_attacks() {
    // CFI-only gives up hash checking but must still catch pure
    // control-flow hijacks (its design point, paper Sec. V.D).
    for kind in [AttackKind::ReturnOriented, AttackKind::JumpOriented, AttackKind::VtableCompromise]
    {
        let out = mount(kind, RevConfig::paper_default().with_mode(ValidationMode::CfiOnly))
            .expect("mounts");
        assert!(out.detected, "{kind} undetected in CFI-only mode");
        assert_eq!(out.violation.unwrap().kind, ViolationKind::IllegalTarget, "{kind}");
    }
}

#[test]
fn cfi_only_misses_pure_code_substitution() {
    // The flip side of Sec. V.D: with no hashes, substituting same-shape
    // code in place is NOT caught — CFI-only "assumes the system is
    // protected against code integrity attacks". This documents the
    // trade-off rather than papering over it.
    let out = mount(
        AttackKind::DirectCodeInjection,
        RevConfig::paper_default().with_mode(ValidationMode::CfiOnly),
    )
    .expect("mounts");
    assert!(
        !out.detected,
        "CFI-only unexpectedly detected a pure code substitution: {:?}",
        out.violation
    );
}

#[test]
fn detection_happens_promptly_after_the_attack_fires() {
    let out = mount(AttackKind::ReturnOriented, RevConfig::paper_default()).expect("mounts");
    assert!(out.detected);
    // The overflow arms on the next process() call; detection must land
    // within the post-attack window, not at its very end.
    assert!(
        out.committed < 330_000,
        "detection too late: {} instructions committed",
        out.committed
    );
}

#[test]
fn victim_runs_clean_indefinitely_without_attack() {
    let (program, map) = victim_program().expect("victim builds");
    let mut sim = RevSimulator::new(program, RevConfig::paper_default()).expect("builds");
    let report = sim.run(400_000);
    assert_eq!(report.outcome, RunOutcome::BudgetReached);
    assert!(report.rev.violation.is_none());
    assert_eq!(sim.monitor().committed().read_u64(map.canary_addr), 0);
    assert!(report.rev.return_checks > 0, "delayed return validation active");
    assert!(report.rev.sag_refills == 0, "two modules fit the SAG");
}

#[test]
fn violation_halts_validation_permanently() {
    // After a violation, continuing the run must not release quarantined
    // stores or validate further blocks.
    let out = mount(AttackKind::JumpOriented, RevConfig::paper_default()).expect("mounts");
    assert!(out.detected && !out.tainted);
}
