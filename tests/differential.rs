//! Differential property testing: for arbitrary structured programs, the
//! static analysis, table generation and run-time validation must agree —
//! a clean program never trips a violation, and the architectural result
//! equals an unprotected run's result.

use proptest::prelude::*;
use rev_core::{RevConfig, RevSimulator, RunOutcome, ValidationMode};
use rev_isa::{AluOp, BranchCond, Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};

#[derive(Debug, Clone)]
enum Seg {
    Alu(u8),
    Store(u8),
    Diamond(u8),
    Loop(u8),
    CallLeaf,
    JumpTable(u8),
}

fn arb_seg() -> impl Strategy<Value = Seg> {
    prop_oneof![
        (1u8..6).prop_map(Seg::Alu),
        (1u8..4).prop_map(Seg::Store),
        (1u8..4).prop_map(Seg::Diamond),
        (2u8..5).prop_map(Seg::Loop),
        Just(Seg::CallLeaf),
        (2u8..4).prop_map(Seg::JumpTable),
    ]
}

/// Builds a program from the segment recipe. All control flow is driven by
/// an in-program LCG (r27) so outcomes are data-dependent.
fn build(segs: &[Seg]) -> Program {
    let mut b = ModuleBuilder::new("diff", 0x1000);
    // Leaf functions for call segments (created on demand).
    let leaf_count = segs.iter().filter(|s| matches!(s, Seg::CallLeaf)).count().max(1);
    let leaves: Vec<_> = (0..leaf_count).map(|_| b.new_label()).collect();

    let f = b.begin_function("main");
    let scratch = b.data_zeroed(4096);
    b.li_data(Reg::R25, scratch);
    b.push(Instruction::Li { rd: Reg::R27, imm: 0x1234_5677 });
    let mut leaf_iter = leaves.iter();
    for (i, seg) in segs.iter().enumerate() {
        // Advance the LCG.
        b.push(Instruction::MulI { rd: Reg::R27, rs: Reg::R27, imm: 1_103_515_245 });
        b.push(Instruction::AddI { rd: Reg::R27, rs: Reg::R27, imm: 12_345 });
        match seg {
            Seg::Alu(n) => {
                for k in 0..*n {
                    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: k as i32 });
                }
            }
            Seg::Store(n) => {
                for k in 0..*n {
                    b.push(Instruction::Store {
                        rs: Reg::R1,
                        rbase: Reg::R25,
                        off: (8 * (i as i32 * 4 + k as i32)) % 4096,
                    });
                }
            }
            Seg::Diamond(n) => {
                let arm = b.new_label();
                let merge = b.new_label();
                b.push(Instruction::AndI { rd: Reg::R2, rs: Reg::R27, imm: 1 << (i % 20) });
                b.branch(BranchCond::Ne, Reg::R2, Reg::R0, arm);
                for _ in 0..*n {
                    b.push(Instruction::Alu {
                        op: AluOp::Xor,
                        rd: Reg::R3,
                        rs1: Reg::R3,
                        rs2: Reg::R27,
                    });
                }
                b.jmp(merge);
                b.bind(arm);
                b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: 1 });
                b.bind(merge);
            }
            Seg::Loop(n) => {
                let top = b.new_label();
                b.push(Instruction::Li { rd: Reg::R10, imm: *n as u64 });
                b.bind(top);
                b.push(Instruction::AddI { rd: Reg::R5, rs: Reg::R5, imm: 1 });
                b.push(Instruction::AddI { rd: Reg::R10, rs: Reg::R10, imm: -1 });
                b.branch(BranchCond::Ne, Reg::R10, Reg::R0, top);
            }
            Seg::CallLeaf => {
                let leaf = leaf_iter.next().unwrap_or(&leaves[0]);
                b.call(*leaf);
            }
            Seg::JumpTable(k) => {
                let arms: Vec<_> = (0..*k).map(|_| b.new_label()).collect();
                let merge = b.new_label();
                let table = b.data_label_table(&arms);
                let mask = (k.next_power_of_two() - 1).max(1);
                b.push(Instruction::AndI { rd: Reg::R2, rs: Reg::R27, imm: mask as i32 });
                // Clamp to arm count via min: r2 = r2 < k ? r2 : 0
                b.push(Instruction::Li { rd: Reg::R3, imm: *k as u64 });
                b.push(Instruction::Alu {
                    op: AluOp::Slt,
                    rd: Reg::R4,
                    rs1: Reg::R2,
                    rs2: Reg::R3,
                });
                b.push(Instruction::MulI { rd: Reg::R2, rs: Reg::R2, imm: 1 });
                let inb = b.new_label();
                b.branch(BranchCond::Ne, Reg::R4, Reg::R0, inb);
                b.push(Instruction::Li { rd: Reg::R2, imm: 0 });
                b.bind(inb);
                b.push(Instruction::Li { rd: Reg::R3, imm: 3 });
                b.push(Instruction::Alu {
                    op: AluOp::Shl,
                    rd: Reg::R2,
                    rs1: Reg::R2,
                    rs2: Reg::R3,
                });
                b.li_data(Reg::R4, table);
                b.push(Instruction::Alu {
                    op: AluOp::Add,
                    rd: Reg::R4,
                    rs1: Reg::R4,
                    rs2: Reg::R2,
                });
                b.push(Instruction::Load { rd: Reg::R4, rbase: Reg::R4, off: 0 });
                b.jmp_ind(Reg::R4, &arms);
                for arm in &arms {
                    b.bind(*arm);
                    b.push(Instruction::AddI { rd: Reg::R6, rs: Reg::R6, imm: 1 });
                    b.jmp(merge);
                }
                b.bind(merge);
            }
        }
    }
    b.push(Instruction::Halt);
    b.end_function(f);

    // Leaf bodies.
    for (j, leaf) in leaves.iter().enumerate() {
        let g = b.begin_function(format!("leaf{j}"));
        b.bind(*leaf);
        b.push(Instruction::AddI { rd: Reg::R7, rs: Reg::R7, imm: 1 });
        b.push(Instruction::Ret);
        b.end_function(g);
    }

    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean programs validate in every mode, and the REV-protected run's
    /// architectural register state equals the unprotected baseline's.
    #[test]
    fn clean_programs_always_validate(segs in proptest::collection::vec(arb_seg(), 1..16)) {
        let program = build(&segs);
        for mode in [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly] {
            let mut sim = RevSimulator::new(
                program.clone(),
                RevConfig::paper_default().with_mode(mode),
            ).expect("builds");
            let report = sim.run(200_000);
            prop_assert_eq!(
                &report.outcome, &RunOutcome::Halted,
                "mode {}: {:?}", mode, report.rev.violation
            );
            prop_assert!(report.rev.violation.is_none());
        }
    }

    /// Committed memory after a validated halt equals the oracle's view of
    /// the scratch region (no lost or phantom stores).
    #[test]
    fn committed_state_equals_oracle_state(segs in proptest::collection::vec(arb_seg(), 1..12)) {
        let program = build(&segs);
        let mut sim = RevSimulator::new(program, RevConfig::paper_default()).expect("builds");
        let report = sim.run(200_000);
        prop_assert_eq!(&report.outcome, &RunOutcome::Halted);
        let scratch = sim.pipeline().oracle().state().reg(Reg::R25);
        for i in 0..512u64 {
            prop_assert_eq!(
                sim.monitor().committed().read_u64(scratch + i * 8),
                sim.pipeline().oracle().mem().read_u64(scratch + i * 8),
                "slot {}", i
            );
        }
    }
}
