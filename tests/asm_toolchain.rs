//! End-to-end toolchain cohesion: a program written in assembly text goes
//! through assemble → static analysis → encrypted table → OoO execution
//! under REV, and the textual listing round-trips through the disassembler.

use rev_core::{RevConfig, RevSimulator, RunOutcome};
use rev_isa::Reg;
use rev_prog::{assemble, disassemble, Program};

const FIB: &str = r#"
; iterative fibonacci: r3 = fib(r2)
func main
    li   r2, 20        ; n
    li   r4, 0         ; a
    li   r3, 1         ; b
    li   r1, 1         ; i
loop:
    add  r5, r4, r3    ; t = a + b
    mov  r4, r3
    mov  r3, r5
    addi r1, r1, 1
    blt  r1, r2, loop
    li   r6, =result
    st   r3, (r6)
    halt
endfunc
result:
    nop                ; 1 byte of "data" inside the module (never reached)
"#;

#[test]
fn assembled_program_validates_under_rev() {
    let module = assemble("fib", 0x1000, FIB).expect("assembles");
    let listing = disassemble(&module);
    assert!(listing.contains("add r5, r4, r3"));

    let mut pb = Program::builder();
    pb.module(module);
    let mut sim = RevSimulator::new(pb.build(), RevConfig::paper_default()).expect("builds");
    let report = sim.run(10_000);
    assert_eq!(report.outcome, RunOutcome::Halted, "{:?}", report.rev.violation);
    assert!(report.rev.violation.is_none());
    // fib(20) with this recurrence = 6765.
    assert_eq!(sim.pipeline().oracle().state().reg(Reg::R3), 6765);
    // The store released into validated memory.
    let addr = sim.pipeline().oracle().state().reg(Reg::R6);
    assert_eq!(sim.monitor().committed().read_u64(addr), 6765);
}

#[test]
fn assembled_computed_dispatch_validates() {
    let src = r#"
func main
    li   r2, 0
top:
    andi r3, r2, 1
    li   r4, 3
    shl  r3, r3, r4
    li   r5, =table
    add  r5, r5, r3
    ld   r6, (r5)
    jmp  *r6 [even, odd]
even:
    addi r7, r7, 1
    jmp  next
odd:
    addi r8, r8, 1
    jmp  next
next:
    addi r2, r2, 1
    li   r9, 40
    blt  r2, r9, top
    halt
endfunc
"#;
    // The jump table itself lives in data; build it with the builder API
    // afterwards is not possible from text, so store the two code
    // addresses at run time instead: simpler — precompute via labels.
    // Here we emulate the table with immediate materialization:
    let src = src.replace(
        "    li   r5, =table\n    add  r5, r5, r3\n    ld   r6, (r5)\n",
        // r6 = (r3 == 0) ? &even : &odd, via arithmetic select
        "    li   r5, =even\n    li   r6, =odd\n    sub  r6, r6, r5\n    li   r9, 3\n    shr  r10, r3, r9\n    mul  r6, r6, r10\n    add  r6, r5, r6\n",
    );
    let module = assemble("disp", 0x1000, &src).expect("assembles");
    let mut pb = Program::builder();
    pb.module(module);
    let mut sim = RevSimulator::new(pb.build(), RevConfig::paper_default()).expect("builds");
    let report = sim.run(20_000);
    assert_eq!(report.outcome, RunOutcome::Halted, "{:?}", report.rev.violation);
    assert_eq!(sim.pipeline().oracle().state().reg(Reg::R7), 20);
    assert_eq!(sim.pipeline().oracle().state().reg(Reg::R8), 20);
}
