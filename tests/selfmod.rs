//! Self-modifying code (paper Sec. IV.E): a JIT-style program that patches
//! its own code at run time. With REV active the patched block fails
//! validation; with the paper's enable/disable system-call protocol the
//! trusted modification window runs unvalidated and execution continues
//! cleanly afterwards.

use rev_core::{RevConfig, RevSimulator, RunOutcome, ViolationKind};
use rev_core::{SYSCALL_REV_DISABLE, SYSCALL_REV_ENABLE};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};

/// The 8 bytes the JIT writes: `addi r9, r9, 9` (7 B) + `nop` (1 B),
/// exactly overwriting the placeholder `addi r9, r9, 5` + `nop`.
fn patched_bytes() -> u64 {
    let mut bytes = Instruction::AddI { rd: Reg::R9, rs: Reg::R9, imm: 9 }.encode();
    bytes.push(Instruction::Nop.encode()[0]);
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Builds the JIT program. When `sanctioned`, the patch window is
/// bracketed by the REV disable/enable system calls.
fn jit_program(sanctioned: bool) -> Program {
    let mut b = ModuleBuilder::new("jit", 0x1000);
    let jit_region = b.new_label();
    let patch_site = b.new_label();

    let f = b.begin_function("main");
    // Warm phase: run the unpatched region once (validated, clean).
    b.call(jit_region);
    if sanctioned {
        b.push(Instruction::Syscall { num: SYSCALL_REV_DISABLE });
    }
    // The "JIT": overwrite the placeholder instruction.
    b.li_label(Reg::R10, patch_site);
    b.push(Instruction::Li { rd: Reg::R11, imm: patched_bytes() });
    b.push(Instruction::Store { rs: Reg::R11, rbase: Reg::R10, off: 0 });
    // Run the freshly generated code.
    b.call(jit_region);
    if sanctioned {
        b.push(Instruction::Syscall { num: SYSCALL_REV_ENABLE });
    }
    // Post-JIT validated work.
    let top = b.new_label();
    b.push(Instruction::Li { rd: Reg::R2, imm: 50 });
    b.bind(top);
    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
    b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
    b.push(Instruction::Halt);
    b.end_function(f);

    let g = b.begin_function("jit_region");
    b.bind(jit_region);
    b.bind(patch_site);
    b.push(Instruction::AddI { rd: Reg::R9, rs: Reg::R9, imm: 5 }); // placeholder
    b.push(Instruction::Nop);
    b.push(Instruction::Ret);
    b.end_function(g);

    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

#[test]
fn unsanctioned_self_modification_is_caught() {
    let mut sim =
        RevSimulator::new(jit_program(false), RevConfig::paper_default()).expect("builds");
    let report = sim.run(10_000);
    match report.outcome {
        RunOutcome::Violation(v) => assert_eq!(v.kind, ViolationKind::HashMismatch),
        other => panic!("expected a hash-mismatch violation, got {other:?}"),
    }
    // The patched region ran once pre-patch (r9 += 5) but its post-patch
    // execution was caught; validated state reflects containment.
    assert!(report.rev.stores_discarded > 0 || report.rev.violation.is_some());
}

#[test]
fn sanctioned_jit_window_runs_clean() {
    let mut sim = RevSimulator::new(jit_program(true), RevConfig::paper_default()).expect("builds");
    let report = sim.run(10_000);
    assert_eq!(report.outcome, RunOutcome::Halted, "{:?}", report.rev.violation);
    assert!(report.rev.violation.is_none());
    // Functional effect of both the original and the patched code.
    let r9 = sim.pipeline().oracle().state().reg(Reg::R9);
    assert_eq!(r9, 5 + 9, "placeholder ran once, patched code once");
    // The post-enable loop was validated again.
    assert_eq!(sim.pipeline().oracle().state().reg(Reg::R1), 50);
    assert!(report.rev.validations > 0);
}

#[test]
fn monitor_reports_enablement_state() {
    let mut sim = RevSimulator::new(jit_program(true), RevConfig::paper_default()).expect("builds");
    assert!(sim.monitor().is_enabled());
    let _ = sim.run(10_000);
    assert!(sim.monitor().is_enabled(), "re-enabled by the second syscall");
}

#[test]
fn external_disable_enable_api() {
    // The OS-facing API (not program-initiated): disabling validation
    // makes even code injection invisible — which is exactly why the
    // paper insists the two system calls themselves must be secured.
    let mut sim =
        RevSimulator::new(jit_program(false), RevConfig::paper_default()).expect("builds");
    sim.set_rev_enabled(false);
    let report = sim.run(10_000);
    assert_eq!(report.outcome, RunOutcome::Halted);
    assert!(report.rev.violation.is_none(), "nothing validates while disabled");
    assert_eq!(report.rev.validations, 0);
}
