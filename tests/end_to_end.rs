//! Workspace-spanning integration tests: the full stack from program
//! generation through table building, OoO simulation, REV validation,
//! attack detection and containment.

use rev_core::{RevConfig, RevSimulator, RunOutcome, ValidationMode};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};
use rev_workloads::{generate, SpecProfile, ALL_PROFILES};

fn spec_program(name: &str) -> Program {
    generate(&SpecProfile::by_name(name).expect("profile").scaled(0.05))
}

#[test]
fn every_benchmark_runs_clean_under_rev() {
    for p in ALL_PROFILES {
        let program = generate(&p.scaled(0.03));
        let mut sim = RevSimulator::new(program, RevConfig::paper_default())
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let report = sim.run(60_000);
        assert_eq!(report.outcome, RunOutcome::BudgetReached, "{}", p.name);
        assert!(report.rev.violation.is_none(), "{}: {:?}", p.name, report.rev.violation);
        assert!(report.rev.validations > 1_000, "{}: too few validations", p.name);
    }
}

#[test]
fn all_three_modes_validate_spec_workloads() {
    let program = spec_program("sjeng");
    for mode in [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly] {
        let mut sim =
            RevSimulator::new(program.clone(), RevConfig::paper_default().with_mode(mode))
                .expect("builds");
        let report = sim.run(80_000);
        assert!(report.rev.violation.is_none(), "{mode}: {:?}", report.rev.violation);
    }
}

#[test]
fn rev_never_beats_baseline_and_overhead_is_bounded() {
    let program = spec_program("hmmer");
    let mut sim = RevSimulator::new(program, RevConfig::paper_default()).expect("builds");
    let base = sim.run_baseline(150_000);
    let rev = sim.run(150_000);
    let base_ipc = base.cpu.ipc();
    let rev_ipc = rev.cpu.ipc();
    assert!(rev_ipc <= base_ipc * 1.001, "REV cannot speed execution up");
    assert!(
        rev_ipc >= base_ipc * 0.5,
        "overhead implausibly high: base {base_ipc:.3} vs rev {rev_ipc:.3}"
    );
}

#[test]
fn bigger_sc_never_hurts() {
    let p = SpecProfile::by_name("gcc").expect("profile").scaled(0.05);
    let run = |bytes: usize| {
        let mut sim =
            RevSimulator::new(generate(&p), RevConfig::paper_default().with_sc_capacity(bytes))
                .expect("builds");
        let r = sim.run(150_000);
        (r.cpu.ipc(), r.rev.sc.misses())
    };
    let (ipc_small, misses_small) = run(4 << 10);
    let (ipc_large, misses_large) = run(64 << 10);
    assert!(misses_large <= misses_small, "more capacity, fewer misses");
    assert!(ipc_large >= ipc_small * 0.999, "more capacity must not slow things down");
}

#[test]
fn committed_memory_matches_architectural_state_after_halt() {
    // A program that fills a buffer with known values then halts: after a
    // clean validated run, committed memory == oracle memory.
    let mut b = ModuleBuilder::new("writer", 0x1000);
    let f = b.begin_function("main");
    let buf = b.data_zeroed(256);
    let top = b.new_label();
    b.li_data(Reg::R5, buf);
    b.push(Instruction::Li { rd: Reg::R2, imm: 32 });
    b.bind(top);
    // value = i * 3 + 1
    b.push(Instruction::MulI { rd: Reg::R6, rs: Reg::R1, imm: 3 });
    b.push(Instruction::AddI { rd: Reg::R6, rs: Reg::R6, imm: 1 });
    b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 0 });
    b.push(Instruction::AddI { rd: Reg::R5, rs: Reg::R5, imm: 8 });
    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
    b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
    b.push(Instruction::Halt);
    b.end_function(f);
    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    let program = pb.build();

    let mut sim = RevSimulator::new(program, RevConfig::paper_default()).expect("builds");
    let report = sim.run(10_000);
    assert_eq!(report.outcome, RunOutcome::Halted);
    let base_addr = sim.pipeline().oracle().state().reg(Reg::R5) - 32 * 8;
    for i in 0..32u64 {
        let addr = base_addr + i * 8;
        assert_eq!(
            sim.monitor().committed().read_u64(addr),
            i * 3 + 1,
            "committed memory at slot {i}"
        );
        assert_eq!(
            sim.pipeline().oracle().mem().read_u64(addr),
            i * 3 + 1,
            "oracle memory at slot {i}"
        );
    }
    assert_eq!(report.rev.stores_released, 32, "all buffer stores released");
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let mut sim =
            RevSimulator::new(spec_program("astar"), RevConfig::paper_default()).expect("builds");
        let r = sim.run(60_000);
        (
            r.cpu.cycles,
            r.cpu.committed_branches,
            r.rev.validations,
            r.rev.sc.probes(),
            r.rev.sc.misses(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn cfi_only_table_is_smallest_aggressive_largest() {
    let program = spec_program("gamess");
    let size = |mode| {
        RevSimulator::new(program.clone(), RevConfig::paper_default().with_mode(mode))
            .expect("builds")
            .table_stats()[0]
            .image_bytes
    };
    let std_size = size(ValidationMode::Standard);
    let agg_size = size(ValidationMode::Aggressive);
    let cfi_size = size(ValidationMode::CfiOnly);
    assert!(cfi_size < std_size, "cfi {cfi_size} < standard {std_size}");
    assert!(std_size < agg_size, "standard {std_size} < aggressive {agg_size}");
}

#[test]
fn unique_branches_reflect_working_set_differences() {
    let unique = |name: &str| {
        let mut sim =
            RevSimulator::new(spec_program(name), RevConfig::paper_default()).expect("builds");
        sim.run(120_000).cpu.unique_branches()
    };
    let gcc = unique("gcc");
    let libquantum = unique("libquantum");
    assert!(
        gcc as f64 > libquantum as f64 * 1.4,
        "gcc working set {gcc} should exceed libquantum's {libquantum}"
    );
}
