//! Integration tests of the page-shadowing containment mode (paper
//! Sec. IV.A's stricter alternative for requirement R5).

use rev_attacks::{victim_program, TAINT_VALUE};
use rev_core::{Containment, RevConfig, RevSimulator, RunOutcome};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};

fn shadow_config() -> RevConfig {
    let mut cfg = RevConfig::paper_default();
    cfg.containment = Containment::ShadowPages;
    cfg
}

fn writer_program() -> Program {
    let mut b = ModuleBuilder::new("writer", 0x1000);
    let f = b.begin_function("main");
    let buf = b.data_zeroed(512);
    let top = b.new_label();
    b.li_data(Reg::R5, buf);
    b.push(Instruction::Li { rd: Reg::R2, imm: 16 });
    b.bind(top);
    b.push(Instruction::AddI { rd: Reg::R6, rs: Reg::R1, imm: 100 });
    b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 0 });
    b.push(Instruction::AddI { rd: Reg::R5, rs: Reg::R5, imm: 8 });
    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
    b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
    b.push(Instruction::Halt);
    b.end_function(f);
    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

#[test]
fn clean_run_promotes_shadow_pages_at_the_end() {
    let mut sim = RevSimulator::new(writer_program(), shadow_config()).expect("builds");
    let report = sim.run(10_000);
    assert_eq!(report.outcome, RunOutcome::Halted);
    assert!(report.rev.shadow.pages_created > 0, "stores went through shadow pages");
    assert_eq!(report.rev.shadow.pages_promoted, report.rev.shadow.pages_created);
    assert_eq!(report.rev.shadow.pages_discarded, 0);
    // After promotion, the committed image holds the program's writes.
    let last = sim.pipeline().oracle().state().reg(Reg::R5) - 8;
    assert_eq!(sim.monitor().committed().read_u64(last), 100 + 15);
}

#[test]
fn violation_discards_the_entire_execution_including_pre_attack_stores() {
    // The semantic difference from the deferred-store buffer: under
    // shadowing, even stores from *validated* blocks never became
    // architectural, so a violation wipes them too.
    let (program, map) = victim_program().expect("victim builds");
    let mut sim = RevSimulator::new(program, shadow_config()).expect("builds");
    let warm = sim.run(30_000);
    assert!(warm.rev.violation.is_none());
    // The victim's loop counter cell in shadow, committed memory stale:
    // handlers have run (oracle r5 > 0), yet nothing promoted mid-run.
    assert!(sim.monitor().committed().read_u64(map.canary_addr) == 0);

    // Mount the ROP attack by hand.
    sim.inject(|mem| {
        mem.write_u64(map.flag_addr, 1);
        mem.write_u64(map.evil_addr, map.gadget_addr);
    });
    let report = sim.run(400_000);
    assert!(matches!(report.outcome, RunOutcome::Violation(_)));
    // Canary contained AND every shadow page dropped.
    assert_ne!(
        sim.pipeline().oracle().mem().read_u64(map.canary_addr),
        0,
        "the gadget did run speculatively"
    );
    assert_eq!(sim.monitor().committed().read_u64(map.canary_addr), 0, "contained");
    assert!(report.rev.shadow.pages_discarded > 0);
    // The only promotion happened at the clean end of the *pre-attack*
    // window; nothing promoted after the violation.
    assert!(report.rev.shadow.pages_promoted <= warm.rev.shadow.pages_created);
    let _ = TAINT_VALUE;
}

#[test]
fn shadow_and_defer_agree_on_final_state_for_clean_runs() {
    let run = |containment: Containment| {
        let mut cfg = RevConfig::paper_default();
        cfg.containment = containment;
        let mut sim = RevSimulator::new(writer_program(), cfg).expect("builds");
        let report = sim.run(10_000);
        assert_eq!(report.outcome, RunOutcome::Halted);
        let base = sim.pipeline().oracle().state().reg(Reg::R5) - 16 * 8;
        (0..16u64).map(|i| sim.monitor().committed().read_u64(base + i * 8)).collect::<Vec<_>>()
    };
    assert_eq!(run(Containment::DeferredStores), run(Containment::ShadowPages));
}

#[test]
fn shadow_mode_ipc_close_to_defer_mode() {
    // Page shadowing is a containment-policy change, not a validation
    // change; IPC should be within a few percent (COW traffic only).
    let run = |containment: Containment| {
        let mut cfg = RevConfig::paper_default();
        cfg.containment = containment;
        let program = rev_workloads::generate(
            &rev_workloads::SpecProfile::by_name("hmmer").unwrap().scaled(0.05),
        );
        let mut sim = RevSimulator::new(program, cfg).expect("builds");
        sim.run(100_000).cpu.ipc()
    };
    let defer = run(Containment::DeferredStores);
    let shadow = run(Containment::ShadowPages);
    assert!((defer - shadow).abs() / defer < 0.10, "defer {defer:.3} vs shadow {shadow:.3}");
}
