//! Dynamic module loading (paper Sec. IV.B): calls into a module that is
//! loaded (`dlopen`-style) mid-run. Before loading, any transfer into the
//! module raises `NoTable` (the SAG has no base/limit/key triple for it);
//! after the trusted dynamic linker runs, execution validates cleanly —
//! including delayed return validation across the new module boundary.

use rev_core::{RevConfig, RevSimulator, RunOutcome, ViolationKind};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{Module, ModuleBuilder, Program};

const PLUGIN_BASE: u64 = 0x20_0000;

/// Main program: spins on validated work, checks a "plugin ready" flag in
/// data, and once set calls the plugin through a function pointer.
fn host_program() -> Program {
    let mut b = ModuleBuilder::new("host", 0x1000);
    let f = b.begin_function("main");
    let flag_off = b.data_zeroed(8);
    let top = b.new_label();
    let skip = b.new_label();
    b.bind(top);
    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
    b.li_data(Reg::R10, flag_off);
    b.push(Instruction::Load { rd: Reg::R8, rbase: Reg::R10, off: 0 });
    b.branch(BranchCond::Eq, Reg::R8, Reg::R0, skip);
    // Plugin ready: call it (cross-module computed call).
    b.push(Instruction::Li { rd: Reg::R21, imm: PLUGIN_BASE });
    b.call_ind_abs(Reg::R21, &[PLUGIN_BASE]);
    b.bind(skip);
    b.jmp(top);
    b.end_function(f);
    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

fn plugin() -> Module {
    let mut b = ModuleBuilder::new("plugin", PLUGIN_BASE);
    let f = b.begin_function("plugin_entry");
    b.push(Instruction::AddI { rd: Reg::R9, rs: Reg::R9, imm: 7 });
    b.push(Instruction::Ret);
    b.end_function(f);
    b.finish().expect("assembles")
}

fn flag_addr(sim: &RevSimulator) -> u64 {
    sim.program().modules()[0].data_base()
}

#[test]
fn calling_an_unloaded_module_is_a_no_table_violation() {
    let mut sim = RevSimulator::new(host_program(), RevConfig::paper_default()).expect("builds");
    let addr = flag_addr(&sim);
    sim.inject(|mem| mem.write_u64(addr, 1)); // arm the call without loading
    let report = sim.run(100_000);
    match report.outcome {
        RunOutcome::Violation(v) => assert_eq!(v.kind, ViolationKind::NoTable),
        // The call lands in unmapped zeros; depending on timing the oracle
        // may also fault first — but REV must fire before that commits.
        other => panic!("expected NoTable violation, got {other:?}"),
    }
}

#[test]
fn dlopen_then_call_validates_cleanly() {
    let mut sim = RevSimulator::new(host_program(), RevConfig::paper_default()).expect("builds");
    // Phase 1: run without the plugin (flag clear): clean.
    let r1 = sim.run(20_000);
    assert!(r1.rev.violation.is_none());
    assert_eq!(sim.table_stats().len(), 1);

    // Phase 2: the trusted dynamic linker loads the plugin, then the
    // "application" flips the ready flag.
    sim.load_dynamic_module(plugin()).expect("links");
    assert_eq!(sim.table_stats().len(), 2);
    let addr = flag_addr(&sim);
    sim.inject(|mem| mem.write_u64(addr, 1));

    // Phase 3: cross-module calls into the plugin validate, including the
    // return back into the host.
    let r2 = sim.run(120_000);
    assert!(r2.rev.violation.is_none(), "{:?}", r2.rev.violation);
    assert!(sim.pipeline().oracle().state().reg(Reg::R9) > 0, "the plugin actually ran");
    assert!(r2.rev.return_checks > 0, "cross-module returns were validated");
}

#[test]
fn tampering_with_the_dynamically_loaded_module_is_caught() {
    let mut sim = RevSimulator::new(host_program(), RevConfig::paper_default()).expect("builds");
    sim.run(10_000);
    sim.load_dynamic_module(plugin()).expect("links");
    let addr = flag_addr(&sim);
    sim.inject(|mem| mem.write_u64(addr, 1));
    let r = sim.run(40_000);
    assert!(r.rev.violation.is_none());

    // Now overwrite the plugin's first instruction (same length).
    let evil = Instruction::AddI { rd: Reg::R9, rs: Reg::R9, imm: 666 }.encode();
    sim.inject(|mem| mem.write_bytes(PLUGIN_BASE, &evil));
    let r = sim.run(200_000);
    match r.outcome {
        RunOutcome::Violation(v) => assert_eq!(v.kind, ViolationKind::HashMismatch),
        other => panic!("expected detection, got {other:?}"),
    }
}

#[test]
fn rekeying_mid_run_keeps_validation_working() {
    // Paper Sec. IX: the trusted entity rotates the table keys; execution
    // continues validating under the new keys with a flushed SC.
    let mut sim = RevSimulator::new(host_program(), RevConfig::paper_default()).expect("builds");
    let r1 = sim.run(30_000);
    assert!(r1.rev.violation.is_none());
    let old_key = sim.monitor().sag().tables()[0].key();
    sim.rekey_modules(1).expect("rekeys");
    let new_key = sim.monitor().sag().tables()[0].key();
    assert_ne!(old_key, new_key, "the key actually rotated");
    let r2 = sim.run(120_000);
    assert!(r2.rev.violation.is_none(), "{:?}", r2.rev.violation);
    assert!(r2.rev.validations > r1.rev.validations);
}

#[test]
fn stale_table_after_rekey_is_useless_to_an_attacker() {
    // An attacker who copies the old encrypted table and restores it after
    // a rekey (a rollback attack) cannot get illicit code validated: the
    // SAG's key registers hold the *new* key, so the stale image decrypts
    // to garbage and validation fails closed.
    let mut sim = RevSimulator::new(host_program(), RevConfig::paper_default()).expect("builds");
    sim.run(20_000);
    let (base, old_image) = {
        let t = &sim.monitor().sag().tables()[0];
        (t.base(), t.image().to_vec())
    };
    sim.rekey_modules(7).expect("rekeys");
    let new_base = sim.monitor().sag().tables()[0].base();
    // Roll the old ciphertext back over the new table's location.
    sim.inject(|mem| mem.write_bytes(new_base, &old_image));
    let _ = base;
    let r = sim.run(200_000);
    match r.outcome {
        RunOutcome::Violation(v) => {
            assert!(matches!(v.kind, ViolationKind::HashMismatch | ViolationKind::TableCorrupt))
        }
        other => panic!("rollback must not validate: {other:?}"),
    }
}
