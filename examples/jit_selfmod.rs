//! Self-modifying code under REV (paper Sec. IV.E): a JIT-style program
//! patches one of its own instructions at run time. Unsanctioned, the
//! patched block fails hash validation; bracketed by the paper's REV
//! disable/enable system calls, the trusted modification window runs
//! unvalidated and normal validated execution resumes afterwards.
//!
//! ```sh
//! cargo run --release --example jit_selfmod
//! ```

use rev_core::{RevConfig, RevSimulator, RunOutcome};
use rev_core::{SYSCALL_REV_DISABLE, SYSCALL_REV_ENABLE};
use rev_isa::{Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};

fn jit_program(sanctioned: bool) -> Program {
    let mut b = ModuleBuilder::new("jit", 0x1000);
    let jit_region = b.new_label();
    let patch_site = b.new_label();

    let f = b.begin_function("main");
    b.call(jit_region); // run the template once
    if sanctioned {
        b.push(Instruction::Syscall { num: SYSCALL_REV_DISABLE });
    }
    // Patch `addi r9, r9, 5` + `nop` into `addi r9, r9, 1000` + `nop`.
    let mut new_bytes = Instruction::AddI { rd: Reg::R9, rs: Reg::R9, imm: 1000 }.encode();
    new_bytes.push(0x00);
    b.li_label(Reg::R10, patch_site);
    b.push(Instruction::Li {
        rd: Reg::R11,
        imm: u64::from_le_bytes(new_bytes.try_into().expect("8 bytes")),
    });
    b.push(Instruction::Store { rs: Reg::R11, rbase: Reg::R10, off: 0 });
    b.call(jit_region); // run the generated code
    if sanctioned {
        b.push(Instruction::Syscall { num: SYSCALL_REV_ENABLE });
    }
    b.push(Instruction::Halt);
    b.end_function(f);

    let g = b.begin_function("jit_region");
    b.bind(jit_region);
    b.bind(patch_site);
    b.push(Instruction::AddI { rd: Reg::R9, rs: Reg::R9, imm: 5 });
    b.push(Instruction::Nop);
    b.push(Instruction::Ret);
    b.end_function(g);

    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- unsanctioned self-modification (REV active throughout) --");
    let mut sim = RevSimulator::new(jit_program(false), RevConfig::paper_default())?;
    let report = sim.run(10_000);
    match report.outcome {
        RunOutcome::Violation(v) => println!("caught: {v}"),
        other => println!("UNEXPECTED: {other:?}"),
    }

    println!();
    println!("-- sanctioned JIT window (REV disable/enable system calls) --");
    let mut sim = RevSimulator::new(jit_program(true), RevConfig::paper_default())?;
    let report = sim.run(10_000);
    println!("outcome      : {:?}", report.outcome);
    println!("violations   : {:?}", report.rev.violation);
    println!(
        "r9           : {} (5 from the template + 1000 from the generated code)",
        sim.pipeline().oracle().state().reg(Reg::R9)
    );
    println!("validations  : {} (resumed after re-enable)", report.rev.validations);
    Ok(())
}
