//! Measure REV's performance overhead on a SPEC-2006-like workload:
//! the headline experiment of the paper (Figs. 6/7), on one benchmark.
//!
//! ```sh
//! cargo run --release --example spec_overhead            # default: mcf
//! cargo run --release --example spec_overhead -- gobmk   # pick another
//! ```

use rev_core::{RevConfig, RevSimulator};
use rev_workloads::{generate, SpecProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let profile = SpecProfile::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'"))
        .scaled(0.25); // keep the example snappy
    let instructions = 500_000;

    println!("benchmark          : {name} (scaled)");
    let program = generate(&profile);
    println!("static code        : {} KiB", program.total_code_len() >> 10);

    let mut sim = RevSimulator::new(program, RevConfig::paper_default())?;
    println!(
        "signature table    : {} KiB ({:.0}% of code)",
        sim.table_stats()[0].image_bytes >> 10,
        sim.table_stats()[0].ratio_to_code() * 100.0
    );

    println!("running baseline ({instructions} instructions, warmed)...");
    let base = sim.run_baseline_with_warmup(100_000, instructions);
    println!("running REV...");
    sim.warmup(100_000);
    let rev = sim.run(instructions);

    let base_ipc = base.cpu.ipc();
    let rev_ipc = rev.cpu.ipc();
    println!();
    println!("base IPC           : {base_ipc:.3}");
    println!("REV IPC            : {rev_ipc:.3}");
    println!("overhead           : {:.2}%", (base_ipc - rev_ipc) / base_ipc * 100.0);
    println!("blocks validated   : {}", rev.rev.validations);
    println!(
        "SC: {} hits, {} partial misses, {} complete misses ({:.2}% miss rate)",
        rev.rev.sc.hits,
        rev.rev.sc.partial_misses,
        rev.rev.sc.complete_misses,
        rev.rev.sc.miss_rate() * 100.0
    );
    println!("validation stalls  : {} cycles", rev.cpu.validation_stall_cycles);
    println!("violations         : {:?}", rev.rev.violation);
    Ok(())
}
