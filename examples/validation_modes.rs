//! The three validation modes side by side (paper Secs. V.B–V.D): what
//! each one checks, what its table costs in memory, and what it costs in
//! performance.
//!
//! ```sh
//! cargo run --release --example validation_modes
//! ```

use rev_core::{RevConfig, RevSimulator, ValidationMode};
use rev_workloads::{generate, SpecProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = SpecProfile::by_name("h264ref").expect("profile exists").scaled(0.25);
    let instructions = 400_000;

    println!("workload: h264ref (scaled), {instructions} instructions");
    println!();
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>12}",
        "mode", "table KiB", "% of code", "ovh %", "checks"
    );
    println!("{:-<60}", "");

    let mut base_ipc = None;
    for (mode, checks) in [
        (ValidationMode::Standard, "hash + computed + returns"),
        (ValidationMode::Aggressive, "hash + every target"),
        (ValidationMode::CfiOnly, "computed + returns only"),
    ] {
        let program = generate(&profile);
        let mut sim = RevSimulator::new(program, RevConfig::paper_default().with_mode(mode))?;
        let base = base_ipc
            .get_or_insert_with(|| sim.run_baseline_with_warmup(100_000, instructions).cpu.ipc())
            .to_owned();
        sim.warmup(100_000);
        let rev = sim.run(instructions);
        let stats = sim.table_stats()[0];
        println!(
            "{:<12} {:>12} {:>10.1} {:>10.2} {:>12}",
            mode.to_string(),
            stats.image_bytes >> 10,
            stats.ratio_to_code() * 100.0,
            (base - rev.cpu.ipc()) / base * 100.0,
            checks
        );
    }
    println!();
    println!("standard is the paper's design point; aggressive closes the truncated-");
    println!("hash corner case at ~2x table size; CFI-only assumes code integrity is");
    println!("protected elsewhere and shrinks the table to a few percent of the binary.");
    Ok(())
}
