//! The paper's Sec. IV.D workflow for computed branches whose targets
//! static analysis cannot enumerate: run *profiling* (training) passes,
//! collect the observed (source → target) edges, merge them into the
//! module's target sets, and only then let the trusted linker build the
//! signature tables.
//!
//! ```sh
//! cargo run --release --example profiling_workflow
//! ```

use rev_core::{profile_indirect_targets, RevConfig, RevSimulator, RunOutcome};
use rev_isa::{AluOp, Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};

/// A dispatcher whose jump table is opaque to static analysis (the builder
/// records an EMPTY target set, standing in for a stripped binary).
fn opaque_program() -> Program {
    let mut b = ModuleBuilder::new("opaque", 0x1000);
    let f = b.begin_function("main");
    let (t0, t1, t2, t3) = (b.new_label(), b.new_label(), b.new_label(), b.new_label());
    let table = b.data_label_table(&[t0, t1, t2, t3]);
    let top = b.new_label();
    b.bind(top);
    b.push(Instruction::MulI { rd: Reg::R27, rs: Reg::R27, imm: 1_103_515_245 });
    b.push(Instruction::AddI { rd: Reg::R27, rs: Reg::R27, imm: 12_345 });
    b.push(Instruction::AndI { rd: Reg::R2, rs: Reg::R27, imm: 3 });
    b.push(Instruction::Li { rd: Reg::R3, imm: 3 });
    b.push(Instruction::Alu { op: AluOp::Shl, rd: Reg::R2, rs1: Reg::R2, rs2: Reg::R3 });
    b.li_data(Reg::R4, table);
    b.push(Instruction::Alu { op: AluOp::Add, rd: Reg::R4, rs1: Reg::R4, rs2: Reg::R2 });
    b.push(Instruction::Load { rd: Reg::R5, rbase: Reg::R4, off: 0 });
    b.jmp_ind(Reg::R5, &[]); // <- no static annotation
    for (i, t) in [t0, t1, t2, t3].into_iter().enumerate() {
        b.bind(t);
        b.push(Instruction::AddI {
            rd: Reg::from_index(6 + i as u8).expect("r6..r9"),
            rs: Reg::from_index(6 + i as u8).expect("r6..r9"),
            imm: 1,
        });
        b.jmp(top);
    }
    b.end_function(f);
    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = opaque_program();

    println!("-- without training: the first computed jump is unidentified --");
    let mut sim = RevSimulator::new(program.clone(), RevConfig::paper_default())?;
    match sim.run(50_000).outcome {
        RunOutcome::Violation(v) => println!("rejected, as the paper requires: {v}"),
        other => println!("UNEXPECTED: {other:?}"),
    }

    println!();
    println!("-- profiling run (functional, no timing) --");
    let profile = profile_indirect_targets(&program, 20_000);
    println!(
        "observed {} computed-branch site(s) over {} instructions:",
        profile.sites(),
        profile.executed()
    );
    for (src, dst) in profile.edges() {
        println!("  {src:#x} -> {dst:#x}");
    }

    println!();
    println!("-- re-link with the discovered targets and run under REV --");
    let mut module = program.modules()[0].clone();
    module.merge_indirect_targets(profile.edges());
    let mut pb = Program::builder();
    pb.module(module);
    pb.entry(program.entry());
    let mut sim = RevSimulator::new(pb.build(), RevConfig::paper_default())?;
    let report = sim.run(100_000);
    println!("{report}");
    assert!(report.rev.violation.is_none());
    Ok(())
}
