//! Attack gallery: mounts every attack class from the paper's Table 1
//! against a vulnerable victim program, twice — once on an unprotected
//! machine (showing the attack genuinely works) and once under REV
//! (showing detection *and* containment: no malicious store ever reaches
//! validated memory).
//!
//! ```sh
//! cargo run --release --example attack_detection
//! ```

use rev_attacks::{mount, mount_unprotected, AttackKind};
use rev_core::RevConfig;

fn main() {
    println!("{:-<78}", "");
    println!("{:<28} {:>14} {:>10} {:>22}", "attack", "unprotected", "REV", "detection");
    println!("{:-<78}", "");
    for kind in AttackKind::ALL {
        let unprot = if kind == AttackKind::TableTamper {
            "n/a".to_string()
        } else {
            let u = mount_unprotected(kind).expect("victim builds");
            if u.tainted {
                "compromised".into()
            } else {
                "survived?".to_string()
            }
        };
        let out = mount(kind, RevConfig::paper_default()).expect("scenario mounts");
        let verdict = if out.detected && !out.tainted {
            "caught+contained"
        } else if out.detected {
            "caught, TAINTED"
        } else {
            "MISSED"
        };
        println!(
            "{:<28} {:>14} {:>10} {:>22}",
            kind.to_string(),
            unprot,
            verdict,
            out.violation.map(|v| v.kind.to_string()).unwrap_or_else(|| "-".into()),
        );
    }
    println!("{:-<78}", "");
    println!("REV is attack-agnostic: every class above trips one of the same three");
    println!("checks — block hash, transfer-target membership, or return linkage.");
}
