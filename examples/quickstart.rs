//! Quickstart: assemble a tiny program, build its encrypted signature
//! table, and run it on the REV-protected out-of-order core.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rev_core::{RevConfig, RevSimulator, RunOutcome};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{ModuleBuilder, Program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble a module: sum the numbers 1..=100, store the result.
    let mut b = ModuleBuilder::new("quickstart", 0x1000);
    let f = b.begin_function("main");
    let top = b.new_label();
    let result_cell = b.data_zeroed(8);
    b.push(Instruction::Li { rd: Reg::R2, imm: 100 }); // limit
    b.bind(top);
    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 }); // i += 1
    b.push(Instruction::Alu { op: rev_isa::AluOp::Add, rd: Reg::R3, rs1: Reg::R3, rs2: Reg::R1 }); // sum += i
    b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
    b.li_data(Reg::R5, result_cell);
    b.push(Instruction::Store { rs: Reg::R3, rbase: Reg::R5, off: 0 });
    b.push(Instruction::Halt);
    b.end_function(f);

    let mut pb = Program::builder();
    pb.module(b.finish()?);
    let program = pb.build();

    // 2. Build the simulator: this is where the "trusted toolchain" runs —
    //    static CFG analysis, per-block reference signatures, AES-encrypted
    //    signature table placed in simulated RAM, SAG registers loaded.
    let mut sim = RevSimulator::new(program, RevConfig::paper_default())?;

    // 3. Run. Every basic block is hashed as it is fetched and validated
    //    as its terminator commits; stores stay quarantined until their
    //    block validates.
    let report = sim.run(100_000);

    assert_eq!(report.outcome, RunOutcome::Halted);
    println!("outcome            : {:?}", report.outcome);
    println!("instructions       : {}", report.cpu.committed_instrs);
    println!("cycles             : {}", report.cpu.cycles);
    println!("IPC                : {:.3}", report.cpu.ipc());
    println!("blocks validated   : {}", report.rev.validations);
    println!("SC hit rate        : {:.1}%", (1.0 - report.rev.sc.miss_rate()) * 100.0);
    println!("stores released    : {}", report.rev.stores_released);
    println!("violations         : {:?}", report.rev.violation);

    // 4. The architectural result (sum 1..=100 = 5050) reached validated
    //    memory only because every producing block authenticated.
    let result_addr = sim.pipeline().oracle().state().reg(Reg::R5);
    let result = sim.monitor().committed().read_u64(result_addr);
    println!("sum(1..=100)       : {result}");
    assert_eq!(result, 5050);
    Ok(())
}
