//! REV signature derivations.
//!
//! The paper's validation hash binds four things together (Sec. V.B): the
//! instruction bytes of the basic block, the address of the BB (the address
//! of its terminating control-flow instruction), the successor (target)
//! address recorded in the table entry, and the predecessor address. The
//! stored reference value is the **last 4 bytes** of the crypto hash
//! (Sec. V.C — the deliberate truncation the "aggressive" mode exists to
//! compensate for). The hash is keyed with the module's secret key so that
//! an adversary who can read the (encrypted) table still cannot forge
//! entries.

use crate::cubehash::{CubeHash, CubeHashX4, X4_LANES};
use std::fmt;

/// Full-width digest of a basic block's instruction bytes, as produced by
/// the CHG while the block's instructions stream through the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BodyHash(pub [u8; 32]);

/// The truncated 4-byte reference digest stored in a signature-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EntryDigest(pub u32);

impl fmt::Display for EntryDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

impl fmt::LowerHex for EntryDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A per-module secret key used both to key the validation hash and to
/// encrypt the module's signature table (paper Sec. IX: the symmetric key is
/// itself wrapped with a CPU-specific public key; key wrapping is modeled in
/// `rev-sigtable`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignatureKey([u8; 16]);

impl fmt::Debug for SignatureKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SignatureKey(..)")
    }
}

impl SignatureKey {
    /// Wraps raw key bytes.
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        SignatureKey(bytes)
    }

    /// Returns the raw key bytes (for the AES table-encryption path).
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Derives a key deterministically from a seed (convenience for tests
    /// and workload setup; production keys come from the TPM-like store).
    pub fn from_seed(seed: u64) -> Self {
        let digest = CubeHash::digest(&seed.to_le_bytes());
        let mut key = [0u8; 16];
        key.copy_from_slice(&digest[..16]);
        SignatureKey(key)
    }
}

/// Hashes a basic block's raw instruction bytes, exactly as the pipelined
/// CHG does while the block streams through the fetch stages.
pub fn bb_body_hash(instr_bytes: &[u8]) -> BodyHash {
    let mut h = CubeHash::new();
    bb_body_hash_with(&mut h, instr_bytes)
}

/// [`bb_body_hash`] through a caller-owned reusable hasher: the
/// allocation-free hot path. The hasher is reset before and after use, so
/// any parameters-compatible instance can be shared across calls.
///
/// # Panics
///
/// Panics if the hasher's digest length is not 32 bytes (the CHG digest
/// width).
pub fn bb_body_hash_with(h: &mut CubeHash, instr_bytes: &[u8]) -> BodyHash {
    h.reset();
    h.update(instr_bytes);
    let digest = h.finalize_reset();
    let mut out = [0u8; 32];
    out.copy_from_slice(&digest);
    BodyHash(out)
}

/// Derives the 4-byte reference digest for one signature-table entry.
///
/// Binds `(key, bb_addr, body, target, pred)`; any change to the block's
/// bytes, its address, the recorded successor, or the recorded predecessor
/// produces a different digest (with 2⁻³² collision probability — see the
/// paper's Sec. V.C discussion and the `Aggressive` mode).
pub fn entry_digest(
    key: &SignatureKey,
    bb_addr: u64,
    body: &BodyHash,
    target: u64,
    pred: u64,
) -> EntryDigest {
    let mut h = CubeHash::new();
    entry_digest_with(&mut h, key, bb_addr, body, target, pred)
}

/// [`entry_digest`] through a caller-owned reusable hasher: the
/// allocation-free hot path used by the run-time monitor, which derives one
/// digest per validated basic block. The hasher is reset before and after
/// use.
pub fn entry_digest_with(
    h: &mut CubeHash,
    key: &SignatureKey,
    bb_addr: u64,
    body: &BodyHash,
    target: u64,
    pred: u64,
) -> EntryDigest {
    h.reset();
    h.update(&key.0);
    h.update(&bb_addr.to_le_bytes());
    h.update(&body.0);
    h.update(&target.to_le_bytes());
    h.update(&pred.to_le_bytes());
    let digest = h.finalize_reset();
    // "the last 4 bytes of the crypto hash value" (paper Sec. V.C)
    let tail: [u8; 4] = digest[digest.len() - 4..].try_into().expect("4 bytes");
    EntryDigest(u32::from_le_bytes(tail))
}

/// Four [`bb_body_hash`]es in one multi-lane pass: the batched CHG path
/// (monitor pending-BB batches, signature-table builds). Lane `i` of the
/// result is bit-equal to `bb_body_hash(bodies[i])` — [`CubeHashX4`]
/// carries the equivalence proof — so batched and scalar hashing are
/// freely interchangeable.
pub fn bb_body_hash_x4(h: &CubeHashX4, bodies: [&[u8]; X4_LANES]) -> [BodyHash; X4_LANES] {
    let digests = h.digest4(bodies);
    std::array::from_fn(|lane| {
        let mut out = [0u8; 32];
        out.copy_from_slice(&digests[lane]);
        BodyHash(out)
    })
}

/// Per-lane input to [`entry_digest_x4`]: `(bb_addr, body, target, pred)`,
/// the same four bound fields [`entry_digest`] takes.
pub type EntryDigestInput<'a> = (u64, &'a BodyHash, u64, u64);

/// Four [`entry_digest`]s in one multi-lane pass. Every lane hashes the
/// same fixed 72-byte message shape (key ‖ bb_addr ‖ body ‖ target ‖
/// pred), so the absorb phase is fully lockstep; lane `i` of the result
/// is bit-equal to `entry_digest(key, ..inputs[i])`.
pub fn entry_digest_x4(
    h: &CubeHashX4,
    key: &SignatureKey,
    inputs: [EntryDigestInput<'_>; X4_LANES],
) -> [EntryDigest; X4_LANES] {
    let mut msgs = [[0u8; 72]; X4_LANES];
    for (msg, &(bb_addr, body, target, pred)) in msgs.iter_mut().zip(inputs.iter()) {
        msg[..16].copy_from_slice(&key.0);
        msg[16..24].copy_from_slice(&bb_addr.to_le_bytes());
        msg[24..56].copy_from_slice(&body.0);
        msg[56..64].copy_from_slice(&target.to_le_bytes());
        msg[64..72].copy_from_slice(&pred.to_le_bytes());
    }
    let digests = h.digest4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
    std::array::from_fn(|lane| {
        let d = &digests[lane];
        let tail: [u8; 4] = d[d.len() - 4..].try_into().expect("4 bytes");
        EntryDigest(u32::from_le_bytes(tail))
    })
}

/// Chaos-campaign injection site for CHG output corruption: consults the
/// injector at [`rev_trace::FaultLayer::ChgDigest`] and, on the trigger
/// visit, flips one bit of `hash` — modeling a transient fault in the
/// hash generator's output latch. Returns `true` when the digest was
/// altered. A disabled injector makes this a single branch.
pub fn apply_chg_fault(fault: &rev_trace::FaultInjector, hash: &mut BodyHash) -> bool {
    fault.corrupt_bytes(rev_trace::FaultLayer::ChgDigest, &mut hash.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(bytes: &[u8]) -> BodyHash {
        bb_body_hash(bytes)
    }

    /// The multi-lane body-hash and entry-digest paths must match their
    /// scalar counterparts lane for lane (mixed-length bodies included).
    #[test]
    fn x4_sig_helpers_match_scalar() {
        let h4 = CubeHashX4::new();
        let bodies: [&[u8]; 4] = [&[], &[0x10], &[1, 2, 3, 4, 5, 6, 7], &[0xee; 90]];
        let hashes = bb_body_hash_x4(&h4, bodies);
        for (lane, (got, raw)) in hashes.iter().zip(bodies).enumerate() {
            assert_eq!(*got, bb_body_hash(raw), "body lane {lane}");
        }
        let key = SignatureKey::from_seed(7);
        let inputs: [EntryDigestInput<'_>; 4] = [
            (0x1000, &hashes[0], 0x2000, 0x3000),
            (0x1008, &hashes[1], 0, 0),
            (u64::MAX, &hashes[2], 0x40, u64::MAX),
            (0, &hashes[3], u64::MAX, 0x8000_0000_0000_0000),
        ];
        let digests = entry_digest_x4(&h4, &key, inputs);
        for (lane, (got, (a, b, t, p))) in digests.iter().zip(inputs).enumerate() {
            assert_eq!(*got, entry_digest(&key, a, b, t, p), "entry lane {lane}");
        }
    }

    #[test]
    fn digest_binds_every_field() {
        let key = SignatureKey::from_seed(1);
        let b = body(&[1, 2, 3]);
        let base = entry_digest(&key, 0x1000, &b, 0x2000, 0x3000);
        assert_ne!(base, entry_digest(&key, 0x1008, &b, 0x2000, 0x3000), "bb addr");
        assert_ne!(base, entry_digest(&key, 0x1000, &b, 0x2008, 0x3000), "target");
        assert_ne!(base, entry_digest(&key, 0x1000, &b, 0x2000, 0x3008), "pred");
        assert_ne!(base, entry_digest(&key, 0x1000, &body(&[1, 2, 4]), 0x2000, 0x3000), "body");
        assert_ne!(
            base,
            entry_digest(&SignatureKey::from_seed(2), 0x1000, &b, 0x2000, 0x3000),
            "key"
        );
    }

    #[test]
    fn digest_is_deterministic() {
        let key = SignatureKey::from_seed(9);
        let b = body(b"block");
        assert_eq!(entry_digest(&key, 7, &b, 8, 9), entry_digest(&key, 7, &b, 8, 9));
    }

    #[test]
    fn key_debug_redacts() {
        let key = SignatureKey::from_bytes([0xaa; 16]);
        assert_eq!(format!("{key:?}"), "SignatureKey(..)");
    }

    #[test]
    fn from_seed_is_stable_and_distinct() {
        assert_eq!(SignatureKey::from_seed(5), SignatureKey::from_seed(5));
        assert_ne!(SignatureKey::from_seed(5), SignatureKey::from_seed(6));
    }

    /// The reusable-hasher variants must agree exactly with the one-shot
    /// functions, across repeated uses of one instance.
    #[test]
    fn reusable_variants_match_oneshot() {
        let mut h = CubeHash::new();
        let key = SignatureKey::from_seed(3);
        for (i, bytes) in [&b"alpha"[..], b"beta", b"", b"gamma gamma"].iter().enumerate() {
            let b = bb_body_hash_with(&mut h, bytes);
            assert_eq!(b, bb_body_hash(bytes), "body hash diverged on use {i}");
            let d = entry_digest_with(&mut h, &key, 0x100 + i as u64, &b, 0x200, 0x300);
            assert_eq!(
                d,
                entry_digest(&key, 0x100 + i as u64, &b, 0x200, 0x300),
                "entry digest diverged on use {i}"
            );
        }
    }
}
