//! # rev-crypto — cryptographic primitives and the CHG model for REV
//!
//! The REV paper relies on two cryptographic components, both implemented
//! here from scratch (no external crypto crates):
//!
//! * **CubeHash** ([`CubeHash`]) — the paper's crypto hash generator (CHG)
//!   is a pipelined hardware CubeHash implementation; a 5-round variant
//!   meets the 16-cycle latency budget (paper Sec. VI, citing Bernstein's
//!   SHA-3 round-2 candidate). We implement the full CubeHash`r`/`b`
//!   algorithm with parameterizable rounds, block size and digest length.
//! * **AES-128** ([`Aes128`]) — reference signature tables are stored in RAM
//!   encrypted with a per-module symmetric key (paper Secs. IV.A, IX).
//!   Newer CPUs already carry AES units, which the paper leans on for its
//!   area estimate. Implemented per FIPS-197 with the S-box derived from the
//!   GF(2⁸) inverse (validated against the FIPS-197 test vector).
//!
//! On top of the primitives sit the REV-specific derivations
//! ([`SignatureKey`], [`bb_body_hash`], [`entry_digest`]) and the
//! cycle-level timing model of the pipelined hash generator ([`ChgPipeline`])
//! with speculative-tag flushing, mirroring the paper's Figure 1 component.
//!
//! # Example
//!
//! ```
//! use rev_crypto::{CubeHash, SignatureKey, bb_body_hash, entry_digest};
//!
//! // Hash a basic block's instruction bytes the way the CHG does.
//! let body = bb_body_hash(&[0x10, 0x01, 0x02, 0x03]);
//!
//! // Derive the 4-byte reference digest stored in the signature table.
//! let key = SignatureKey::from_bytes([7u8; 16]);
//! let d = entry_digest(&key, 0x1000, &body, 0x1040, 0x0f00);
//! assert_eq!(d, entry_digest(&key, 0x1000, &body, 0x1040, 0x0f00));
//! ```

mod aes;
mod chg;
mod cubehash;
mod sig;

pub use aes::{Aes128, BLOCK_LEN};
pub use chg::{ChgConfig, ChgPipeline, ChgTag};
pub use cubehash::{CubeHash, CubeHashParams, CubeHashX4, Digest, MAX_DIGEST_BYTES, X4_LANES};
pub use sig::{
    apply_chg_fault, bb_body_hash, bb_body_hash_with, bb_body_hash_x4, entry_digest,
    entry_digest_with, entry_digest_x4, BodyHash, EntryDigest, EntryDigestInput, SignatureKey,
};
