//! CubeHash`r`/`b`-`h`, implemented from Bernstein's specification.
//!
//! State: 32 little-endian 32-bit words (128 bytes). One round applies ten
//! steps of add/rotate/swap/xor on the two 16-word halves. Initialization
//! and finalization each run `10·r` rounds; each `b`-byte message block is
//! XORed into the front of the state followed by `r` rounds. Padding
//! appends a single `0x80` byte and zero-fills to the block boundary.
//!
//! The REV paper uses a 5-round variant whose hardware pipeline fits the
//! 16-cycle fetch-to-commit window (Sec. VI); [`CubeHashParams::rev_default`]
//! selects exactly that configuration.

use std::fmt;
use std::ops::Deref;

/// Number of 32-bit words in the CubeHash state.
const STATE_WORDS: usize = 32;

/// Largest digest CubeHash can emit (`h/8` ≤ 64).
pub const MAX_DIGEST_BYTES: usize = 64;

/// A finalized CubeHash digest: a fixed-size buffer plus length, so the
/// hot hashing path never touches the heap. Dereferences to `[u8]` of the
/// configured digest length.
#[derive(Clone, Copy)]
pub struct Digest {
    len: u8,
    bytes: [u8; MAX_DIGEST_BYTES],
}

impl Digest {
    /// The digest bytes (`params.digest_bytes` long).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }
}

impl Deref for Digest {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl PartialEq for Digest {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Digest {}

impl PartialEq<[u8]> for Digest {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_bytes() == other
    }
}

impl PartialEq<&[u8]> for Digest {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_bytes() == *other
    }
}

impl PartialEq<Vec<u8>> for Digest {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_bytes() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Digest {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_bytes() == other.as_slice()
    }
}

impl std::hash::Hash for Digest {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest(")?;
        for b in self.as_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// Parameters of a CubeHash instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeHashParams {
    /// Rounds per message block (`r`).
    pub rounds: u32,
    /// Bytes per message block (`b`, 1..=128).
    pub block_bytes: usize,
    /// Digest length in bytes (`h/8`, 1..=64).
    pub digest_bytes: usize,
}

impl CubeHashParams {
    /// The configuration used by the REV reproduction: 5 rounds, 32-byte
    /// blocks, 32-byte (256-bit) digest — the latency-optimized variant the
    /// paper cites as meeting the 16-cycle CHG budget.
    pub const fn rev_default() -> Self {
        CubeHashParams { rounds: 5, block_bytes: 32, digest_bytes: 32 }
    }

    /// The classical CubeHash16/32-512 configuration (SHA-3 round 2).
    pub const fn classical() -> Self {
        CubeHashParams { rounds: 16, block_bytes: 32, digest_bytes: 64 }
    }

    fn validate(&self) {
        assert!(self.rounds >= 1, "CubeHash requires at least one round");
        assert!((1..=128).contains(&self.block_bytes), "block_bytes must be in 1..=128");
        assert!((1..=64).contains(&self.digest_bytes), "digest_bytes must be in 1..=64");
    }
}

impl Default for CubeHashParams {
    fn default() -> Self {
        Self::rev_default()
    }
}

/// An incremental CubeHash hasher.
///
/// # Example
///
/// ```
/// use rev_crypto::CubeHash;
///
/// let mut h = CubeHash::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d1 = h.finalize();
/// let d2 = CubeHash::digest(b"hello world");
/// assert_eq!(d1, d2);
/// ```
#[derive(Clone)]
pub struct CubeHash {
    params: CubeHashParams,
    state: [u32; STATE_WORDS],
    /// The post-initialization state, kept so [`CubeHash::reset`] can
    /// rewind without re-running the `10·r` initialization rounds.
    iv: [u32; STATE_WORDS],
    buf: [u8; 128],
    buf_len: usize,
}

impl fmt::Debug for CubeHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CubeHash")
            .field("params", &self.params)
            .field("buffered", &self.buf_len)
            .finish()
    }
}

impl Default for CubeHash {
    fn default() -> Self {
        Self::new()
    }
}

impl CubeHash {
    /// Creates a hasher with the REV-default parameters
    /// ([`CubeHashParams::rev_default`]).
    pub fn new() -> Self {
        Self::with_params(CubeHashParams::rev_default())
    }

    /// Creates a hasher with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (`rounds == 0`,
    /// `block_bytes` not in `1..=128`, or `digest_bytes` not in `1..=64`).
    pub fn with_params(params: CubeHashParams) -> Self {
        params.validate();
        let mut state = [0u32; STATE_WORDS];
        state[0] = params.digest_bytes as u32;
        state[1] = params.block_bytes as u32;
        state[2] = params.rounds;
        for _ in 0..10 * params.rounds {
            round(&mut state);
        }
        CubeHash { params, state, iv: state, buf: [0; 128], buf_len: 0 }
    }

    /// Rewinds the hasher to its freshly initialized state so it can be
    /// reused for another message. Much cheaper than constructing a new
    /// hasher: the `10·r` initialization rounds were precomputed.
    pub fn reset(&mut self) {
        self.state = self.iv;
        self.buf_len = 0;
    }

    /// Returns the parameters this hasher was created with.
    pub fn params(&self) -> CubeHashParams {
        self.params
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        let b = self.params.block_bytes;
        while !data.is_empty() {
            let take = (b - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == b {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        let b = self.params.block_bytes;
        for (i, chunk) in self.buf[..b].chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state[i] ^= u32::from_le_bytes(word);
        }
        for _ in 0..self.params.rounds {
            round(&mut self.state);
        }
        self.buf_len = 0;
    }

    /// Finalizes the hash and returns the digest
    /// (`params.digest_bytes` long). Allocation-free: the digest lives in
    /// a fixed-size [`Digest`] buffer on the stack.
    pub fn finalize(mut self) -> Digest {
        self.finalize_core()
    }

    /// Finalizes the hash and rewinds the hasher for reuse (the
    /// allocation-free hot path: one hasher serves every basic block).
    pub fn finalize_reset(&mut self) -> Digest {
        let digest = self.finalize_core();
        self.reset();
        digest
    }

    fn finalize_core(&mut self) -> Digest {
        // Padding: append 0x80 then zeros to the block boundary, then
        // absorb the final block.
        self.buf[self.buf_len] = 0x80;
        for byte in &mut self.buf[self.buf_len + 1..self.params.block_bytes] {
            *byte = 0;
        }
        self.buf_len = self.params.block_bytes;
        self.absorb_block();
        // Finalization: XOR 1 into the last state word, then 10·r rounds.
        self.state[31] ^= 1;
        for _ in 0..10 * self.params.rounds {
            round(&mut self.state);
        }
        let mut bytes = [0u8; MAX_DIGEST_BYTES];
        for (chunk, word) in bytes.chunks_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        Digest { len: self.params.digest_bytes as u8, bytes }
    }

    /// One-shot digest with the REV-default parameters.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = CubeHash::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot digest with explicit parameters.
    pub fn digest_with(params: CubeHashParams, data: &[u8]) -> Digest {
        let mut h = CubeHash::with_params(params);
        h.update(data);
        h.finalize()
    }
}

/// Number of lanes in the ILP-friendly multi-lane hasher.
pub const X4_LANES: usize = 4;

/// A four-lane CubeHash engine: hashes four independent messages through
/// one structure-of-arrays state, so the ten add/rotate/swap/xor steps of
/// each round run over `[u32; 4]` rows the compiler lowers to 128-bit
/// vector ops. Bit-for-bit equal to four [`CubeHash`] runs (proven by the
/// `x4_*` tests below) — callers may freely mix scalar and multi-lane
/// hashing of the same inputs.
///
/// Messages of different lengths are handled by absorbing in lockstep
/// while every lane still has blocks and dropping to per-lane rounds for
/// the stragglers; the `10·r`-round finalization — the dominant cost for
/// the short messages REV hashes — is always fully vectorized, and the
/// `10·r`-round initialization is precomputed once at construction
/// (shared across every lane and every call).
///
/// # Example
///
/// ```
/// use rev_crypto::{CubeHash, CubeHashX4};
///
/// let h4 = CubeHashX4::new();
/// let msgs: [&[u8]; 4] = [b"a", b"bb", b"", b"dddd"];
/// let digests = h4.digest4(msgs);
/// for (d, m) in digests.iter().zip(msgs) {
///     assert_eq!(*d, CubeHash::digest(m));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CubeHashX4 {
    params: CubeHashParams,
    /// Shared post-initialization state (all lanes start identical).
    iv: [u32; STATE_WORDS],
}

impl Default for CubeHashX4 {
    fn default() -> Self {
        Self::new()
    }
}

impl CubeHashX4 {
    /// Creates a four-lane hasher with the REV-default parameters.
    pub fn new() -> Self {
        Self::with_params(CubeHashParams::rev_default())
    }

    /// Creates a four-lane hasher with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (see
    /// [`CubeHash::with_params`]).
    pub fn with_params(params: CubeHashParams) -> Self {
        let h = CubeHash::with_params(params);
        CubeHashX4 { params, iv: h.iv }
    }

    /// Returns the parameters this hasher was created with.
    pub fn params(&self) -> CubeHashParams {
        self.params
    }

    /// One-shot digests of four independent messages. Lane `i` of the
    /// result equals `CubeHash::digest_with(self.params(), msgs[i])`.
    pub fn digest4(&self, msgs: [&[u8]; X4_LANES]) -> [Digest; X4_LANES] {
        let b = self.params.block_bytes;
        let mut state = [[0u32; X4_LANES]; STATE_WORDS];
        for (row, iv) in state.iter_mut().zip(self.iv.iter()) {
            *row = [*iv; X4_LANES];
        }
        // Padding (0x80 then zero-fill) always opens one block past the
        // full blocks of the message, so every lane absorbs at least one.
        let nblocks: [usize; X4_LANES] = msgs.map(|m| m.len() / b + 1);
        let max_blocks = *nblocks.iter().max().expect("non-empty");
        let mut block = [0u8; 128];
        for j in 0..max_blocks {
            let mut active = [false; X4_LANES];
            for lane in 0..X4_LANES {
                if j < nblocks[lane] {
                    active[lane] = true;
                    load_padded_block(msgs[lane], j, b, &mut block);
                    for (i, chunk) in block[..b].chunks(4).enumerate() {
                        let mut word = [0u8; 4];
                        word[..chunk.len()].copy_from_slice(chunk);
                        state[i][lane] ^= u32::from_le_bytes(word);
                    }
                }
            }
            if active == [true; X4_LANES] {
                for _ in 0..self.params.rounds {
                    round_x4(&mut state);
                }
            } else {
                // Straggler blocks past a shorter lane's end: only the
                // still-absorbing lanes may advance.
                for (lane, &live) in active.iter().enumerate() {
                    if live {
                        for _ in 0..self.params.rounds {
                            round_lane(&mut state, lane);
                        }
                    }
                }
            }
        }
        // Finalization runs the same 10·r rounds in every lane: always
        // lockstep.
        for w in state[STATE_WORDS - 1].iter_mut() {
            *w ^= 1;
        }
        for _ in 0..10 * self.params.rounds {
            round_x4(&mut state);
        }
        std::array::from_fn(|lane| {
            let mut bytes = [0u8; MAX_DIGEST_BYTES];
            for (chunk, row) in bytes.chunks_mut(4).zip(state.iter()) {
                chunk.copy_from_slice(&row[lane].to_le_bytes());
            }
            Digest { len: self.params.digest_bytes as u8, bytes }
        })
    }
}

/// Writes block `j` of `msg`'s padded stream (message bytes, then a single
/// `0x80`, then zeros to the block boundary) into `out[..b]`.
fn load_padded_block(msg: &[u8], j: usize, b: usize, out: &mut [u8; 128]) {
    let off = j * b;
    let tail = &msg[off.min(msg.len())..];
    let n = tail.len().min(b);
    out[..n].copy_from_slice(&tail[..n]);
    out[n..b].fill(0);
    if n < b {
        out[n] = 0x80;
    }
}

/// One CubeHash round across all four lanes of the SoA state. Identical
/// step sequence to [`round`], with each step applied to a `[u32; 4]` row
/// (the per-row loops vectorize).
#[inline(always)]
fn round_x4(x: &mut [[u32; X4_LANES]; STATE_WORDS]) {
    // 1. x[16+i] += x[i]
    add_rows(x);
    // 2. x[i] <<<= 7
    for row in x.iter_mut().take(16) {
        for w in row.iter_mut() {
            *w = w.rotate_left(7);
        }
    }
    // 3. swap x[i] with x[i^8]
    for i in 0..8 {
        x.swap(i, i ^ 8);
    }
    // 4. x[i] ^= x[16+i]
    xor_rows(x);
    // 5. swap x[16+i] with x[16+(i^2)]
    for i in [0usize, 1, 4, 5, 8, 9, 12, 13] {
        x.swap(16 + i, 16 + (i ^ 2));
    }
    // 6. x[16+i] += x[i]
    add_rows(x);
    // 7. x[i] <<<= 11
    for row in x.iter_mut().take(16) {
        for w in row.iter_mut() {
            *w = w.rotate_left(11);
        }
    }
    // 8. swap x[i] with x[i^4]
    for i in [0usize, 1, 2, 3, 8, 9, 10, 11] {
        x.swap(i, i ^ 4);
    }
    // 9. x[i] ^= x[16+i]
    xor_rows(x);
    // 10. swap x[16+i] with x[16+(i^1)]
    for i in [0usize, 2, 4, 6, 8, 10, 12, 14] {
        x.swap(16 + i, 16 + (i ^ 1));
    }
}

/// `x[16+i] += x[i]` for `i in 0..16`, all lanes (steps 1 and 6).
#[inline(always)]
fn add_rows(x: &mut [[u32; X4_LANES]; STATE_WORDS]) {
    let (lo, hi) = x.split_at_mut(16);
    for (dst, src) in hi.iter_mut().zip(lo.iter()) {
        for (w, v) in dst.iter_mut().zip(src.iter()) {
            *w = w.wrapping_add(*v);
        }
    }
}

/// `x[i] ^= x[16+i]` for `i in 0..16`, all lanes (steps 4 and 9).
#[inline(always)]
fn xor_rows(x: &mut [[u32; X4_LANES]; STATE_WORDS]) {
    let (lo, hi) = x.split_at_mut(16);
    for (dst, src) in lo.iter_mut().zip(hi.iter()) {
        for (w, v) in dst.iter_mut().zip(src.iter()) {
            *w ^= *v;
        }
    }
}

/// One CubeHash round confined to lane `l` of the SoA state (straggler
/// absorb blocks when lanes have unequal message lengths). The swap steps
/// must move only lane `l`'s words — whole-row swaps would corrupt the
/// other lanes.
fn round_lane(x: &mut [[u32; X4_LANES]; STATE_WORDS], l: usize) {
    let swap1 = |x: &mut [[u32; X4_LANES]; STATE_WORDS], a: usize, b: usize| {
        let t = x[a][l];
        x[a][l] = x[b][l];
        x[b][l] = t;
    };
    for i in 0..16 {
        x[16 + i][l] = x[16 + i][l].wrapping_add(x[i][l]);
    }
    for row in x.iter_mut().take(16) {
        row[l] = row[l].rotate_left(7);
    }
    for i in 0..8 {
        swap1(x, i, i ^ 8);
    }
    for i in 0..16 {
        x[i][l] ^= x[16 + i][l];
    }
    for i in [0usize, 1, 4, 5, 8, 9, 12, 13] {
        swap1(x, 16 + i, 16 + (i ^ 2));
    }
    for i in 0..16 {
        x[16 + i][l] = x[16 + i][l].wrapping_add(x[i][l]);
    }
    for row in x.iter_mut().take(16) {
        row[l] = row[l].rotate_left(11);
    }
    for i in [0usize, 1, 2, 3, 8, 9, 10, 11] {
        swap1(x, i, i ^ 4);
    }
    for i in 0..16 {
        x[i][l] ^= x[16 + i][l];
    }
    for i in [0usize, 2, 4, 6, 8, 10, 12, 14] {
        swap1(x, 16 + i, 16 + (i ^ 1));
    }
}

/// One CubeHash round (ten steps) on the 32-word state.
fn round(x: &mut [u32; STATE_WORDS]) {
    // 1. x[16+i] += x[i]
    for i in 0..16 {
        x[16 + i] = x[16 + i].wrapping_add(x[i]);
    }
    // 2. x[i] <<<= 7
    for w in x.iter_mut().take(16) {
        *w = w.rotate_left(7);
    }
    // 3. swap x[i] with x[i^8]
    for i in 0..8 {
        x.swap(i, i ^ 8);
    }
    // 4. x[i] ^= x[16+i]
    for i in 0..16 {
        x[i] ^= x[16 + i];
    }
    // 5. swap x[16+i] with x[16+(i^2)]
    for i in [0usize, 1, 4, 5, 8, 9, 12, 13] {
        x.swap(16 + i, 16 + (i ^ 2));
    }
    // 6. x[16+i] += x[i]
    for i in 0..16 {
        x[16 + i] = x[16 + i].wrapping_add(x[i]);
    }
    // 7. x[i] <<<= 11
    for w in x.iter_mut().take(16) {
        *w = w.rotate_left(11);
    }
    // 8. swap x[i] with x[i^4]
    for i in [0usize, 1, 2, 3, 8, 9, 10, 11] {
        x.swap(i, i ^ 4);
    }
    // 9. x[i] ^= x[16+i]
    for i in 0..16 {
        x[i] ^= x[16 + i];
    }
    // 10. swap x[16+i] with x[16+(i^1)]
    for i in [0usize, 2, 4, 6, 8, 10, 12, 14] {
        x.swap(16 + i, 16 + (i ^ 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(CubeHash::digest(b"abc"), CubeHash::digest(b"abc"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let inputs: [&[u8]; 6] = [b"", b"a", b"b", b"ab", b"ba", b"abc"];
        let digests: Vec<Digest> = inputs.iter().map(|i| CubeHash::digest(i)).collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 31, 32, 33, 500, 999, 1000] {
            let mut h = CubeHash::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), CubeHash::digest(&data), "split {split}");
        }
    }

    #[test]
    fn digest_length_respected() {
        for len in [1, 4, 16, 32, 64] {
            let p = CubeHashParams { rounds: 2, block_bytes: 32, digest_bytes: len };
            assert_eq!(CubeHash::digest_with(p, b"x").len(), len);
        }
    }

    #[test]
    fn different_params_different_digests() {
        let a = CubeHash::digest_with(CubeHashParams::rev_default(), b"x");
        let b = CubeHash::digest_with(
            CubeHashParams { rounds: 6, block_bytes: 32, digest_bytes: 32 },
            b"x",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_single_bit_flip() {
        let base: Vec<u8> = vec![0u8; 64];
        let d0 = CubeHash::digest(&base);
        let mut flipped = base.clone();
        flipped[0] ^= 1;
        let d1 = CubeHash::digest(&flipped);
        let differing_bits: u32 = d0.iter().zip(d1.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        // 256-bit digest: expect ~128 differing bits; accept a wide band.
        assert!(
            (64..=192).contains(&differing_bits),
            "weak avalanche: {differing_bits} bits differ"
        );
    }

    #[test]
    fn classical_params_construct() {
        let p = CubeHashParams::classical();
        assert_eq!(CubeHash::digest_with(p, b"").len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ =
            CubeHash::with_params(CubeHashParams { rounds: 0, block_bytes: 32, digest_bytes: 32 });
    }

    #[test]
    fn empty_message_snapshot_is_stable() {
        // Regression pin: the empty-message digest must never change across
        // refactors, otherwise every stored signature table would be invalid.
        let d1 = CubeHash::digest(b"");
        let d2 = CubeHash::digest(b"");
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 32);
        assert_ne!(d1, [0u8; 32], "digest must not be all zeros");
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Known-answer pins generated with the pre-refactor `Vec<u8>`-returning
    /// implementation: the fixed-array digest must match it byte for byte
    /// across both parameter sets, otherwise every stored signature table
    /// would silently be invalidated.
    #[test]
    fn fixed_array_digest_matches_legacy_vec_output() {
        let inputs: [&[u8]; 5] = [b"", b"a", b"abc", &[0xa5; 32], &[0x5a; 100]];
        let rev_expect = [
            "4d2ff9798d95bf1c3ff623a9d0820ded80819ef01ead8b8ee11c81decbb36d0e",
            "228fa32df52026541623f14a7f07671bfc5f5a9b04735a7617c8996455516a88",
            "eccd0c405693dd94e9cb7f9671b40072836192669f3fc01cbc6cb02b74d2291c",
            "5c8422660cdf6ea491d3374222755a670064f4d4cc565a66fef240e640b337c5",
            "0680177713cfecf02478fd19c657cc262babe484e1e21d3ee6d2d481d0f8604b",
        ];
        let classical_expect = [
            "4a1d00bbcfcb5a9562fb981e7f7db3350fe2658639d948b9d57452c22328bb32f468b072208450bad5ee178271408be0b16e5633ac8a1e3cf9864cfbfc8e043a",
            "2b3fa7a97d1e369a469c9e5d5d4e52fe37bc8befb369dc0923372c2eae1d91eea9f69407f433bb49ab6ceaeeea739bb752c1e33f69eda9a479e5a5b941968c75",
            "f63d6fa89ca9fe7ab2e171be52cf193f0c8ac9f62bad297032c1e7571046791a7e8964e5c8d91880d6f9c2a54176b05198901047438e05ac4ef38d45c0282673",
            "cdff075b0f6e757d2d32a784e3985bc7eeacc0ad96d434957b33a58e9a0d67944786b86560dcef6533cb46a30470a24632ad741864c5337ddf3a76ba77206bb9",
            "ce2aabc0a942d8007a73a57837c6d681e8f62ab35425f8907ce99961b5f382d05e2a7831e0c6c3a064364d98b93eca73e3eab83640a6708f48bfbaef16dd54e8",
        ];
        for ((input, rev), classical) in inputs.iter().zip(rev_expect).zip(classical_expect) {
            assert_eq!(
                hex(&CubeHash::digest_with(CubeHashParams::rev_default(), input)),
                rev,
                "rev_default digest changed for input len {}",
                input.len()
            );
            assert_eq!(
                hex(&CubeHash::digest_with(CubeHashParams::classical(), input)),
                classical,
                "classical digest changed for input len {}",
                input.len()
            );
        }
    }

    /// Every lane of the four-lane engine must be bit-equal to a scalar
    /// hash of the same message, for every length straddling the block
    /// boundaries (0, 1, b-1, b, b+1, ..., 4 blocks and change).
    #[test]
    fn x4_matches_scalar_across_lengths() {
        for params in [CubeHashParams::rev_default(), CubeHashParams::classical()] {
            let h4 = CubeHashX4::with_params(params);
            let data: Vec<u8> = (0..140u32).map(|i| (i.wrapping_mul(197) >> 3) as u8).collect();
            for base in 0..=136usize {
                // Four different lengths per call so the straggler
                // (per-lane) rounds are exercised, not just lockstep.
                let lens = [base, (base + 7) % 137, (base + 31) % 137, (base + 97) % 137];
                let msgs: [&[u8]; 4] = lens.map(|l| &data[..l]);
                let digests = h4.digest4(msgs);
                for (lane, (d, m)) in digests.iter().zip(msgs).enumerate() {
                    assert_eq!(
                        *d,
                        CubeHash::digest_with(params, m),
                        "lane {lane} diverged at len {}",
                        m.len()
                    );
                }
            }
        }
    }

    /// Equal-length lanes (the signature-table entry-digest shape: every
    /// message exactly 72 bytes) stay fully lockstep and bit-equal.
    #[test]
    fn x4_matches_scalar_equal_lengths() {
        let h4 = CubeHashX4::new();
        let msgs: [Vec<u8>; 4] =
            std::array::from_fn(|lane| (0..72u8).map(|i| i.wrapping_mul(lane as u8 + 3)).collect());
        let refs: [&[u8]; 4] = [&msgs[0], &msgs[1], &msgs[2], &msgs[3]];
        for (d, m) in h4.digest4(refs).iter().zip(refs) {
            assert_eq!(*d, CubeHash::digest(m));
        }
    }

    /// Identical messages in every lane produce identical digests (no
    /// cross-lane contamination through the shared state).
    #[test]
    fn x4_lanes_are_independent() {
        let h4 = CubeHashX4::new();
        let d = h4.digest4([b"same", b"same", b"same", b"same"]);
        assert_eq!(d[0], d[1]);
        assert_eq!(d[1], d[2]);
        assert_eq!(d[2], d[3]);
        assert_eq!(d[0], CubeHash::digest(b"same"));
    }

    /// The x4 engine against the scalar KAT pins directly — a change that
    /// broke both paths identically would slip past the equivalence tests.
    #[test]
    fn x4_matches_known_answers() {
        let h4 = CubeHashX4::new();
        let d = h4.digest4([b"", b"a", b"abc", &[0xa5; 32]]);
        assert_eq!(hex(&d[0]), "4d2ff9798d95bf1c3ff623a9d0820ded80819ef01ead8b8ee11c81decbb36d0e");
        assert_eq!(hex(&d[1]), "228fa32df52026541623f14a7f07671bfc5f5a9b04735a7617c8996455516a88");
        assert_eq!(hex(&d[2]), "eccd0c405693dd94e9cb7f9671b40072836192669f3fc01cbc6cb02b74d2291c");
        assert_eq!(hex(&d[3]), "5c8422660cdf6ea491d3374222755a670064f4d4cc565a66fef240e640b337c5");
    }

    /// `reset` + `finalize_reset` reuse must produce exactly the digests a
    /// fresh hasher would, for both parameter sets, including back-to-back
    /// messages on one instance.
    #[test]
    fn reusable_hasher_matches_fresh_construction() {
        for params in [CubeHashParams::rev_default(), CubeHashParams::classical()] {
            let mut reused = CubeHash::with_params(params);
            for msg in [&b""[..], b"a", b"hello world", &[0x42; 200]] {
                reused.update(msg);
                let via_reuse = reused.finalize_reset();
                assert_eq!(via_reuse, CubeHash::digest_with(params, msg));
            }
            // An explicit mid-message reset discards the partial message.
            reused.update(b"partial garbage");
            reused.reset();
            reused.update(b"abc");
            assert_eq!(reused.finalize_reset(), CubeHash::digest_with(params, b"abc"));
        }
    }
}
