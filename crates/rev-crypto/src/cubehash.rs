//! CubeHash`r`/`b`-`h`, implemented from Bernstein's specification.
//!
//! State: 32 little-endian 32-bit words (128 bytes). One round applies ten
//! steps of add/rotate/swap/xor on the two 16-word halves. Initialization
//! and finalization each run `10·r` rounds; each `b`-byte message block is
//! XORed into the front of the state followed by `r` rounds. Padding
//! appends a single `0x80` byte and zero-fills to the block boundary.
//!
//! The REV paper uses a 5-round variant whose hardware pipeline fits the
//! 16-cycle fetch-to-commit window (Sec. VI); [`CubeHashParams::rev_default`]
//! selects exactly that configuration.

use std::fmt;

/// Number of 32-bit words in the CubeHash state.
const STATE_WORDS: usize = 32;

/// Parameters of a CubeHash instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeHashParams {
    /// Rounds per message block (`r`).
    pub rounds: u32,
    /// Bytes per message block (`b`, 1..=128).
    pub block_bytes: usize,
    /// Digest length in bytes (`h/8`, 1..=64).
    pub digest_bytes: usize,
}

impl CubeHashParams {
    /// The configuration used by the REV reproduction: 5 rounds, 32-byte
    /// blocks, 32-byte (256-bit) digest — the latency-optimized variant the
    /// paper cites as meeting the 16-cycle CHG budget.
    pub const fn rev_default() -> Self {
        CubeHashParams { rounds: 5, block_bytes: 32, digest_bytes: 32 }
    }

    /// The classical CubeHash16/32-512 configuration (SHA-3 round 2).
    pub const fn classical() -> Self {
        CubeHashParams { rounds: 16, block_bytes: 32, digest_bytes: 64 }
    }

    fn validate(&self) {
        assert!(self.rounds >= 1, "CubeHash requires at least one round");
        assert!(
            (1..=128).contains(&self.block_bytes),
            "block_bytes must be in 1..=128"
        );
        assert!(
            (1..=64).contains(&self.digest_bytes),
            "digest_bytes must be in 1..=64"
        );
    }
}

impl Default for CubeHashParams {
    fn default() -> Self {
        Self::rev_default()
    }
}

/// An incremental CubeHash hasher.
///
/// # Example
///
/// ```
/// use rev_crypto::CubeHash;
///
/// let mut h = CubeHash::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d1 = h.finalize();
/// let d2 = CubeHash::digest(b"hello world");
/// assert_eq!(d1, d2);
/// ```
#[derive(Clone)]
pub struct CubeHash {
    params: CubeHashParams,
    state: [u32; STATE_WORDS],
    buf: [u8; 128],
    buf_len: usize,
}

impl fmt::Debug for CubeHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CubeHash")
            .field("params", &self.params)
            .field("buffered", &self.buf_len)
            .finish()
    }
}

impl Default for CubeHash {
    fn default() -> Self {
        Self::new()
    }
}

impl CubeHash {
    /// Creates a hasher with the REV-default parameters
    /// ([`CubeHashParams::rev_default`]).
    pub fn new() -> Self {
        Self::with_params(CubeHashParams::rev_default())
    }

    /// Creates a hasher with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (`rounds == 0`,
    /// `block_bytes` not in `1..=128`, or `digest_bytes` not in `1..=64`).
    pub fn with_params(params: CubeHashParams) -> Self {
        params.validate();
        let mut state = [0u32; STATE_WORDS];
        state[0] = params.digest_bytes as u32;
        state[1] = params.block_bytes as u32;
        state[2] = params.rounds;
        for _ in 0..10 * params.rounds {
            round(&mut state);
        }
        CubeHash { params, state, buf: [0; 128], buf_len: 0 }
    }

    /// Returns the parameters this hasher was created with.
    pub fn params(&self) -> CubeHashParams {
        self.params
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        let b = self.params.block_bytes;
        while !data.is_empty() {
            let take = (b - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == b {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        let b = self.params.block_bytes;
        for (i, chunk) in self.buf[..b].chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state[i] ^= u32::from_le_bytes(word);
        }
        for _ in 0..self.params.rounds {
            round(&mut self.state);
        }
        self.buf_len = 0;
    }

    /// Finalizes the hash and returns the digest
    /// (`params.digest_bytes` long).
    pub fn finalize(mut self) -> Vec<u8> {
        // Padding: append 0x80 then zeros to the block boundary.
        self.buf[self.buf_len] = 0x80;
        for byte in &mut self.buf[self.buf_len + 1..self.params.block_bytes] {
            *byte = 0;
        }
        self.buf_len = self.params.block_bytes;
        // absorb_block expects buf_len == block; emulate by direct call.
        let b = self.params.block_bytes;
        for (i, chunk) in self.buf[..b].chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state[i] ^= u32::from_le_bytes(word);
        }
        for _ in 0..self.params.rounds {
            round(&mut self.state);
        }
        // Finalization: XOR 1 into the last state word, then 10·r rounds.
        self.state[31] ^= 1;
        for _ in 0..10 * self.params.rounds {
            round(&mut self.state);
        }
        let mut out = Vec::with_capacity(self.params.digest_bytes);
        'outer: for word in self.state.iter() {
            for byte in word.to_le_bytes() {
                out.push(byte);
                if out.len() == self.params.digest_bytes {
                    break 'outer;
                }
            }
        }
        out
    }

    /// One-shot digest with the REV-default parameters.
    pub fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = CubeHash::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot digest with explicit parameters.
    pub fn digest_with(params: CubeHashParams, data: &[u8]) -> Vec<u8> {
        let mut h = CubeHash::with_params(params);
        h.update(data);
        h.finalize()
    }
}

/// One CubeHash round (ten steps) on the 32-word state.
fn round(x: &mut [u32; STATE_WORDS]) {
    // 1. x[16+i] += x[i]
    for i in 0..16 {
        x[16 + i] = x[16 + i].wrapping_add(x[i]);
    }
    // 2. x[i] <<<= 7
    for w in x.iter_mut().take(16) {
        *w = w.rotate_left(7);
    }
    // 3. swap x[i] with x[i^8]
    for i in 0..8 {
        x.swap(i, i ^ 8);
    }
    // 4. x[i] ^= x[16+i]
    for i in 0..16 {
        x[i] ^= x[16 + i];
    }
    // 5. swap x[16+i] with x[16+(i^2)]
    for i in [0usize, 1, 4, 5, 8, 9, 12, 13] {
        x.swap(16 + i, 16 + (i ^ 2));
    }
    // 6. x[16+i] += x[i]
    for i in 0..16 {
        x[16 + i] = x[16 + i].wrapping_add(x[i]);
    }
    // 7. x[i] <<<= 11
    for w in x.iter_mut().take(16) {
        *w = w.rotate_left(11);
    }
    // 8. swap x[i] with x[i^4]
    for i in [0usize, 1, 2, 3, 8, 9, 10, 11] {
        x.swap(i, i ^ 4);
    }
    // 9. x[i] ^= x[16+i]
    for i in 0..16 {
        x[i] ^= x[16 + i];
    }
    // 10. swap x[16+i] with x[16+(i^1)]
    for i in [0usize, 2, 4, 6, 8, 10, 12, 14] {
        x.swap(16 + i, 16 + (i ^ 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(CubeHash::digest(b"abc"), CubeHash::digest(b"abc"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let inputs: [&[u8]; 6] = [b"", b"a", b"b", b"ab", b"ba", b"abc"];
        let digests: Vec<Vec<u8>> = inputs.iter().map(|i| CubeHash::digest(i)).collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 31, 32, 33, 500, 999, 1000] {
            let mut h = CubeHash::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), CubeHash::digest(&data), "split {split}");
        }
    }

    #[test]
    fn digest_length_respected() {
        for len in [1, 4, 16, 32, 64] {
            let p = CubeHashParams { rounds: 2, block_bytes: 32, digest_bytes: len };
            assert_eq!(CubeHash::digest_with(p, b"x").len(), len);
        }
    }

    #[test]
    fn different_params_different_digests() {
        let a = CubeHash::digest_with(CubeHashParams::rev_default(), b"x");
        let b = CubeHash::digest_with(
            CubeHashParams { rounds: 6, block_bytes: 32, digest_bytes: 32 },
            b"x",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_single_bit_flip() {
        let base: Vec<u8> = vec![0u8; 64];
        let d0 = CubeHash::digest(&base);
        let mut flipped = base.clone();
        flipped[0] ^= 1;
        let d1 = CubeHash::digest(&flipped);
        let differing_bits: u32 = d0
            .iter()
            .zip(&d1)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        // 256-bit digest: expect ~128 differing bits; accept a wide band.
        assert!(
            (64..=192).contains(&differing_bits),
            "weak avalanche: {differing_bits} bits differ"
        );
    }

    #[test]
    fn classical_params_construct() {
        let p = CubeHashParams::classical();
        assert_eq!(CubeHash::digest_with(p, b"").len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = CubeHash::with_params(CubeHashParams { rounds: 0, block_bytes: 32, digest_bytes: 32 });
    }

    #[test]
    fn empty_message_snapshot_is_stable() {
        // Regression pin: the empty-message digest must never change across
        // refactors, otherwise every stored signature table would be invalid.
        let d1 = CubeHash::digest(b"");
        let d2 = CubeHash::digest(b"");
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 32);
        assert_ne!(d1, vec![0u8; 32], "digest must not be all zeros");
    }
}
