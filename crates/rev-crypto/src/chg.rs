//! Cycle-level timing model of the pipelined Crypto Hash Generator (CHG).
//!
//! The CHG sits beside the front-end stages (paper Fig. 1): instruction
//! bytes are fed in as they are fetched along the *predicted* path, tagged
//! with the id of the basic block they belong to so that entries on a
//! mispredicted path can be flushed (paper Sec. IV.C). The hash of a BB
//! becomes available `latency` cycles after the BB's last byte enters the
//! pipeline. With `latency H ≤ S` (the fetch-to-commit depth), hash
//! generation is fully overlapped and never delays commit on an SC hit
//! (paper Sec. VI).
//!
//! Functionally the hash is computed by [`crate::bb_body_hash`]; this model
//! tracks only *when* it is ready.

use std::collections::VecDeque;

/// Opaque tag identifying one in-flight basic-block hash (the paper tags
/// CHG inputs "with the id of the successor basic block along the predicted
/// path").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChgTag(pub u64);

/// Configuration of the CHG pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChgConfig {
    /// Hash latency `H` in cycles from the last byte of a BB entering the
    /// pipeline to its digest being available (paper: worst case 16 for a
    /// 5-round CubeHash).
    pub latency: u64,
    /// Maximum number of BB hashes in flight (pipeline depth / parallel
    /// lanes). Enqueueing beyond this back-pressures the front end.
    pub capacity: usize,
}

impl Default for ChgConfig {
    fn default() -> Self {
        // H = S = 16 per the paper's simulation assumptions.
        ChgConfig { latency: 16, capacity: 64 }
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    tag: ChgTag,
    ready_at: u64,
}

/// The CHG pipeline timing model.
///
/// # Example
///
/// ```
/// use rev_crypto::{ChgConfig, ChgPipeline, ChgTag};
///
/// let mut chg = ChgPipeline::new(ChgConfig { latency: 16, capacity: 8 });
/// chg.enqueue(ChgTag(1), 100); // BB 1's last byte fetched at cycle 100
/// assert!(!chg.is_ready(ChgTag(1), 110));
/// assert!(chg.is_ready(ChgTag(1), 116));
/// ```
#[derive(Debug, Clone)]
pub struct ChgPipeline {
    config: ChgConfig,
    in_flight: VecDeque<InFlight>,
    enqueued: u64,
    flushed: u64,
}

impl ChgPipeline {
    /// Creates a CHG model with the given configuration.
    pub fn new(config: ChgConfig) -> Self {
        ChgPipeline { config, in_flight: VecDeque::new(), enqueued: 0, flushed: 0 }
    }

    /// Returns the configuration.
    pub fn config(&self) -> ChgConfig {
        self.config
    }

    /// Returns `true` if another BB hash can be accepted.
    pub fn has_capacity(&self) -> bool {
        self.in_flight.len() < self.config.capacity
    }

    /// Registers that the final byte of the BB identified by `tag` entered
    /// the hash pipeline at `cycle`. Returns the cycle at which the digest
    /// will be available.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline is at capacity (callers must check
    /// [`ChgPipeline::has_capacity`] and stall fetch otherwise).
    pub fn enqueue(&mut self, tag: ChgTag, cycle: u64) -> u64 {
        assert!(self.has_capacity(), "CHG pipeline over capacity");
        debug_assert!(
            self.in_flight.back().map(|e| e.tag < tag).unwrap_or(true),
            "CHG tags enqueue in increasing fetch order"
        );
        let ready_at = cycle + self.config.latency;
        self.in_flight.push_back(InFlight { tag, ready_at });
        self.enqueued += 1;
        ready_at
    }

    /// Returns `true` if the digest for `tag` is available at `cycle`.
    /// Unknown tags (never enqueued or already retired/flushed) report
    /// `false`.
    pub fn is_ready(&self, tag: ChgTag, cycle: u64) -> bool {
        self.in_flight.iter().any(|e| e.tag == tag && e.ready_at <= cycle)
    }

    /// Returns the ready cycle for `tag`, if it is in flight.
    pub fn ready_cycle(&self, tag: ChgTag) -> Option<u64> {
        self.in_flight.iter().find(|e| e.tag == tag).map(|e| e.ready_at)
    }

    /// Retires a completed hash (the validation check consumed it). Tags
    /// enqueue in increasing fetch order and validations consume in commit
    /// order, so the common case is a front pop; stragglers (a flush took
    /// the entries between) fall back to a binary search on the sorted
    /// queue instead of the full scan this used to be.
    pub fn retire(&mut self, tag: ChgTag) {
        if self.in_flight.front().map(|e| e.tag == tag).unwrap_or(false) {
            self.in_flight.pop_front();
            return;
        }
        if let Ok(i) = self.in_flight.binary_search_by_key(&tag, |e| e.tag) {
            self.in_flight.remove(i);
        }
    }

    /// Flushes all in-flight hashes with tags **greater than or equal to**
    /// `from`, modeling recovery from a branch misprediction or interrupt:
    /// everything fetched after the mispredicted block is wrong-path
    /// (paper Sec. IV.A: "the appropriate pipeline stages in the CHG are
    /// also flushed"). Returns the number of entries flushed.
    pub fn flush_from(&mut self, from: ChgTag) -> usize {
        // Sorted by tag (see `retire`), so the wrong-path entries are
        // exactly the suffix starting at the partition point.
        let cut = self.in_flight.partition_point(|e| e.tag < from);
        let flushed = self.in_flight.len() - cut;
        self.in_flight.truncate(cut);
        self.flushed += flushed as u64;
        flushed
    }

    /// Drops every in-flight hash (full pipeline flush).
    pub fn flush_all(&mut self) -> usize {
        let flushed = self.in_flight.len();
        self.flushed += flushed as u64;
        self.in_flight.clear();
        flushed
    }

    /// Number of hashes currently in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Lifetime count of enqueued hashes.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Lifetime count of flushed (wrong-path) hashes.
    pub fn total_flushed(&self) -> u64 {
        self.flushed
    }

    /// Exports the complete mutable state as logical values — in-flight
    /// `(tag, ready_at)` pairs in queue order plus the lifetime counters.
    /// Checkpoint encoders in higher layers serialize these (this crate
    /// stays codec-agnostic).
    pub fn snapshot(&self) -> (Vec<(u64, u64)>, u64, u64) {
        (
            self.in_flight.iter().map(|e| (e.tag.0, e.ready_at)).collect(),
            self.enqueued,
            self.flushed,
        )
    }

    /// Restores state exported by [`ChgPipeline::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `in_flight` exceeds capacity or is not strictly
    /// tag-sorted — a snapshot from a same-config pipeline always
    /// satisfies both (callers validate untrusted bytes before this).
    pub fn restore(&mut self, in_flight: &[(u64, u64)], enqueued: u64, flushed: u64) {
        assert!(in_flight.len() <= self.config.capacity, "CHG snapshot over capacity");
        assert!(
            in_flight.windows(2).all(|w| w[0].0 < w[1].0),
            "CHG snapshot tags must be strictly increasing"
        );
        self.in_flight =
            in_flight.iter().map(|&(t, r)| InFlight { tag: ChgTag(t), ready_at: r }).collect();
        self.enqueued = enqueued;
        self.flushed = flushed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chg() -> ChgPipeline {
        ChgPipeline::new(ChgConfig { latency: 16, capacity: 4 })
    }

    #[test]
    fn ready_after_latency() {
        let mut c = chg();
        let ready = c.enqueue(ChgTag(1), 100);
        assert_eq!(ready, 116);
        assert!(!c.is_ready(ChgTag(1), 115));
        assert!(c.is_ready(ChgTag(1), 116));
        assert!(c.is_ready(ChgTag(1), 200));
    }

    #[test]
    fn unknown_tag_not_ready() {
        let c = chg();
        assert!(!c.is_ready(ChgTag(9), 1_000_000));
    }

    #[test]
    fn retire_removes_entry() {
        let mut c = chg();
        c.enqueue(ChgTag(1), 0);
        c.retire(ChgTag(1));
        assert!(!c.is_ready(ChgTag(1), 100));
        assert_eq!(c.in_flight_len(), 0);
    }

    #[test]
    fn flush_from_drops_younger_tags_only() {
        let mut c = chg();
        c.enqueue(ChgTag(1), 0);
        c.enqueue(ChgTag(2), 1);
        c.enqueue(ChgTag(3), 2);
        let flushed = c.flush_from(ChgTag(2));
        assert_eq!(flushed, 2);
        assert!(c.ready_cycle(ChgTag(1)).is_some());
        assert!(c.ready_cycle(ChgTag(2)).is_none());
        assert_eq!(c.total_flushed(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut c = chg();
        for i in 0..4 {
            assert!(c.has_capacity());
            c.enqueue(ChgTag(i), 0);
        }
        assert!(!c.has_capacity());
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn enqueue_over_capacity_panics() {
        let mut c = chg();
        for i in 0..5 {
            c.enqueue(ChgTag(i), 0);
        }
    }

    #[test]
    fn flush_all_clears() {
        let mut c = chg();
        c.enqueue(ChgTag(1), 0);
        c.enqueue(ChgTag(2), 0);
        assert_eq!(c.flush_all(), 2);
        assert_eq!(c.in_flight_len(), 0);
        assert_eq!(c.total_enqueued(), 2);
    }
}
