//! AES-128 (FIPS-197), implemented from scratch.
//!
//! The S-box is derived at construction time from the multiplicative
//! inverse in GF(2⁸) followed by the standard affine transform, rather than
//! transcribed as a table — this keeps the implementation auditable and is
//! validated against the FIPS-197 Appendix C test vector in the unit tests.
//!
//! REV uses AES to keep reference signature tables encrypted in RAM; the
//! decryption key never leaves the (simulated) CPU (paper Secs. VII, IX).

/// AES block length in bytes.
pub const BLOCK_LEN: usize = 16;

const NB: usize = 4; // columns per state
const NK: usize = 4; // 32-bit words in a 128-bit key
const NR: usize = 10; // rounds for AES-128

/// GF(2⁸) multiplication modulo the AES polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), via a^254.
fn gf_inv(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let mut result = 1u8;
    // exponent 254 = 0b11111110, square-and-multiply MSB first
    for bit in (0..8).rev() {
        result = gf_mul(result, result);
        if (254 >> bit) & 1 == 1 {
            result = gf_mul(result, a);
        }
    }
    result
}

fn build_sboxes() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        let x = gf_inv(i as u8);
        // Affine transform: b ^ rot(b,1..4) ^ 0x63 where rot is left-rotate.
        let s =
            x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
        *slot = s;
        inv[s as usize] = i as u8;
    }
    (sbox, inv)
}

/// An AES-128 cipher with a fixed key (encrypt and decrypt).
///
/// # Example
///
/// ```
/// use rev_crypto::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let block = *b"0123456789abcdef";
/// let ct = aes.encrypt_block(&block);
/// assert_eq!(aes.decrypt_block(&ct), block);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes128").field("rounds", &NR).finish()
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule and builds the S-boxes.
    pub fn new(key: [u8; 16]) -> Self {
        let (sbox, inv_sbox) = build_sboxes();
        let mut w = [[0u8; 4]; NB * (NR + 1)];
        for (i, word) in w.iter_mut().enumerate().take(NK) {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon: u8 = 1;
        for i in NK..NB * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys, sbox, inv_sbox }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..NR {
            sub_bytes(&mut s, &self.sbox);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s, &self.sbox);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[NR]);
        s
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[NR]);
        for r in (1..NR).rev() {
            inv_shift_rows(&mut s);
            sub_bytes(&mut s, &self.inv_sbox);
            add_round_key(&mut s, &self.round_keys[r]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        sub_bytes(&mut s, &self.inv_sbox);
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }

    /// Encrypts `data` in place with a CBC chain whose IV is derived from
    /// `tweak` (IV = E(tweak ‖ 0⁸)). Used to encrypt signature-table
    /// entries, keying the ciphertext to the entry's table index so
    /// identical entries at different indices have different ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn encrypt_tweaked(&self, tweak: u64, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(BLOCK_LEN), "data must be block aligned");
        let mut prev = self.tweak_iv(tweak);
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            for (b, p) in block.iter_mut().zip(&prev) {
                *b ^= p;
            }
            let ct = self.encrypt_block(&block);
            chunk.copy_from_slice(&ct);
            prev = ct;
        }
    }

    /// Inverse of [`Aes128::encrypt_tweaked`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn decrypt_tweaked(&self, tweak: u64, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(BLOCK_LEN), "data must be block aligned");
        let mut prev = self.tweak_iv(tweak);
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let mut ct = [0u8; 16];
            ct.copy_from_slice(chunk);
            let mut pt = self.decrypt_block(&ct);
            for (b, p) in pt.iter_mut().zip(&prev) {
                *b ^= p;
            }
            chunk.copy_from_slice(&pt);
            prev = ct;
        }
    }

    fn tweak_iv(&self, tweak: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&tweak.to_le_bytes());
        self.encrypt_block(&block)
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in s.iter_mut().zip(rk) {
        *b ^= k;
    }
}

fn sub_bytes(s: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in s.iter_mut() {
        *b = sbox[*b as usize];
    }
}

// State layout: s[4*c + r] = row r, column c (column-major, FIPS order).
fn shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * ((c + r) % 4) + r] = orig[4 * c + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        s[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        s[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        s[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        s[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_points() {
        let (sbox, inv) = build_sboxes();
        // FIPS-197 Figure 7 spot checks.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        for i in 0..256 {
            assert_eq!(inv[sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // AES-128: key 000102...0f, plaintext 00112233445566778899aabbccddeeff
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes128::new(key);
        let ct = aes.encrypt_block(&pt);
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(ct, expected);
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn encrypt_decrypt_round_trip_many_keys() {
        for seed in 0u8..8 {
            let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(seed + 3));
            let aes = Aes128::new(key);
            for v in 0u8..8 {
                let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) ^ v.wrapping_mul(37));
                assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
            }
        }
    }

    #[test]
    fn tweaked_round_trip() {
        let aes = Aes128::new([0x42; 16]);
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        aes.encrypt_tweaked(12345, &mut data);
        assert_ne!(data, original);
        aes.decrypt_tweaked(12345, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn tweak_changes_ciphertext() {
        let aes = Aes128::new([0x42; 16]);
        let mut a = vec![7u8; 32];
        let mut b = vec![7u8; 32];
        aes.encrypt_tweaked(1, &mut a);
        aes.encrypt_tweaked(2, &mut b);
        assert_ne!(a, b, "identical plaintexts at different indices must differ");
    }

    #[test]
    fn wrong_tweak_garbles_plaintext() {
        let aes = Aes128::new([0x42; 16]);
        let original = vec![9u8; 16];
        let mut data = original.clone();
        aes.encrypt_tweaked(10, &mut data);
        aes.decrypt_tweaked(11, &mut data);
        assert_ne!(data, original);
    }

    #[test]
    #[should_panic(expected = "block aligned")]
    fn unaligned_rejected() {
        let aes = Aes128::new([0; 16]);
        let mut data = vec![0u8; 17];
        aes.encrypt_tweaked(0, &mut data);
    }

    #[test]
    fn gf_arithmetic() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 Sec 4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for a in 1u8..=255 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }
}
