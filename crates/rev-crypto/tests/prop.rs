//! Property tests for the crypto primitives.

use proptest::prelude::*;
use rev_crypto::{bb_body_hash, entry_digest, Aes128, CubeHash, SignatureKey};

proptest! {
    /// AES decrypt ∘ encrypt = identity for arbitrary keys and blocks.
    #[test]
    fn aes_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// Tweaked encryption round-trips for arbitrary block-aligned data.
    #[test]
    fn aes_tweaked_round_trip(
        key in any::<[u8; 16]>(),
        tweak in any::<u64>(),
        blocks in proptest::collection::vec(any::<[u8; 16]>(), 1..8),
    ) {
        let aes = Aes128::new(key);
        let original: Vec<u8> = blocks.concat();
        let mut data = original.clone();
        aes.encrypt_tweaked(tweak, &mut data);
        prop_assert_ne!(&data, &original, "encryption must change the data");
        aes.decrypt_tweaked(tweak, &mut data);
        prop_assert_eq!(&data, &original);
    }

    /// Ciphertexts under different tweaks differ even for equal plaintext.
    #[test]
    fn aes_tweak_separation(key in any::<[u8; 16]>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        prop_assume!(t1 != t2);
        let aes = Aes128::new(key);
        let mut a = vec![0x5au8; 16];
        let mut b = vec![0x5au8; 16];
        aes.encrypt_tweaked(t1, &mut a);
        aes.encrypt_tweaked(t2, &mut b);
        prop_assert_ne!(a, b);
    }

    /// Incremental CubeHash equals one-shot for arbitrary data and split
    /// points.
    #[test]
    fn cubehash_incremental(data in proptest::collection::vec(any::<u8>(), 0..300),
                            split_frac in 0.0f64..1.0) {
        let split = (data.len() as f64 * split_frac) as usize;
        let mut h = CubeHash::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), CubeHash::digest(&data));
    }

    /// The body hash is injective in practice over small perturbations:
    /// flipping any one bit changes the digest.
    #[test]
    fn body_hash_bit_sensitivity(data in proptest::collection::vec(any::<u8>(), 1..64),
                                 bit in any::<u16>()) {
        let pos = (bit as usize / 8) % data.len();
        let mask = 1u8 << (bit % 8);
        let mut flipped = data.clone();
        flipped[pos] ^= mask;
        prop_assert_ne!(bb_body_hash(&data).0, bb_body_hash(&flipped).0);
    }

    /// The 4-byte entry digest changes (with overwhelming probability)
    /// when any bound field changes; at minimum it is deterministic and
    /// key-separated.
    #[test]
    fn entry_digest_key_separation(
        k1 in any::<u64>(), k2 in any::<u64>(),
        addr in any::<u64>(), succ in any::<u64>(), pred in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        prop_assume!(k1 != k2);
        let b = bb_body_hash(&body);
        let d1 = entry_digest(&SignatureKey::from_seed(k1), addr, &b, succ, pred);
        let d1_again = entry_digest(&SignatureKey::from_seed(k1), addr, &b, succ, pred);
        let d2 = entry_digest(&SignatureKey::from_seed(k2), addr, &b, succ, pred);
        prop_assert_eq!(d1, d1_again);
        // 2^-32 false-positive chance; acceptable for a proptest.
        prop_assert_ne!(d1, d2);
    }
}
