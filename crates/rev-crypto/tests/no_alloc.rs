//! Proves the per-BB crypto hot path is allocation-free: with a counting
//! global allocator installed, running the reusable-hasher body-hash and
//! entry-digest sequence must perform zero heap allocations. This is the
//! exact sequence `RevMonitor` executes per validated basic block (on a
//! digest-cache miss; hits do even less).
//!
//! The only `unsafe` in the workspace: installing a counting
//! `GlobalAlloc` requires it. The crate carries `unsafe_code = "deny"`
//! (not the workspace-wide `forbid`) precisely so this one audited
//! allow can exist.
#![allow(unsafe_code)]

use rev_crypto::{bb_body_hash_with, entry_digest_with, CubeHash, SignatureKey};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn per_bb_hash_sequence_does_not_allocate() {
    // Setup may allocate freely.
    let mut h = CubeHash::new();
    let key = SignatureKey::from_seed(42);
    let instr_bytes = [0xc3u8; 48];

    // Warm up once so any lazy one-time costs land outside the window.
    let body = bb_body_hash_with(&mut h, &instr_bytes);
    let _ = entry_digest_with(&mut h, &key, 0x1000, &body, 0x2000, 0x3000);

    // The counter is process-global, so a concurrent libtest-harness
    // allocation landing inside the window is a false positive. Any
    // clean window proves the hot path allocation-free; retry a few
    // times before believing a nonzero count.
    let mut counts = Vec::new();
    for _attempt in 0..5 {
        let before = ALLOCS.load(Ordering::SeqCst);
        for i in 0..100u64 {
            let body = bb_body_hash_with(&mut h, &instr_bytes);
            let d = entry_digest_with(&mut h, &key, 0x1000 + i, &body, 0x2000, 0x3000);
            std::hint::black_box(d);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        counts.push(after - before);
        if after == before {
            return;
        }
    }
    panic!(
        "per-BB hash sequence allocated in every window: {counts:?} allocations per 100 iterations"
    );
}
