//! Branch prediction: gshare direction predictor, BTB for computed
//! targets, and a return-address stack.
//!
//! Table 2 specifies a "32K Gshare" (32 768 two-bit counters, 15-bit
//! global history). The RAS top-of-stack is checkpointed per branch and
//! restored on misprediction recovery.
//!
//! Prediction outcomes accumulate in
//! [`CpuStats`](crate::stats::CpuStats) and export as the
//! `cpu.branches.*` metrics (Figs. 8/9 — see `docs/METRICS.md`).

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Number of 2-bit gshare counters (power of two; Table 2: 32K).
    pub gshare_entries: usize,
    /// BTB entries (direct-mapped, tagged).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl PredictorConfig {
    /// The paper's Table 2 predictor.
    pub fn paper_default() -> Self {
        PredictorConfig { gshare_entries: 32 * 1024, btb_entries: 4096, ras_depth: 32 }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A snapshot of speculative predictor state taken at a branch, used to
/// repair the RAS and history on misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorCheckpoint {
    history: u64,
    ras_tos: usize,
    ras_count: usize,
}

impl PredictorCheckpoint {
    /// Serializes the checkpoint (per-slot payload in pipeline
    /// checkpoints).
    pub fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        w.u64(self.history);
        w.u64(self.ras_tos as u64);
        w.u64(self.ras_count as u64);
    }

    /// Decodes a checkpoint saved by [`PredictorCheckpoint::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`rev_trace::CkptError`] on decode failure.
    pub fn restore_state(r: &mut rev_trace::CkptReader<'_>) -> Result<Self, rev_trace::CkptError> {
        Ok(PredictorCheckpoint {
            history: r.u64()?,
            ras_tos: r.u64()? as usize,
            ras_count: r.u64()? as usize,
        })
    }
}

/// The front-end branch predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: PredictorConfig,
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    btb: Vec<(u64, u64)>, // (tag=pc, target); tag 0 = empty
    ras: Vec<u64>,
    ras_tos: usize,   // next push slot
    ras_count: usize, // valid entries
}

impl BranchPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if `gshare_entries` or `btb_entries` is not a power of two.
    pub fn new(config: PredictorConfig) -> Self {
        assert!(config.gshare_entries.is_power_of_two());
        assert!(config.btb_entries.is_power_of_two());
        BranchPredictor {
            config,
            counters: vec![1; config.gshare_entries], // weakly not-taken
            history: 0,
            history_mask: config.gshare_entries as u64 - 1,
            btb: vec![(0, 0); config.btb_entries],
            ras: vec![0; config.ras_depth],
            ras_tos: 0,
            ras_count: 0,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> PredictorConfig {
        self.config
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 1) ^ self.history) & self.history_mask) as usize
    }

    /// Predicts the direction of a conditional branch at `pc`. The caller
    /// is responsible for updating the history with [`Self::push_history`]
    /// (the resolved outcome on the correct path, the prediction on a
    /// wrong path — matching a speculative-history front end with repair).
    pub fn predict_cond(&self, pc: u64) -> bool {
        let idx = self.gshare_index(pc);
        self.counters[idx] >= 2
    }

    /// Shifts an outcome into the global history.
    pub fn push_history(&mut self, taken: bool) {
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    /// Trains the direction predictor with the resolved outcome.
    pub fn update_cond(&mut self, pc: u64, taken: bool, history_at_predict: u64) {
        let idx = (((pc >> 1) ^ history_at_predict) & self.history_mask) as usize;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Current speculative global history (captured before a prediction
    /// for later training/repair).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Predicts the target of a computed jump/call at `pc` via the BTB.
    pub fn predict_indirect(&self, pc: u64) -> Option<u64> {
        let slot = &self.btb[(pc as usize >> 1) & (self.config.btb_entries - 1)];
        (slot.0 == pc).then_some(slot.1)
    }

    /// Installs/updates a BTB entry.
    pub fn update_indirect(&mut self, pc: u64, target: u64) {
        let idx = (pc as usize >> 1) & (self.config.btb_entries - 1);
        self.btb[idx] = (pc, target);
    }

    /// Pushes a return address (on call fetch).
    pub fn ras_push(&mut self, ret_addr: u64) {
        self.ras[self.ras_tos] = ret_addr;
        self.ras_tos = (self.ras_tos + 1) % self.config.ras_depth;
        self.ras_count = (self.ras_count + 1).min(self.config.ras_depth);
    }

    /// Pops a predicted return address (on return fetch).
    pub fn ras_pop(&mut self) -> Option<u64> {
        if self.ras_count == 0 {
            return None;
        }
        self.ras_tos = (self.ras_tos + self.config.ras_depth - 1) % self.config.ras_depth;
        self.ras_count -= 1;
        Some(self.ras[self.ras_tos])
    }

    /// Snapshots speculative state (history + RAS position).
    pub fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint {
            history: self.history,
            ras_tos: self.ras_tos,
            ras_count: self.ras_count,
        }
    }

    /// Serializes the full predictor state (gshare counters, global
    /// history, BTB, RAS) into a checkpoint.
    pub fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        w.u64(self.history);
        w.len(self.counters.len());
        for &c in &self.counters {
            w.u8(c);
        }
        w.len(self.btb.len());
        for &(tag, target) in &self.btb {
            w.u64(tag);
            w.u64(target);
        }
        w.u64_slice(&self.ras);
        w.u64(self.ras_tos as u64);
        w.u64(self.ras_count as u64);
    }

    /// Restores state saved by [`BranchPredictor::save_state`] into a
    /// predictor built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`rev_trace::CkptError`] on decode failure or any table
    /// size mismatch against this predictor's configuration.
    pub fn restore_state(
        &mut self,
        r: &mut rev_trace::CkptReader<'_>,
    ) -> Result<(), rev_trace::CkptError> {
        let mismatch = |what: &str, got: usize, want: usize| {
            rev_trace::CkptError::Malformed(format!("predictor {what} size {got}, expected {want}"))
        };
        self.history = r.u64()? & self.history_mask;
        let n = r.len(1)?;
        if n != self.counters.len() {
            return Err(mismatch("gshare", n, self.counters.len()));
        }
        for c in &mut self.counters {
            let v = r.u8()?;
            if v > 3 {
                return Err(rev_trace::CkptError::Malformed(format!("gshare counter {v}")));
            }
            *c = v;
        }
        let n = r.len(16)?;
        if n != self.btb.len() {
            return Err(mismatch("BTB", n, self.btb.len()));
        }
        for slot in &mut self.btb {
            slot.0 = r.u64()?;
            slot.1 = r.u64()?;
        }
        let ras = r.u64_slice()?;
        if ras.len() != self.ras.len() {
            return Err(mismatch("RAS", ras.len(), self.ras.len()));
        }
        self.ras = ras;
        self.ras_tos = r.u64()? as usize;
        self.ras_count = r.u64()? as usize;
        if self.ras_tos >= self.config.ras_depth || self.ras_count > self.config.ras_depth {
            return Err(rev_trace::CkptError::Malformed(format!(
                "RAS position {}/{} out of range for depth {}",
                self.ras_tos, self.ras_count, self.config.ras_depth
            )));
        }
        Ok(())
    }

    /// Restores a snapshot after a squash, then folds in the actual
    /// outcome of the resolving branch.
    pub fn restore(&mut self, cp: PredictorCheckpoint, resolved_taken: Option<bool>) {
        self.history = cp.history;
        self.ras_tos = cp.ras_tos;
        self.ras_count = cp.ras_count;
        if let Some(taken) = resolved_taken {
            self.push_history(taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig {
            gshare_entries: 1024,
            btb_entries: 64,
            ras_depth: 4,
        })
    }

    #[test]
    fn gshare_learns_always_taken() {
        let mut p = bp();
        let pc = 0x1000;
        for _ in 0..30 {
            let h = p.history();
            let _ = p.predict_cond(pc);
            p.push_history(true);
            p.update_cond(pc, true, h);
        }
        // After saturation the predictor should say taken.
        assert!(p.predict_cond(pc));
    }

    #[test]
    fn gshare_learns_alternating_with_history() {
        let mut p = bp();
        let pc = 0x2000;
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..200 {
            let h = p.history();
            let pred = p.predict_cond(pc);
            outcome = !outcome; // strict alternation
            if pred == outcome && i >= 100 {
                correct += 1;
            }
            p.push_history(outcome);
            p.update_cond(pc, outcome, h);
        }
        assert!(correct > 90, "history should capture alternation, got {correct}/100");
    }

    #[test]
    fn btb_round_trip() {
        let mut p = bp();
        assert_eq!(p.predict_indirect(0x400), None);
        p.update_indirect(0x400, 0x9000);
        assert_eq!(p.predict_indirect(0x400), Some(0x9000));
    }

    #[test]
    fn ras_lifo() {
        let mut p = bp();
        p.ras_push(0x10);
        p.ras_push(0x20);
        assert_eq!(p.ras_pop(), Some(0x20));
        assert_eq!(p.ras_pop(), Some(0x10));
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn ras_checkpoint_restore() {
        let mut p = bp();
        p.ras_push(0x10);
        let cp = p.checkpoint();
        p.ras_push(0x20);
        p.ras_pop();
        p.ras_pop();
        p.restore(cp, None);
        assert_eq!(p.ras_pop(), Some(0x10));
    }

    #[test]
    fn ras_wraps_at_depth() {
        let mut p = bp();
        for i in 0..6 {
            p.ras_push(i);
        }
        // Depth 4: only the last four survive.
        assert_eq!(p.ras_pop(), Some(5));
        assert_eq!(p.ras_pop(), Some(4));
        assert_eq!(p.ras_pop(), Some(3));
        assert_eq!(p.ras_pop(), Some(2));
        assert_eq!(p.ras_pop(), None);
    }
}
