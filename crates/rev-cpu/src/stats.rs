//! Run statistics — the counters behind the paper's Figures 6–9.

use rev_isa::InstrClass;
use rev_mem::FlatSet;
use rev_trace::{MetricRegistry, MetricSink};

/// Committed-instruction mix by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Integer ALU (including multiplies).
    pub int_alu: u64,
    /// Floating-point operations.
    pub fp: u64,
    /// Loads (including return-address pops).
    pub loads: u64,
    /// Stores (including call pushes).
    pub stores: u64,
    /// Control-flow instructions.
    pub branches: u64,
    /// Everything else (nop/halt/syscall).
    pub other: u64,
}

impl InstrMix {
    /// Records one committed instruction.
    pub fn record(&mut self, class: InstrClass) {
        match class {
            InstrClass::IntAlu | InstrClass::IntMul => self.int_alu += 1,
            InstrClass::Fp | InstrClass::FpDiv => self.fp += 1,
            InstrClass::Load => self.loads += 1,
            InstrClass::Store => self.stores += 1,
            InstrClass::CondBranch
            | InstrClass::Jump
            | InstrClass::CallDirect
            | InstrClass::JumpIndirect
            | InstrClass::CallIndirect
            | InstrClass::Return => self.branches += 1,
            InstrClass::Syscall | InstrClass::Other => self.other += 1,
        }
    }

    /// Total committed instructions recorded.
    pub fn total(&self) -> u64 {
        self.int_alu + self.fp + self.loads + self.stores + self.branches + self.other
    }
}

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed_instrs: u64,
    /// Committed control-flow instructions (paper Fig. 8).
    pub committed_branches: u64,
    /// Committed conditional branches.
    pub committed_cond_branches: u64,
    /// Conditional branches whose direction mispredicted.
    pub mispredicts: u64,
    /// Computed jumps/calls + returns committed.
    pub committed_computed: u64,
    /// Wrong-path instructions fetched then squashed.
    pub wrong_path_fetched: u64,
    /// Cycles the ROB head was blocked by the monitor's commit gate
    /// (REV validation stalls; 0 in the baseline).
    pub validation_stall_cycles: u64,
    /// Cycles commit was blocked because the deferred-store buffer was full.
    pub defer_full_stall_cycles: u64,
    /// Committed-instruction mix by class.
    pub mix: InstrMix,
    /// Distinct committed BB-terminator addresses (paper Fig. 9,
    /// "unique branches during execution").
    pub unique_branch_addrs: FlatSet<u64>,
}

impl CpuStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.committed_cond_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.committed_cond_branches as f64
        }
    }

    /// Number of unique committed branch addresses.
    pub fn unique_branches(&self) -> usize {
        self.unique_branch_addrs.len()
    }

    /// Serializes all counters. The unique-branch set is written as
    /// sorted logical content (hash iteration order never leaks into a
    /// checkpoint), so re-serializing a restored stats struct is
    /// byte-identical.
    pub fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        for v in [
            self.cycles,
            self.committed_instrs,
            self.committed_branches,
            self.committed_cond_branches,
            self.mispredicts,
            self.committed_computed,
            self.wrong_path_fetched,
            self.validation_stall_cycles,
            self.defer_full_stall_cycles,
            self.mix.int_alu,
            self.mix.fp,
            self.mix.loads,
            self.mix.stores,
            self.mix.branches,
            self.mix.other,
        ] {
            w.u64(v);
        }
        let mut addrs: Vec<u64> = self.unique_branch_addrs.iter().copied().collect();
        addrs.sort_unstable();
        w.u64_slice(&addrs);
    }

    /// Restores counters saved by [`CpuStats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`rev_trace::CkptError`] on decode failure.
    pub fn restore_state(
        &mut self,
        r: &mut rev_trace::CkptReader<'_>,
    ) -> Result<(), rev_trace::CkptError> {
        for v in [
            &mut self.cycles,
            &mut self.committed_instrs,
            &mut self.committed_branches,
            &mut self.committed_cond_branches,
            &mut self.mispredicts,
            &mut self.committed_computed,
            &mut self.wrong_path_fetched,
            &mut self.validation_stall_cycles,
            &mut self.defer_full_stall_cycles,
            &mut self.mix.int_alu,
            &mut self.mix.fp,
            &mut self.mix.loads,
            &mut self.mix.stores,
            &mut self.mix.branches,
            &mut self.mix.other,
        ] {
            *v = r.u64()?;
        }
        self.unique_branch_addrs = r.u64_slice()?.into_iter().collect();
        Ok(())
    }
}

impl MetricSink for CpuStats {
    fn export_metrics(&self, reg: &mut MetricRegistry) {
        reg.counter("cpu.cycles", self.cycles);
        reg.counter("cpu.instructions", self.committed_instrs);
        reg.gauge("cpu.ipc", self.ipc());
        reg.counter("cpu.branches.committed", self.committed_branches);
        reg.counter("cpu.branches.conditional", self.committed_cond_branches);
        reg.counter("cpu.branches.computed", self.committed_computed);
        reg.counter("cpu.branches.mispredicts", self.mispredicts);
        reg.gauge("cpu.branches.mispredict_rate", self.mispredict_rate());
        reg.counter("cpu.branches.unique", self.unique_branches() as u64);
        reg.counter("cpu.wrong_path_fetched", self.wrong_path_fetched);
        reg.counter("cpu.stall.validation", self.validation_stall_cycles);
        reg.counter("cpu.stall.defer_full", self.defer_full_stall_cycles);
        reg.counter("cpu.mix.int_alu", self.mix.int_alu);
        reg.counter("cpu.mix.fp", self.mix.fp);
        reg.counter("cpu.mix.loads", self.mix.loads);
        reg.counter("cpu.mix.stores", self.mix.stores);
        reg.counter("cpu.mix.branches", self.mix.branches);
        reg.counter("cpu.mix.other", self.mix.other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let mut s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 100;
        s.committed_instrs = 150;
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.committed_cond_branches = 10;
        s.mispredicts = 1;
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        s.unique_branch_addrs.insert(1);
        s.unique_branch_addrs.insert(1);
        s.unique_branch_addrs.insert(2);
        assert_eq!(s.unique_branches(), 2);
    }
}
