//! The out-of-order pipeline: fetch → decode/rename → dispatch → issue →
//! execute → writeback → commit, with oracle-driven correct-path fetch and
//! real wrong-path fetch along mispredicted paths.
//!
//! ## Hot-loop layout
//!
//! The per-cycle stages are the simulator's innermost loop, so the ROB is
//! engineered for scan cost, not elegance:
//!
//! * [`Slot`] is `#[repr(C)]` with the scan-hot fields (stage, flags,
//!   seq, sources, completion cycle) packed into the leading bytes, and
//!   everything an instruction only needs once (oracle results, predictor
//!   checkpoint) behind them. Per-slot facts that used to be recomputed
//!   per probe (`InstrClass`, load/store-ness, the oracle's effective
//!   address) are resolved once at fetch into plain fields and flag bits.
//! * Issue is event-driven and never rescans the ROB: dispatch registers
//!   each slot's in-flight sources in a slab-backed [`WakeupTable`],
//!   completion wakes the subscribed consumers, and issue walks only the
//!   sorted ready list (plus a sorted waiting-store list that preserves
//!   the conservative disambiguation the old full scan derived from
//!   not-yet-issued stores). Committed/in-flight store addresses live in
//!   a slab-backed [`StoreTracker`] updated at issue/complete/commit/
//!   squash.
//! * Completion keeps a count of executing slots and the minimum
//!   `complete_at` among them, so cycles with nothing to retire skip the
//!   stage entirely.

use crate::bpred::{BranchPredictor, PredictorCheckpoint};
use crate::config::CpuConfig;
use crate::monitor::{CommitGate, CommitQuery, ExecMonitor, FetchEvent, StoreCommit, Violation};
use crate::oracle::Oracle;
use crate::stats::CpuStats;
use rev_isa::{decode, FReg, InstrClass, Instruction, Reg, MAX_INSTR_LEN, REG_SP};
use rev_mem::{FlatMap, Hierarchy, MemConfig, Request, Requester};
use rev_trace::{EventKind, TraceBus, TraceEvent};
use std::collections::VecDeque;

/// Why a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The committed-instruction budget was reached.
    BudgetReached,
    /// The program executed `halt`.
    Halted,
    /// The monitor reported a validation violation.
    Violation(Violation),
    /// The oracle hit undecodable bytes (control flow escaped into garbage
    /// before any validation boundary could fire).
    OracleFault {
        /// Faulting PC.
        pc: u64,
    },
}

/// Result of [`Pipeline::run`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Counters.
    pub stats: CpuStats,
}

/// Unified integer/FP architectural register id for renaming (0–31 int,
/// 32–63 fp).
fn rid(r: Reg) -> u8 {
    r.index() as u8
}
fn fid(f: FReg) -> u8 {
    32 + f.index() as u8
}

/// Registers read by an instruction (rename sources).
fn reads_of(insn: &Instruction, out: &mut Vec<u8>) {
    out.clear();
    match *insn {
        Instruction::Alu { rs1, rs2, .. } => {
            out.push(rid(rs1));
            out.push(rid(rs2));
        }
        Instruction::AddI { rs, .. }
        | Instruction::AndI { rs, .. }
        | Instruction::XorI { rs, .. }
        | Instruction::MulI { rs, .. }
        | Instruction::Mov { rs, .. } => out.push(rid(rs)),
        Instruction::Fpu { fs1, fs2, .. } => {
            out.push(fid(fs1));
            out.push(fid(fs2));
        }
        Instruction::FMov { fs, .. } => out.push(fid(fs)),
        Instruction::CvtIF { rs, .. } => out.push(rid(rs)),
        Instruction::CvtFI { fs, .. } => out.push(fid(fs)),
        Instruction::Load { rbase, .. } | Instruction::LoadF { rbase, .. } => out.push(rid(rbase)),
        Instruction::Store { rs, rbase, .. } => {
            out.push(rid(rs));
            out.push(rid(rbase));
        }
        Instruction::StoreF { fs, rbase, .. } => {
            out.push(fid(fs));
            out.push(rid(rbase));
        }
        Instruction::Branch { rs1, rs2, .. } => {
            out.push(rid(rs1));
            out.push(rid(rs2));
        }
        Instruction::JmpInd { rt } => out.push(rid(rt)),
        Instruction::CallInd { rt } => {
            out.push(rid(rt));
            out.push(rid(REG_SP));
        }
        Instruction::Call { .. } | Instruction::Ret => out.push(rid(REG_SP)),
        Instruction::Nop
        | Instruction::Halt
        | Instruction::Li { .. }
        | Instruction::Jmp { .. }
        | Instruction::Syscall { .. } => {}
    }
    out.retain(|&r| r != 0); // r0 reads are always ready
}

/// Register written by an instruction (rename destination).
fn write_of(insn: &Instruction) -> Option<u8> {
    match *insn {
        Instruction::Alu { rd, .. }
        | Instruction::AddI { rd, .. }
        | Instruction::AndI { rd, .. }
        | Instruction::XorI { rd, .. }
        | Instruction::MulI { rd, .. }
        | Instruction::Li { rd, .. }
        | Instruction::Mov { rd, .. }
        | Instruction::CvtFI { rd, .. }
        | Instruction::Load { rd, .. } => (rd != Reg::R0).then(|| rid(rd)),
        Instruction::Fpu { fd, .. }
        | Instruction::FMov { fd, .. }
        | Instruction::CvtIF { fd, .. }
        | Instruction::LoadF { fd, .. } => Some(fid(fd)),
        Instruction::Call { .. } | Instruction::CallInd { .. } | Instruction::Ret => {
            Some(rid(REG_SP))
        }
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Stage {
    Waiting,
    Executing,
    Done,
}

// Slot flag bits, resolved once at fetch.
const F_WRONG_PATH: u16 = 1 << 0;
const F_BOUNDARY: u16 = 1 << 1;
const F_LOAD: u16 = 1 << 2;
const F_STORE: u16 = 1 << 3;
const F_WRITES_REG: u16 = 1 << 4;
const F_MISPREDICTED: u16 = 1 << 5;
const F_RECOVERY_DONE: u16 = 1 << 6;
const F_HAS_DYN: u16 = 1 << 7; // correct path: oracle fields valid
const F_TAKEN: u16 = 1 << 8;
const F_HALTED: u16 = 1 << 9;
const F_HAS_MEM: u16 = 1 << 10; // `mem_addr` valid

/// Checkpoint section marker for the pipeline.
const TAG_CPU: u8 = 0x50; // 'P'

/// One in-flight instruction. `#[repr(C)]` keeps the issue/complete scan
/// fields in the leading bytes so a skipped slot touches one cache line.
#[derive(Debug, Clone)]
#[repr(C)]
struct Slot {
    stage: Stage,
    class: InstrClass,
    src_count: u8,
    /// Source producers still in flight (wakeup scheduling); the slot
    /// enters the ready list when this reaches zero.
    unready: u8,
    flags: u16,
    seq: u64,
    mem_addr: u64, // valid iff F_HAS_MEM
    complete_at: u64,
    srcs: [u64; 2],
    addr: u64,
    next_pc: u64,     // oracle next PC, valid iff F_HAS_DYN
    store_value: u64, // oracle store value (0 when absent)
    dispatch_ready: u64,
    history_at_predict: u64,
    insn: Instruction,
    checkpoint: Option<PredictorCheckpoint>,
}

impl Slot {
    #[inline]
    fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    #[inline]
    fn is_store(&self) -> bool {
        self.flags & F_STORE != 0
    }

    #[inline]
    fn flag(&self, f: u16) -> bool {
        self.flags & f != 0
    }

    fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        w.u8(self.stage as u8);
        w.u8(self.src_count);
        w.u8(self.unready);
        w.u16(self.flags);
        w.u64(self.seq);
        w.u64(self.mem_addr);
        w.u64(self.complete_at);
        w.u64(self.srcs[0]);
        w.u64(self.srcs[1]);
        w.u64(self.addr);
        w.u64(self.next_pc);
        w.u64(self.store_value);
        w.u64(self.dispatch_ready);
        w.u64(self.history_at_predict);
        w.bytes(&self.insn.encode());
        match self.checkpoint {
            Some(cp) => {
                w.bool(true);
                cp.save_state(w);
            }
            None => w.bool(false),
        }
    }

    fn restore_state(r: &mut rev_trace::CkptReader<'_>) -> Result<Slot, rev_trace::CkptError> {
        let stage = match r.u8()? {
            0 => Stage::Waiting,
            1 => Stage::Executing,
            2 => Stage::Done,
            b => return Err(rev_trace::CkptError::Malformed(format!("slot stage byte {b:#04x}"))),
        };
        let src_count = r.u8()?;
        let unready = r.u8()?;
        let flags = r.u16()?;
        let seq = r.u64()?;
        let mem_addr = r.u64()?;
        let complete_at = r.u64()?;
        let srcs = [r.u64()?, r.u64()?];
        let addr = r.u64()?;
        let next_pc = r.u64()?;
        let store_value = r.u64()?;
        let dispatch_ready = r.u64()?;
        let history_at_predict = r.u64()?;
        let enc = r.bytes()?;
        let (insn, used) = decode(enc).map_err(|e| {
            rev_trace::CkptError::Malformed(format!("slot instruction bytes: {e:?}"))
        })?;
        if used != enc.len() {
            return Err(rev_trace::CkptError::Malformed(format!(
                "slot instruction encoding has {} trailing bytes",
                enc.len() - used
            )));
        }
        let checkpoint =
            if r.bool()? { Some(PredictorCheckpoint::restore_state(r)?) } else { None };
        Ok(Slot {
            stage,
            class: insn.class(),
            src_count,
            unready,
            flags,
            seq,
            mem_addr,
            complete_at,
            srcs,
            addr,
            next_pc,
            store_value,
            dispatch_ready,
            history_at_predict,
            insn,
            checkpoint,
        })
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct WakeNode {
    consumer: u64,
    next: u32,
}

/// Producer-seq → waiting-consumer-seq lists for event-driven issue: a
/// consumer whose source is still executing registers here at dispatch and
/// is woken (its `unready` count dropped) when the producer completes.
/// Nodes live in a slab with a free list, so steady state allocates
/// nothing. Entries for squashed consumers are skipped lazily at wake time
/// (seqs are never reused); entries keyed by a squashed producer are
/// dropped eagerly during the squash walk.
#[derive(Debug, Clone, Default)]
struct WakeupTable {
    heads: FlatMap<u64, u32>,
    slab: Vec<WakeNode>,
    free: Vec<u32>,
}

impl WakeupTable {
    fn register(&mut self, producer: u64, consumer: u64) {
        let next = self.heads.get(&producer).copied().unwrap_or(NIL);
        let node = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = WakeNode { consumer, next };
                i
            }
            None => {
                self.slab.push(WakeNode { consumer, next });
                (self.slab.len() - 1) as u32
            }
        };
        self.heads.insert(producer, node);
    }

    /// Removes the producer's list, pushing its consumers into `out`.
    fn drain(&mut self, producer: u64, out: &mut Vec<u64>) {
        let Some(head) = self.heads.remove(&producer) else { return };
        let mut cur = head;
        while cur != NIL {
            let n = self.slab[cur as usize];
            out.push(n.consumer);
            self.free.push(cur);
            cur = n.next;
        }
    }

    /// Drops the producer's list without waking anyone (squash path: every
    /// registered consumer is younger and being squashed too).
    fn remove_key(&mut self, producer: u64) {
        let Some(head) = self.heads.remove(&producer) else { return };
        let mut cur = head;
        while cur != NIL {
            self.free.push(cur);
            cur = self.slab[cur as usize].next;
        }
    }

    /// Serializes the logical content (producer → sorted consumer list).
    /// Slab layout and hash order never leak into the checkpoint; drain
    /// order is commutative (each wake only decrements a counter and
    /// sorted-inserts into the ready list), so rebuilding from sorted
    /// lists is behavior-identical.
    fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        let mut producers: Vec<u64> = self.heads.keys().copied().collect();
        producers.sort_unstable();
        w.len(producers.len());
        let mut consumers = Vec::new();
        for p in producers {
            consumers.clear();
            let mut cur = self.heads[&p];
            while cur != NIL {
                let n = self.slab[cur as usize];
                consumers.push(n.consumer);
                cur = n.next;
            }
            consumers.sort_unstable();
            w.u64(p);
            w.u64_slice(&consumers);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut rev_trace::CkptReader<'_>,
    ) -> Result<(), rev_trace::CkptError> {
        *self = WakeupTable::default();
        let n = r.len(8)?;
        for _ in 0..n {
            let p = r.u64()?;
            for c in r.u64_slice()? {
                self.register(p, c);
            }
        }
        Ok(())
    }
}

/// Inserts `seq` into an ascending sorted vec (no-op duplicate guard in
/// debug builds only; callers never insert twice).
#[inline]
fn sorted_insert(v: &mut Vec<u64>, seq: u64) {
    match v.last() {
        Some(&last) if last < seq => v.push(seq),
        None => v.push(seq),
        _ => {
            let i = v.partition_point(|&s| s < seq);
            debug_assert!(v.get(i) != Some(&seq), "duplicate ready/store seq");
            v.insert(i, seq);
        }
    }
}

/// Removes `seq` from an ascending sorted vec, if present.
#[inline]
fn sorted_remove(v: &mut Vec<u64>, seq: u64) {
    let i = v.partition_point(|&s| s < seq);
    if v.get(i) == Some(&seq) {
        v.remove(i);
    }
}

#[derive(Debug, Clone, Copy)]
struct StoreNode {
    seq: u64,
    next: u32,
    done: bool,
}

/// Issued-store disambiguation state, maintained incrementally so the
/// issue stage never rescans the ROB for store addresses. Per address the
/// tracker keeps a seq-ascending intrusive list of in-flight stores whose
/// effective address is known (issued but not yet committed/squashed);
/// nodes live in a slab with a free list, so steady state allocates
/// nothing.
#[derive(Debug, Clone, Default)]
struct StoreTracker {
    heads: FlatMap<u64, u32>,
    slab: Vec<StoreNode>,
    free: Vec<u32>,
}

impl StoreTracker {
    /// A store's address became known (it issued): track it, keeping the
    /// per-address list sorted by seq.
    fn insert(&mut self, addr: u64, seq: u64) {
        let node = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = StoreNode { seq, next: NIL, done: false };
                i
            }
            None => {
                self.slab.push(StoreNode { seq, next: NIL, done: false });
                (self.slab.len() - 1) as u32
            }
        };
        match self.heads.get_mut(&addr) {
            None => {
                self.heads.insert(addr, node);
            }
            Some(head) => {
                if self.slab[*head as usize].seq > seq {
                    self.slab[node as usize].next = *head;
                    *head = node;
                } else {
                    let mut cur = *head;
                    loop {
                        let nxt = self.slab[cur as usize].next;
                        if nxt == NIL || self.slab[nxt as usize].seq > seq {
                            self.slab[node as usize].next = nxt;
                            self.slab[cur as usize].next = node;
                            break;
                        }
                        cur = nxt;
                    }
                }
            }
        }
    }

    /// The store's data is ready (it completed): younger loads may forward.
    fn mark_done(&mut self, addr: u64, seq: u64) {
        if let Some(&head) = self.heads.get(&addr) {
            let mut cur = head;
            while cur != NIL {
                if self.slab[cur as usize].seq == seq {
                    self.slab[cur as usize].done = true;
                    return;
                }
                cur = self.slab[cur as usize].next;
            }
        }
        debug_assert!(false, "completed store missing from tracker");
    }

    /// The store left the window (committed or squashed).
    fn remove(&mut self, addr: u64, seq: u64) {
        let Some(head) = self.heads.get_mut(&addr) else {
            debug_assert!(false, "removed store missing from tracker");
            return;
        };
        let mut cur = *head;
        if self.slab[cur as usize].seq == seq {
            let nxt = self.slab[cur as usize].next;
            if nxt == NIL {
                self.heads.remove(&addr);
            } else {
                *head = nxt;
            }
            self.free.push(cur);
            return;
        }
        loop {
            let nxt = self.slab[cur as usize].next;
            if nxt == NIL {
                debug_assert!(false, "removed store missing from tracker");
                return;
            }
            if self.slab[nxt as usize].seq == seq {
                self.slab[cur as usize].next = self.slab[nxt as usize].next;
                self.free.push(nxt);
                return;
            }
            cur = nxt;
        }
    }

    /// The youngest tracked store at `addr` older than `before_seq`
    /// (the forwarding candidate for a load with that seq).
    fn youngest_older(&self, addr: u64, before_seq: u64) -> Option<(u64, bool)> {
        let &head = self.heads.get(&addr)?;
        let mut best = None;
        let mut cur = head;
        while cur != NIL {
            let n = self.slab[cur as usize];
            if n.seq >= before_seq {
                break; // list is seq-ascending
            }
            best = Some((n.seq, n.done));
            cur = n.next;
        }
        best
    }

    /// Serializes the logical content: per address (sorted), the
    /// seq-ascending list of in-flight stores with their data-ready bits.
    fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        let mut addrs: Vec<u64> = self.heads.keys().copied().collect();
        addrs.sort_unstable();
        w.len(addrs.len());
        for a in addrs {
            w.u64(a);
            let mut entries = Vec::new();
            let mut cur = self.heads[&a];
            while cur != NIL {
                let n = self.slab[cur as usize];
                entries.push((n.seq, n.done));
                cur = n.next;
            }
            w.len(entries.len());
            for (seq, done) in entries {
                w.u64(seq);
                w.bool(done);
            }
        }
    }

    fn restore_state(
        &mut self,
        r: &mut rev_trace::CkptReader<'_>,
    ) -> Result<(), rev_trace::CkptError> {
        *self = StoreTracker::default();
        let n = r.len(8)?;
        for _ in 0..n {
            let addr = r.u64()?;
            let m = r.len(9)?;
            for _ in 0..m {
                let seq = r.u64()?;
                let done = r.bool()?;
                self.insert(addr, seq);
                if done {
                    self.mark_done(addr, seq);
                }
            }
        }
        Ok(())
    }
}

/// The out-of-order core.
///
/// Construct with a loaded [`Oracle`] and run against an [`ExecMonitor`].
///
/// `Clone` produces a structural copy that *shares* the attached
/// [`TraceBus`] handle; callers forking a pipeline for independent reuse
/// must sever it with [`Pipeline::set_trace`]`(TraceBus::disabled())`.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: CpuConfig,
    oracle: Oracle,
    mem: Hierarchy,
    bpred: BranchPredictor,
    fetch_queue: VecDeque<Slot>,
    rob: VecDeque<Slot>,
    // Incremental ROB occupancy by stage/kind, kept in sync by
    // dispatch/issue/commit/squash so dispatch doesn't rescan the ROB.
    iq_occupancy: usize,
    lsq_occupancy: usize,
    // Complete scan bounds: conservative lower bound on the seq of the
    // oldest Executing slot (u64::MAX = none), plus the executing
    // population and its earliest completion cycle.
    first_executing_seq: u64,
    executing_count: usize,
    next_complete_at: u64,
    // Event-driven issue: sorted seqs of Waiting slots whose sources are
    // all complete (or committed), sorted seqs of Waiting store-class
    // slots (conservative disambiguation), and the producer → consumer
    // wakeup lists that maintain `ready` without rescanning the ROB.
    ready: Vec<u64>,
    waiting_stores: Vec<u64>,
    wakeups: WakeupTable,
    ready_scratch: Vec<u64>,
    wake_buf: Vec<u64>,
    stores: StoreTracker,
    last_writer: [Option<u64>; 64],
    in_flight_writers: usize,
    next_seq: u64,
    now: u64,
    fetch_pc: u64,
    fetch_resume: u64,
    wrong_path_mode: bool,
    wrong_path_stuck: bool,
    fetch_stopped: bool, // oracle halted or faulted
    oracle_fault: Option<u64>,
    cur_line: Option<(u64, u64)>,        // (line addr, ready cycle)
    prefetched_line: Option<(u64, u64)>, // (line addr, prefetch done cycle)
    head_retry_at: u64,
    stats: CpuStats,
    stats_start_cycle: u64,
    trace: TraceBus,
    fpu_free: Vec<u64>,
    alu_free: Vec<u64>,
    reads_buf: Vec<u8>,
}

impl Pipeline {
    /// Creates a pipeline over a ready-to-run oracle.
    pub fn new(config: CpuConfig, mem_config: MemConfig, oracle: Oracle) -> Self {
        let entry = oracle.state().pc;
        Pipeline {
            bpred: BranchPredictor::new(config.predictor),
            fpu_free: vec![0; config.fpu_units],
            alu_free: vec![0; config.alu_units],
            config,
            oracle,
            mem: Hierarchy::new(mem_config),
            fetch_queue: VecDeque::new(),
            rob: VecDeque::new(),
            iq_occupancy: 0,
            lsq_occupancy: 0,
            first_executing_seq: u64::MAX,
            executing_count: 0,
            next_complete_at: u64::MAX,
            ready: Vec::new(),
            waiting_stores: Vec::new(),
            wakeups: WakeupTable::default(),
            ready_scratch: Vec::new(),
            wake_buf: Vec::new(),
            stores: StoreTracker::default(),
            last_writer: [None; 64],
            in_flight_writers: 0,
            next_seq: 1,
            now: 0,
            fetch_pc: entry,
            fetch_resume: 0,
            wrong_path_mode: false,
            wrong_path_stuck: false,
            fetch_stopped: false,
            oracle_fault: None,
            cur_line: None,
            prefetched_line: None,
            head_retry_at: 0,
            stats: CpuStats::default(),
            stats_start_cycle: 0,
            trace: TraceBus::disabled(),
            reads_buf: Vec::with_capacity(4),
        }
    }

    /// Attaches a trace bus: fetch and commit events flow through it, and
    /// the memory hierarchy gets a clone for DRAM-access events.
    pub fn set_trace(&mut self, trace: TraceBus) {
        self.mem.set_trace(trace.clone());
        self.trace = trace;
    }

    /// The memory hierarchy (stats inspection).
    pub fn mem(&self) -> &Hierarchy {
        &self.mem
    }

    /// The oracle (architectural state inspection).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Mutable oracle access (attack injection between cycles).
    pub fn oracle_mut(&mut self) -> &mut Oracle {
        &mut self.oracle
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Clears all statistics (counters restart from zero) without touching
    /// microarchitectural state — ends a cache/predictor warmup phase, the
    /// same methodology as the paper's measurement windows.
    pub fn reset_stats(&mut self) {
        self.stats = CpuStats::default();
        self.stats_start_cycle = self.now;
        self.mem.reset_stats();
    }

    /// Serializes the complete mid-flight core state — oracle
    /// (architectural registers + live memory), memory hierarchy, branch
    /// predictor, fetch queue, ROB, every issue/disambiguation structure,
    /// and stats — into a checkpoint section. Scratch buffers and the
    /// trace bus are not state (restored pipelines start with tracing
    /// disabled, matching the fresh-build default); slab-backed tables
    /// are written as canonical sorted logical content, so a restored
    /// pipeline re-serializes byte-identically.
    pub fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        w.tag(TAG_CPU);
        self.oracle.save_state(w);
        self.mem.save_state(w);
        self.bpred.save_state(w);
        w.len(self.fetch_queue.len());
        for s in &self.fetch_queue {
            s.save_state(w);
        }
        w.len(self.rob.len());
        for s in &self.rob {
            s.save_state(w);
        }
        w.u64(self.iq_occupancy as u64);
        w.u64(self.lsq_occupancy as u64);
        w.u64(self.first_executing_seq);
        w.u64(self.executing_count as u64);
        w.u64(self.next_complete_at);
        w.u64_slice(&self.ready);
        w.u64_slice(&self.waiting_stores);
        self.wakeups.save_state(w);
        self.stores.save_state(w);
        for writer in self.last_writer {
            w.opt_u64(writer);
        }
        w.u64(self.in_flight_writers as u64);
        w.u64(self.next_seq);
        w.u64(self.now);
        w.u64(self.fetch_pc);
        w.u64(self.fetch_resume);
        w.bool(self.wrong_path_mode);
        w.bool(self.wrong_path_stuck);
        w.bool(self.fetch_stopped);
        w.opt_u64(self.oracle_fault);
        w.opt_u64(self.cur_line.map(|(l, _)| l));
        w.opt_u64(self.cur_line.map(|(_, c)| c));
        w.opt_u64(self.prefetched_line.map(|(l, _)| l));
        w.opt_u64(self.prefetched_line.map(|(_, c)| c));
        w.u64(self.head_retry_at);
        self.stats.save_state(w);
        w.u64(self.stats_start_cycle);
        w.u64_slice(&self.fpu_free);
        w.u64_slice(&self.alu_free);
    }

    /// Restores state saved by [`Pipeline::save_state`] into a pipeline
    /// freshly built with the identical configuration, program, and
    /// initial memory image (the enclosing checkpoint carries a
    /// fingerprint guarding this). Scratch buffers reset; the trace bus
    /// stays as constructed (disabled).
    ///
    /// # Errors
    ///
    /// Returns [`rev_trace::CkptError`] on decode failure or a
    /// configuration mismatch.
    pub fn restore_state(
        &mut self,
        r: &mut rev_trace::CkptReader<'_>,
    ) -> Result<(), rev_trace::CkptError> {
        r.tag(TAG_CPU)?;
        self.oracle.restore_state(r)?;
        self.mem.restore_state(r)?;
        self.bpred.restore_state(r)?;
        let n = r.len(1)?;
        self.fetch_queue.clear();
        for _ in 0..n {
            self.fetch_queue.push_back(Slot::restore_state(r)?);
        }
        let n = r.len(1)?;
        self.rob.clear();
        for _ in 0..n {
            self.rob.push_back(Slot::restore_state(r)?);
        }
        self.iq_occupancy = r.u64()? as usize;
        self.lsq_occupancy = r.u64()? as usize;
        self.first_executing_seq = r.u64()?;
        self.executing_count = r.u64()? as usize;
        self.next_complete_at = r.u64()?;
        self.ready = r.u64_slice()?;
        self.waiting_stores = r.u64_slice()?;
        self.wakeups.restore_state(r)?;
        self.stores.restore_state(r)?;
        for writer in &mut self.last_writer {
            *writer = r.opt_u64()?;
        }
        self.in_flight_writers = r.u64()? as usize;
        self.next_seq = r.u64()?;
        self.now = r.u64()?;
        self.fetch_pc = r.u64()?;
        self.fetch_resume = r.u64()?;
        self.wrong_path_mode = r.bool()?;
        self.wrong_path_stuck = r.bool()?;
        self.fetch_stopped = r.bool()?;
        self.oracle_fault = r.opt_u64()?;
        self.cur_line = match (r.opt_u64()?, r.opt_u64()?) {
            (Some(l), Some(c)) => Some((l, c)),
            (None, None) => None,
            _ => {
                return Err(rev_trace::CkptError::Malformed(
                    "half-present current fetch line".to_string(),
                ))
            }
        };
        self.prefetched_line = match (r.opt_u64()?, r.opt_u64()?) {
            (Some(l), Some(c)) => Some((l, c)),
            (None, None) => None,
            _ => {
                return Err(rev_trace::CkptError::Malformed(
                    "half-present prefetched line".to_string(),
                ))
            }
        };
        self.head_retry_at = r.u64()?;
        self.stats.restore_state(r)?;
        self.stats_start_cycle = r.u64()?;
        let fpu_free = r.u64_slice()?;
        let alu_free = r.u64_slice()?;
        if fpu_free.len() != self.fpu_free.len() || alu_free.len() != self.alu_free.len() {
            return Err(rev_trace::CkptError::Malformed(format!(
                "functional-unit counts {}/{} do not match configuration {}/{}",
                fpu_free.len(),
                alu_free.len(),
                self.fpu_free.len(),
                self.alu_free.len()
            )));
        }
        self.fpu_free = fpu_free;
        self.alu_free = alu_free;
        self.ready_scratch.clear();
        self.wake_buf.clear();
        self.reads_buf.clear();
        Ok(())
    }

    /// Runs until `max_instrs` correct-path instructions commit, the
    /// program halts, or the monitor reports a violation.
    ///
    /// This is the monolithic run-to-completion loop: the monitor's
    /// end-of-run hook fires on **every** exit path, including
    /// [`RunOutcome::BudgetReached`]. Suspendable sessions instead call
    /// [`Pipeline::run_slice`] repeatedly and [`Pipeline::finish_run`]
    /// exactly once, which composes to the same hook sequence.
    pub fn run<M: ExecMonitor>(&mut self, monitor: &mut M, max_instrs: u64) -> RunResult {
        let result = self.run_slice(monitor, max_instrs);
        if result.outcome == RunOutcome::BudgetReached {
            self.finish_run(monitor);
        }
        result
    }

    /// Fires the monitor's end-of-run hook (terminal state flush: shadow
    /// promotion, SC stat capture). [`Pipeline::run`] does this
    /// implicitly; a caller stepping the core through [`Self::run_slice`]
    /// budget slices must call it exactly once, when the run is truly
    /// over — an intermediate yield is *not* an end of run, and firing
    /// the hook there would promote shadow pages mid-execution.
    pub fn finish_run<M: ExecMonitor>(&mut self, monitor: &mut M) {
        monitor.on_run_end(&mut self.mem, self.now);
    }

    /// Runs until the **cumulative** committed-instruction count (since
    /// the last [`Self::reset_stats`]) reaches `max_instrs`, the program
    /// halts, or the monitor reports a violation — then returns *without*
    /// firing the monitor's end-of-run hook on the budget path, so the
    /// caller can resume from the exact microarchitectural state later.
    /// Halt and violation exits are terminal and do fire the hook.
    ///
    /// The per-cycle loop is byte-for-byte the monolithic one: a slice
    /// boundary is only an early return between two cycles, never a
    /// different cycle, so stepping in arbitrary budget slices commits
    /// the same instructions on the same cycles as one big run (the
    /// session-slicing equivalence suite in `rev-bench` pins this across
    /// all 18 workload profiles).
    pub fn run_slice<M: ExecMonitor>(&mut self, monitor: &mut M, max_instrs: u64) -> RunResult {
        // A previous slice can end on the exact cycle the program drains
        // (the halt commits and the budget hits together): the budget
        // return below pre-empts the empty check, so the drained state is
        // only discovered here, on resume. Re-derive it *before* stepping
        // a cycle — the monolithic loop sees empty in the same iteration,
        // and resumption must not charge a cycle it never ran.
        if self.pipeline_empty() {
            monitor.on_run_end(&mut self.mem, self.now);
            let outcome = match self.oracle_fault {
                Some(pc) => RunOutcome::OracleFault { pc },
                None => RunOutcome::Halted,
            };
            return RunResult { outcome, stats: self.stats.clone() };
        }
        let mut last_commit_cycle = self.now;
        let mut last_committed = self.stats.committed_instrs;
        loop {
            if let Some(v) = self.cycle(monitor) {
                monitor.on_run_end(&mut self.mem, self.now);
                return RunResult { outcome: RunOutcome::Violation(v), stats: self.stats.clone() };
            }
            if self.stats.committed_instrs != last_committed {
                last_committed = self.stats.committed_instrs;
                last_commit_cycle = self.now;
            }
            if self.stats.committed_instrs >= max_instrs {
                return RunResult { outcome: RunOutcome::BudgetReached, stats: self.stats.clone() };
            }
            if self.pipeline_empty() {
                monitor.on_run_end(&mut self.mem, self.now);
                let outcome = match self.oracle_fault {
                    Some(pc) => RunOutcome::OracleFault { pc },
                    None => RunOutcome::Halted,
                };
                return RunResult { outcome, stats: self.stats.clone() };
            }
            assert!(
                self.now - last_commit_cycle < 1_000_000,
                "pipeline deadlock at cycle {} (head: {:?})",
                self.now,
                self.rob.front().map(|s| (s.seq, s.addr, s.insn, s.stage))
            );
            // Pre-gate on the cheapest disqualifier (issue always acts on
            // a non-empty ready list) so busy cycles don't pay the full
            // idle-condition scan.
            if self.ready.is_empty() {
                self.skip_idle_cycles();
            }
        }
    }

    /// Fast-forwards `now` over cycles in which no stage can act (a
    /// long-latency load at the ROB head with the whole machine drained
    /// behind it, an i-cache line fill in flight): every stage's blocking
    /// condition is re-derived here with *no* side effects, and the next
    /// stepped cycle becomes the earliest event that could unblock any of
    /// them. Windows where a stage charges per-cycle stall statistics (a
    /// commit-eligible head held by the monitor or defer-buffer
    /// back-pressure) are never skipped, so counters and timing are
    /// exactly as if every idle cycle had been stepped.
    fn skip_idle_cycles(&mut self) {
        let t = self.now + 1;
        let mut next_event = u64::MAX;
        // Commit: only a not-yet-committable head is skippable (a Done
        // head past its commit delay may retire or charge stall counters).
        if let Some(h) = self.rob.front() {
            if h.stage == Stage::Done {
                if t < h.complete_at + 2 {
                    next_event = next_event.min(h.complete_at + 2);
                } else {
                    return;
                }
            }
        }
        // Complete.
        if self.executing_count > 0 {
            if t < self.next_complete_at {
                next_event = next_event.min(self.next_complete_at);
            } else {
                return;
            }
        }
        // Issue (re-checked for callers other than the gated run loop).
        if !self.ready.is_empty() {
            return;
        }
        // Dispatch: resource blocks (ROB/IQ/LSQ/physical registers) only
        // clear via commit or issue, both established idle above, so they
        // carry no wake-up event of their own.
        if let Some(f) = self.fetch_queue.front() {
            if t < f.dispatch_ready {
                next_event = next_event.min(f.dispatch_ready);
            } else {
                let blocked = self.rob.len() >= self.config.rob_size
                    || self.iq_occupancy >= self.config.iq_size
                    || ((f.is_load() || f.is_store())
                        && self.lsq_occupancy >= self.config.lsq_size)
                    || (f.flag(F_WRITES_REG)
                        && self.in_flight_writers + 64 >= self.config.phys_regs);
                if !blocked {
                    return;
                }
            }
        }
        // Fetch: a full fetch queue drains only via dispatch (idle above);
        // a pending i-line wait has a known ready cycle; anything else
        // would touch the memory system, so no skip.
        if !self.fetch_stopped && !self.wrong_path_stuck {
            if t < self.fetch_resume {
                next_event = next_event.min(self.fetch_resume);
            } else if self.fetch_queue.len() < self.config.fetch_queue {
                let line_mask = !(self.mem.config().l1i.line_bytes as u64 - 1);
                match self.cur_line {
                    Some((l, ready)) if l == self.fetch_pc & line_mask && t < ready => {
                        next_event = next_event.min(ready);
                    }
                    _ => return,
                }
            }
        }
        if next_event != u64::MAX && next_event > t {
            self.now = next_event - 1;
        }
    }

    fn pipeline_empty(&self) -> bool {
        self.fetch_stopped && self.rob.is_empty() && self.fetch_queue.is_empty()
    }

    /// Advances one cycle. Returns a violation if the monitor raised one.
    pub fn cycle<M: ExecMonitor>(&mut self, monitor: &mut M) -> Option<Violation> {
        self.now += 1;
        self.stats.cycles = self.now - self.stats_start_cycle;
        if let Some(v) = self.commit_stage(monitor) {
            return Some(v);
        }
        self.complete_stage(monitor);
        self.issue_stage(monitor);
        self.dispatch_stage();
        self.fetch_stage(monitor);
        None
    }

    /// Index of the first ROB slot whose seq is `>= bound` (scan starting
    /// point for the hint-bounded stages; the ROB is seq-ascending).
    ///
    /// Seqs grow by at least one per slot (monotonic fetch numbering,
    /// head/tail-only removal), so slot `i` holds seq `>= head.seq + i`:
    /// `bound - head.seq` is *exact* while the window holds no squash gap
    /// (the overwhelmingly common case) and an upper bound otherwise, where
    /// a binary search over the tightened prefix finishes the job.
    #[inline]
    fn rob_idx_of(&self, bound: u64) -> usize {
        if bound == u64::MAX {
            return self.rob.len();
        }
        let Some(front) = self.rob.front() else { return 0 };
        if bound <= front.seq {
            return 0;
        }
        let cand = (bound - front.seq) as usize;
        if cand < self.rob.len() {
            if self.rob[cand].seq == bound {
                return cand; // dense window — O(1) probe hit
            }
        } else if self.rob.back().map(|s| s.seq < bound).unwrap_or(true) {
            return self.rob.len();
        }
        // A squash gap sits between the head and `bound`: the answer is
        // somewhere in `[0, cand]`.
        let (mut lo, mut hi) = (0usize, cand.min(self.rob.len()));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rob[mid].seq < bound {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    // ----- commit ---------------------------------------------------------

    fn commit_stage<M: ExecMonitor>(&mut self, monitor: &mut M) -> Option<Violation> {
        for _ in 0..self.config.width {
            let Some(head) = self.rob.front() else { break };
            debug_assert!(!head.flag(F_WRONG_PATH), "wrong-path at ROB head");
            if head.stage != Stage::Done || self.now < head.complete_at + 2 {
                break;
            }
            if head.is_store() && !monitor.can_accept_store() {
                self.stats.defer_full_stall_cycles += 1;
                break;
            }
            if head.flag(F_BOUNDARY) {
                if self.now < self.head_retry_at {
                    self.stats.validation_stall_cycles += 1;
                    break;
                }
                debug_assert!(head.flag(F_HAS_DYN), "correct-path head has oracle info");
                let query = CommitQuery {
                    seq: head.seq,
                    bb_addr: head.addr,
                    cycle: self.now,
                    actual_target: head.next_pc,
                    insn: head.insn,
                };
                match monitor.on_terminator_commit(&mut self.mem, &query) {
                    CommitGate::Proceed => {}
                    CommitGate::StallUntil(c) => {
                        self.head_retry_at = c.max(self.now + 1);
                        self.stats.validation_stall_cycles += 1;
                        break;
                    }
                    CommitGate::Violation(v) => return Some(v),
                }
            }
            let slot = self.rob.pop_front().expect("head exists");
            self.trace.emit_with(|| TraceEvent {
                cycle: self.now,
                kind: EventKind::Commit { seq: slot.seq, addr: slot.addr },
            });
            self.head_retry_at = 0;
            if slot.is_load() || slot.is_store() {
                self.lsq_occupancy -= 1;
            }
            if slot.flag(F_WRITES_REG) {
                self.in_flight_writers -= 1;
            }
            debug_assert!(slot.flag(F_HAS_DYN), "correct path");
            // Train the predictor with the architectural outcome.
            match slot.class {
                InstrClass::CondBranch => {
                    self.bpred.update_cond(slot.addr, slot.flag(F_TAKEN), slot.history_at_predict);
                    self.stats.committed_cond_branches += 1;
                    if slot.flag(F_MISPREDICTED) {
                        self.stats.mispredicts += 1;
                    }
                }
                InstrClass::JumpIndirect | InstrClass::CallIndirect => {
                    self.bpred.update_indirect(slot.addr, slot.next_pc);
                }
                _ => {}
            }
            if slot.insn.is_bb_terminator() && !matches!(slot.insn, Instruction::Halt) {
                self.stats.committed_branches += 1;
                self.stats.unique_branch_addrs.insert(slot.addr);
            }
            if slot.is_store() {
                debug_assert!(slot.flag(F_HAS_MEM), "stores have addresses");
                self.stores.remove(slot.mem_addr, slot.seq);
                monitor.on_store_commit(
                    &mut self.mem,
                    StoreCommit {
                        seq: slot.seq,
                        addr: slot.mem_addr,
                        value: slot.store_value,
                        cycle: self.now,
                    },
                );
            }
            self.stats.committed_instrs += 1;
            self.stats.mix.record(slot.class);
            if slot.flag(F_HALTED) {
                self.fetch_stopped = true;
            }
        }
        None
    }

    // ----- complete / branch resolution -----------------------------------

    fn complete_stage<M: ExecMonitor>(&mut self, monitor: &mut M) {
        if self.executing_count == 0 || self.now < self.next_complete_at {
            return;
        }
        let start = self.rob_idx_of(self.first_executing_seq);
        let mut recover_from: Option<usize> = None;
        let mut remaining = self.executing_count;
        let mut new_first = u64::MAX;
        let mut new_next = u64::MAX;
        let mut woken = std::mem::take(&mut self.wake_buf);
        woken.clear();
        for i in start..self.rob.len() {
            if remaining == 0 {
                break;
            }
            let (seq, complete_at, flags, mem_addr) = {
                let s = &self.rob[i];
                if s.stage != Stage::Executing {
                    continue;
                }
                (s.seq, s.complete_at, s.flags, s.mem_addr)
            };
            remaining -= 1;
            if self.now >= complete_at {
                let s = &mut self.rob[i];
                s.stage = Stage::Done;
                self.executing_count -= 1;
                self.wakeups.drain(seq, &mut woken);
                if flags & (F_STORE | F_HAS_MEM) == (F_STORE | F_HAS_MEM) {
                    self.stores.mark_done(mem_addr, seq);
                }
                if flags & F_MISPREDICTED != 0
                    && flags & F_WRONG_PATH == 0
                    && flags & F_RECOVERY_DONE == 0
                {
                    self.rob[i].flags |= F_RECOVERY_DONE;
                    recover_from = Some(i);
                    break; // the oldest resolving mispredict wins
                }
            } else {
                if new_first == u64::MAX {
                    new_first = seq;
                }
                new_next = new_next.min(complete_at);
            }
        }
        self.first_executing_seq = new_first;
        self.next_complete_at = new_next;
        // Wake consumers of the newly completed producers. Registrations
        // for consumers that were squashed since dispatch are skipped (the
        // seq no longer resolves to a slot).
        for &consumer in &woken {
            let idx = self.rob_idx_of(consumer);
            let Some(s) = self.rob.get_mut(idx) else { continue };
            if s.seq != consumer || s.stage != Stage::Waiting {
                continue;
            }
            debug_assert!(s.unready > 0, "woken slot has no pending sources");
            s.unready -= 1;
            if s.unready == 0 {
                sorted_insert(&mut self.ready, consumer);
            }
        }
        woken.clear();
        self.wake_buf = woken;
        if let Some(i) = recover_from {
            self.recover_from_mispredict(i, monitor);
        }
    }

    fn recover_from_mispredict<M: ExecMonitor>(&mut self, rob_idx: usize, monitor: &mut M) {
        let branch_seq = self.rob[rob_idx].seq;
        debug_assert!(self.rob[rob_idx].flag(F_HAS_DYN), "correct path");
        let actual = self.rob[rob_idx].next_pc;
        let taken = self.rob[rob_idx].flag(F_TAKEN);
        let cp = self.rob[rob_idx].checkpoint;
        let is_cond = matches!(self.rob[rob_idx].class, InstrClass::CondBranch);

        // Squash everything younger than the branch.
        self.squash_after(branch_seq);
        monitor.on_flush(branch_seq + 1);

        if let Some(cp) = cp {
            self.bpred.restore(cp, is_cond.then_some(taken));
        }
        self.fetch_pc = actual;
        self.fetch_resume = self.now + 1;
        self.wrong_path_mode = false;
        self.wrong_path_stuck = false;
        self.cur_line = None;
    }

    fn squash_after(&mut self, seq: u64) {
        while self.rob.back().map(|s| s.seq > seq).unwrap_or(false) {
            let s = self.rob.pop_back().expect("non-empty");
            if s.flag(F_WRITES_REG) {
                self.in_flight_writers -= 1;
            }
            if s.flag(F_WRONG_PATH) {
                self.stats.wrong_path_fetched += 1;
            }
            match s.stage {
                Stage::Waiting => {
                    self.iq_occupancy -= 1;
                    if s.unready == 0 {
                        sorted_remove(&mut self.ready, s.seq);
                    }
                    if s.is_store() {
                        sorted_remove(&mut self.waiting_stores, s.seq);
                    }
                }
                Stage::Executing => self.executing_count -= 1,
                Stage::Done => {}
            }
            if s.stage != Stage::Waiting && s.flags & (F_STORE | F_HAS_MEM) == (F_STORE | F_HAS_MEM)
            {
                self.stores.remove(s.mem_addr, s.seq);
            }
            if s.is_load() || s.is_store() {
                self.lsq_occupancy -= 1;
            }
            // Any wakeup list keyed by this producer only names younger
            // consumers, all squashed in this same walk: drop it whole.
            self.wakeups.remove_key(s.seq);
        }
        for s in self.fetch_queue.drain(..) {
            if s.flag(F_WRITES_REG) {
                self.in_flight_writers -= 1;
            }
            if s.flag(F_WRONG_PATH) {
                self.stats.wrong_path_fetched += 1;
            }
        }
        // Rebuild the rename map from the survivors.
        self.last_writer = [None; 64];
        let mut rebuilt = [None; 64];
        for s in &self.rob {
            if let Some(w) = write_of(&s.insn) {
                rebuilt[w as usize] = Some(s.seq);
            }
        }
        self.last_writer = rebuilt;
    }

    // ----- issue -----------------------------------------------------------

    fn issue_stage<M: ExecMonitor>(&mut self, monitor: &mut M) {
        if self.ready.is_empty() {
            return;
        }
        let mut issued = 0usize;
        let mut load_used = 0usize;
        let mut store_used = 0usize;
        // Walk this cycle's ready slots oldest-first (the list is sorted by
        // seq). A slot that stays blocked — port-limited, disambiguation,
        // waiting on a forwarding store's data — simply remains in the
        // ready list for next cycle. Conservative disambiguation consults
        // `waiting_stores` live: a store still listed when a younger load
        // is considered either was not ready or did not claim a port, which
        // is exactly the old scan's `older_store_addr_unknown` condition.
        let mut candidates = std::mem::take(&mut self.ready_scratch);
        candidates.clear();
        candidates.extend_from_slice(&self.ready);
        for &seq in &candidates {
            if issued >= self.config.width {
                break;
            }
            let idx = self.rob_idx_of(seq);
            debug_assert!(
                self.rob.get(idx).map(|s| s.seq == seq && s.stage == Stage::Waiting) == Some(true),
                "ready list out of sync with ROB"
            );
            let (flags, mem_addr, class) = {
                let s = &self.rob[idx];
                (s.flags, s.mem_addr, s.class)
            };

            // Functional-unit availability.
            let complete_at = match class {
                InstrClass::IntAlu
                | InstrClass::CondBranch
                | InstrClass::Jump
                | InstrClass::JumpIndirect
                | InstrClass::Syscall
                | InstrClass::Other => match self.claim_alu() {
                    Some(()) => self.now + 1,
                    None => continue,
                },
                InstrClass::IntMul => match self.claim_alu() {
                    Some(()) => self.now + self.config.mul_latency,
                    None => continue,
                },
                InstrClass::Fp => match self.claim_fpu(1) {
                    Some(()) => self.now + self.config.fp_latency,
                    None => continue,
                },
                InstrClass::FpDiv => match self.claim_fpu(self.config.fpdiv_latency) {
                    Some(()) => self.now + self.config.fpdiv_latency,
                    None => continue,
                },
                InstrClass::Load | InstrClass::Return => {
                    if load_used >= self.config.load_units {
                        continue;
                    }
                    if flags & F_WRONG_PATH != 0 {
                        load_used += 1;
                        self.now + 3 // wrong-path load: no oracle address
                    } else {
                        if self.waiting_stores.first().map(|&s| s < seq).unwrap_or(false) {
                            continue; // conservative disambiguation
                        }
                        debug_assert!(flags & F_HAS_MEM != 0, "correct-path loads have addresses");
                        let addr = mem_addr;
                        match self.stores.youngest_older(addr, seq) {
                            Some((_, false)) => {
                                continue; // wait for the forwarding store's data
                            }
                            Some((_, true)) => {
                                load_used += 1;
                                self.now + 2 // store-to-load forward
                            }
                            None => {
                                if monitor.forwards_store(addr) {
                                    load_used += 1;
                                    self.now + 2 // forward from the deferred buffer
                                } else {
                                    load_used += 1;
                                    let out = self.mem.data_access(Request {
                                        addr,
                                        is_write: false,
                                        requester: Requester::Data,
                                        cycle: self.now,
                                    });
                                    out.complete_at
                                }
                            }
                        }
                    }
                }
                InstrClass::Store | InstrClass::CallDirect | InstrClass::CallIndirect => {
                    if store_used >= self.config.store_units {
                        // Ready but port-limited: its address stays unknown
                        // to younger loads this cycle (it remains listed in
                        // `waiting_stores`).
                        continue;
                    }
                    store_used += 1;
                    self.now + 1 // address generation; data written post-commit
                }
            };

            let s = &mut self.rob[idx];
            s.stage = Stage::Executing;
            s.complete_at = complete_at;
            issued += 1;
            self.iq_occupancy -= 1;
            self.executing_count += 1;
            self.first_executing_seq = self.first_executing_seq.min(seq);
            self.next_complete_at = self.next_complete_at.min(complete_at);
            sorted_remove(&mut self.ready, seq);
            if flags & F_STORE != 0 {
                sorted_remove(&mut self.waiting_stores, seq);
            }
            if flags & (F_STORE | F_HAS_MEM) == (F_STORE | F_HAS_MEM) {
                self.stores.insert(mem_addr, seq);
            }
        }
        self.ready_scratch = candidates;
    }

    fn claim_alu(&mut self) -> Option<()> {
        let now = self.now;
        let slot = self.alu_free.iter_mut().find(|f| **f <= now)?;
        *slot = now + 1;
        Some(())
    }

    fn claim_fpu(&mut self, occupy: u64) -> Option<()> {
        let now = self.now;
        let slot = self.fpu_free.iter_mut().find(|f| **f <= now)?;
        *slot = now + occupy;
        Some(())
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch_stage(&mut self) {
        debug_assert_eq!(
            self.iq_occupancy,
            self.rob.iter().filter(|s| s.stage == Stage::Waiting).count(),
            "iq occupancy counter out of sync"
        );
        debug_assert_eq!(
            self.lsq_occupancy,
            self.rob.iter().filter(|s| s.is_load() || s.is_store()).count(),
            "lsq occupancy counter out of sync"
        );
        debug_assert_eq!(
            self.executing_count,
            self.rob.iter().filter(|s| s.stage == Stage::Executing).count(),
            "executing counter out of sync"
        );
        debug_assert_eq!(
            self.ready.len(),
            self.rob.iter().filter(|s| s.stage == Stage::Waiting && s.unready == 0).count(),
            "ready list out of sync"
        );
        debug_assert_eq!(
            self.waiting_stores.len(),
            self.rob.iter().filter(|s| s.stage == Stage::Waiting && s.is_store()).count(),
            "waiting-store list out of sync"
        );
        let mut dispatched = 0;
        while dispatched < self.config.width {
            let Some(front) = self.fetch_queue.front() else { break };
            if self.now < front.dispatch_ready {
                break;
            }
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            if self.iq_occupancy >= self.config.iq_size {
                break;
            }
            let front_mem = front.is_load() || front.is_store();
            if front_mem && self.lsq_occupancy >= self.config.lsq_size {
                break;
            }
            if front.flag(F_WRITES_REG) && self.in_flight_writers + 64 >= self.config.phys_regs {
                break;
            }
            let mut slot = self.fetch_queue.pop_front().expect("front exists");
            // Rename: resolve source producers.
            reads_of(&slot.insn, &mut self.reads_buf);
            let mut n = 0usize;
            for &r in &self.reads_buf {
                if let Some(p) = self.last_writer[r as usize] {
                    slot.srcs[n] = p;
                    n += 1;
                }
            }
            slot.src_count = n as u8;
            if let Some(w) = write_of(&slot.insn) {
                self.last_writer[w as usize] = Some(slot.seq);
            }
            slot.stage = Stage::Waiting;
            // Wakeup scheduling: count the sources still in flight and
            // subscribe to their completions; a slot with none is ready
            // now. (A source older than the ROB head has committed.)
            let head_seq = self.rob.front().map(|s| s.seq).unwrap_or(u64::MAX);
            let mut unready = 0u8;
            for k in 0..n {
                let p = slot.srcs[k];
                if p >= head_seq {
                    // The producer is still in the ROB (renamed at dispatch,
                    // rebuilt on squash, younger than the head): read its
                    // stage directly instead of keeping a side done-set.
                    let i = self.rob_idx_of(p);
                    let done =
                        self.rob.get(i).map(|s| s.seq == p && s.stage == Stage::Done) == Some(true);
                    if !done {
                        unready += 1;
                        self.wakeups.register(p, slot.seq);
                    }
                }
            }
            slot.unready = unready;
            if unready == 0 {
                sorted_insert(&mut self.ready, slot.seq);
            }
            if slot.is_store() {
                sorted_insert(&mut self.waiting_stores, slot.seq);
            }
            self.iq_occupancy += 1;
            if front_mem {
                self.lsq_occupancy += 1;
            }
            self.rob.push_back(slot);
            dispatched += 1;
        }
    }

    // ----- fetch -----------------------------------------------------------

    fn fetch_stage<M: ExecMonitor>(&mut self, monitor: &mut M) {
        if self.fetch_stopped || self.wrong_path_stuck || self.now < self.fetch_resume {
            return;
        }
        let line_mask = !(self.mem.config().l1i.line_bytes as u64 - 1);
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= self.config.fetch_queue {
                break;
            }
            // Instruction-cache line availability (with next-line stream
            // prefetch: sequential line fills are overlapped, fills after
            // taken control transfers pay the full miss).
            let line = self.fetch_pc & line_mask;
            match self.cur_line {
                Some((l, ready)) if l == line => {
                    if self.now < ready {
                        break;
                    }
                }
                _ => {
                    let out = self.mem.fetch_access(line, self.now);
                    let mut ready = out.complete_at;
                    if let Some((pl, prdy)) = self.prefetched_line {
                        if pl == line {
                            // The line is resident thanks to the prefetch,
                            // but not usable before the prefetch completes.
                            ready = ready.max(prdy);
                        }
                    }
                    let line_bytes = self.mem.config().l1i.line_bytes as u64;
                    let pf_done = self.mem.prefetch_line(line + line_bytes, self.now);
                    self.prefetched_line = Some((line + line_bytes, pf_done));
                    self.cur_line = Some((line, ready));
                    if self.now < ready {
                        self.fetch_resume = ready;
                        break;
                    }
                }
            }

            // Obtain the instruction: oracle step (correct path) or raw
            // decode (wrong path). The oracle fills `bytes` with the very
            // code it decoded, so the fetch event needs no second read.
            let mut bytes = [0u8; MAX_INSTR_LEN];
            let (insn, len, dyn_op) = if self.wrong_path_mode {
                self.oracle.mem().read_filtered(self.fetch_pc, &mut bytes);
                match decode(&bytes) {
                    Ok((insn, len)) => (insn, len as u8, None),
                    Err(_) => {
                        // Wrong-path fetch ran into garbage: stall until
                        // the mispredict resolves.
                        self.wrong_path_stuck = true;
                        break;
                    }
                }
            } else {
                match self.oracle.step_fetched(&mut bytes) {
                    Ok(op) => (op.insn, op.len, Some(op)),
                    Err(e) => {
                        let crate::oracle::OracleError::IllegalInstruction { pc } = e;
                        self.oracle_fault = Some(pc);
                        self.fetch_stopped = true;
                        break;
                    }
                }
            };
            for b in &mut bytes[len as usize..] {
                *b = 0;
            }
            let addr = self.fetch_pc;
            let fall_through = addr + len as u64;

            // Predict the next fetch address.
            let mut checkpoint = None;
            let mut history_at_predict = self.bpred.history();
            let predicted_next = match insn {
                Instruction::Branch { disp, .. } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    history_at_predict = self.bpred.history();
                    let predicted_taken = self.bpred.predict_cond(addr);
                    // Speculative history: actual outcome on the correct
                    // path (known from the oracle), prediction otherwise.
                    let history_bit = match &dyn_op {
                        Some(d) => d.taken,
                        None => predicted_taken,
                    };
                    self.bpred.push_history(history_bit);
                    if predicted_taken {
                        fall_through.wrapping_add(disp as i64 as u64)
                    } else {
                        fall_through
                    }
                }
                Instruction::Jmp { disp } => fall_through.wrapping_add(disp as i64 as u64),
                Instruction::Call { disp } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.ras_push(fall_through);
                    fall_through.wrapping_add(disp as i64 as u64)
                }
                Instruction::JmpInd { .. } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.predict_indirect(addr).unwrap_or(fall_through)
                }
                Instruction::CallInd { .. } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.ras_push(fall_through);
                    self.bpred.predict_indirect(addr).unwrap_or(fall_through)
                }
                Instruction::Ret => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.ras_pop().unwrap_or(fall_through)
                }
                Instruction::Halt => addr,
                _ => fall_through,
            };

            let mispredicted = match &dyn_op {
                Some(d) => !d.halted && predicted_next != d.next_pc,
                None => false,
            };

            let seq = self.next_seq;
            self.next_seq += 1;
            let event = FetchEvent {
                seq,
                addr,
                insn,
                bytes,
                len,
                cycle: self.now,
                predicted_next,
                wrong_path: self.wrong_path_mode,
            };
            self.trace.emit_with(|| TraceEvent {
                cycle: self.now,
                kind: EventKind::Fetch { seq, addr, wrong_path: self.wrong_path_mode },
            });
            let is_boundary = monitor.on_fetch(&mut self.mem, &event);

            let class = insn.class();
            let mut flags = 0u16;
            if self.wrong_path_mode {
                flags |= F_WRONG_PATH;
            }
            if is_boundary {
                flags |= F_BOUNDARY;
            }
            if matches!(class, InstrClass::Load | InstrClass::Return) {
                flags |= F_LOAD;
            }
            if matches!(
                class,
                InstrClass::Store | InstrClass::CallDirect | InstrClass::CallIndirect
            ) {
                flags |= F_STORE;
            }
            let writes_reg = write_of(&insn).is_some();
            if writes_reg {
                flags |= F_WRITES_REG;
            }
            if mispredicted {
                flags |= F_MISPREDICTED;
            }
            let (mut mem_addr, mut next_pc, mut store_value) = (0u64, 0u64, 0u64);
            if let Some(d) = &dyn_op {
                flags |= F_HAS_DYN;
                if d.taken {
                    flags |= F_TAKEN;
                }
                if d.halted {
                    flags |= F_HALTED;
                }
                if let Some(a) = d.mem_addr {
                    flags |= F_HAS_MEM;
                    mem_addr = a;
                }
                next_pc = d.next_pc;
                store_value = d.store_value.unwrap_or(0);
            }

            self.fetch_queue.push_back(Slot {
                stage: Stage::Waiting,
                class,
                src_count: 0,
                unready: 0,
                flags,
                seq,
                mem_addr,
                complete_at: 0,
                srcs: [0; 2],
                addr,
                next_pc,
                store_value,
                dispatch_ready: self.now + self.config.frontend_depth,
                history_at_predict,
                insn,
                checkpoint,
            });
            if writes_reg {
                self.in_flight_writers += 1;
            }

            if let Some(d) = &dyn_op {
                if d.halted {
                    self.fetch_stopped = true;
                    break;
                }
            }
            if mispredicted {
                self.wrong_path_mode = true;
            }
            self.fetch_pc = predicted_next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullMonitor;
    use rev_isa::BranchCond;
    use rev_mem::MainMemory;
    use rev_prog::{ModuleBuilder, Program};

    fn build_pipeline<F: FnOnce(&mut ModuleBuilder)>(f: F) -> (Pipeline, NullMonitor) {
        let mut b = ModuleBuilder::new("t", 0x1000);
        f(&mut b);
        let m = b.finish().unwrap();
        let mut pb = Program::builder();
        pb.module(m);
        let p = pb.build();
        let mem = MainMemory::with_segments(&p.segments());
        let monitor = NullMonitor::new(mem.clone());
        let oracle = Oracle::new(mem, p.entry(), p.initial_sp());
        (Pipeline::new(CpuConfig::paper_default(), MemConfig::paper_default(), oracle), monitor)
    }

    #[test]
    fn straight_line_commits_all() {
        let (mut p, mut m) = build_pipeline(|b| {
            for i in 0..20 {
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: i });
            }
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 1_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(r.stats.committed_instrs, 21);
        assert!(r.stats.cycles >= 16, "min fetch-to-commit depth");
    }

    #[test]
    fn ipc_exceeds_one_on_ilp() {
        let (mut p, mut m) = build_pipeline(|b| {
            // A loop of independent adds on distinct registers: once the
            // I-cache warms, both ALUs should stay busy.
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R30, imm: 300 });
            b.bind(top);
            for i in 0..16 {
                let rd = Reg::from_index(1 + (i % 16) as u8).unwrap();
                b.push(Instruction::AddI { rd, rs: Reg::R0, imm: i });
            }
            b.push(Instruction::AddI { rd: Reg::R20, rs: Reg::R20, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R20, Reg::R30, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert!(r.stats.ipc() > 1.0, "ipc {} should exceed 1", r.stats.ipc());
    }

    #[test]
    fn dependent_chain_is_serial() {
        let (mut p, mut m) = build_pipeline(|b| {
            for _ in 0..200 {
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            }
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 10_000);
        assert!(r.stats.ipc() <= 1.05, "serial chain ipc {} must be ~1", r.stats.ipc());
        assert_eq!(p.oracle().state().reg(Reg::R1), 200, "functional result intact");
    }

    #[test]
    fn loop_with_predictable_branch() {
        let (mut p, mut m) = build_pipeline(|b| {
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 200 });
            b.bind(top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 2 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(r.stats.committed_cond_branches, 200);
        // Loop branch should become nearly perfectly predicted.
        assert!(r.stats.mispredict_rate() < 0.10, "mispredict rate {}", r.stats.mispredict_rate());
        assert_eq!(p.oracle().state().reg(Reg::R3), 400);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch (LCG bit) vs an
        // always-taken one: the former must run slower.
        let run = |chaotic: bool| {
            let (mut p, mut m) = build_pipeline(|b| {
                let top = b.new_label();
                let skip = b.new_label();
                b.push(Instruction::Li { rd: Reg::R2, imm: 400 });
                b.push(Instruction::Li { rd: Reg::R10, imm: 12345 });
                b.bind(top);
                b.push(Instruction::MulI { rd: Reg::R10, rs: Reg::R10, imm: 1103515245 });
                b.push(Instruction::AddI { rd: Reg::R10, rs: Reg::R10, imm: 12345 });
                if chaotic {
                    // test bit 17 of the LCG
                    b.push(Instruction::Alu {
                        op: rev_isa::AluOp::Shr,
                        rd: Reg::R11,
                        rs1: Reg::R10,
                        rs2: Reg::R12,
                    });
                    b.push(Instruction::AndI { rd: Reg::R11, rs: Reg::R11, imm: 1 });
                } else {
                    b.push(Instruction::Li { rd: Reg::R11, imm: 0 });
                    b.push(Instruction::Nop);
                }
                b.branch(BranchCond::Ne, Reg::R11, Reg::R0, skip);
                b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 1 });
                b.bind(skip);
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
                b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
                b.push(Instruction::Halt);
            });
            // R12 = 17 must be set before the loop; do it via injection.
            p.oracle_mut().state_mut().regs[12] = 17;
            let r = p.run(&mut m, 100_000);
            assert_eq!(r.outcome, RunOutcome::Halted);
            (r.stats.cycles, r.stats.mispredict_rate())
        };
        let (fast_cycles, fast_rate) = run(false);
        let (slow_cycles, slow_rate) = run(true);
        assert!(slow_rate > fast_rate + 0.1, "rates {slow_rate} vs {fast_rate}");
        assert!(slow_cycles > fast_cycles, "cycles {slow_cycles} vs {fast_cycles}");
    }

    #[test]
    fn call_ret_predicted_by_ras() {
        let (mut p, mut m) = build_pipeline(|b| {
            let main = b.begin_function("main");
            let top = b.new_label();
            let callee = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 100 });
            b.bind(top);
            b.call(callee);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
            b.end_function(main);
            let f = b.begin_function("callee");
            b.bind(callee);
            b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: 1 });
            b.push(Instruction::Ret);
            b.end_function(f);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(p.oracle().state().reg(Reg::R4), 100);
        assert_eq!(r.stats.committed_branches, 100 + 100 + 100); // call+ret+loop branch
    }

    #[test]
    fn stores_reach_committed_memory_via_monitor() {
        let (mut p, mut m) = build_pipeline(|b| {
            let buf = b.data_zeroed(64);
            b.li_data(Reg::R5, buf);
            b.push(Instruction::Li { rd: Reg::R6, imm: 0xabcd });
            b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 16 });
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 1_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        // Find the data address from the oracle's view and compare.
        let data_addr = {
            // li_data loaded R5.
            p.oracle().state().reg(Reg::R5) + 16
        };
        assert_eq!(m.committed().read_u64(data_addr), 0xabcd);
    }

    #[test]
    fn load_forwards_from_inflight_store() {
        let (mut p, mut m) = build_pipeline(|b| {
            let buf = b.data_zeroed(64);
            b.li_data(Reg::R5, buf);
            b.push(Instruction::Li { rd: Reg::R6, imm: 7 });
            b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 0 });
            b.push(Instruction::Load { rd: Reg::R7, rbase: Reg::R5, off: 0 });
            b.push(Instruction::AddI { rd: Reg::R8, rs: Reg::R7, imm: 1 });
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 1_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(p.oracle().state().reg(Reg::R8), 8);
    }

    #[test]
    fn unique_branch_addresses_counted() {
        let (mut p, mut m) = build_pipeline(|b| {
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 50 });
            b.bind(top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 10_000);
        assert_eq!(r.stats.committed_branches, 50);
        assert_eq!(r.stats.unique_branches(), 1, "one static branch");
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let (mut p, mut m) = build_pipeline(|b| {
                let top = b.new_label();
                b.push(Instruction::Li { rd: Reg::R2, imm: 300 });
                b.push(Instruction::Li { rd: Reg::R10, imm: 99 });
                b.bind(top);
                b.push(Instruction::MulI { rd: Reg::R10, rs: Reg::R10, imm: 6364136 });
                b.push(Instruction::AndI { rd: Reg::R11, rs: Reg::R10, imm: 0xff });
                b.push(Instruction::Store { rs: Reg::R11, rbase: rev_isa::REG_SP, off: -64 });
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
                b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
                b.push(Instruction::Halt);
            });
            let r = p.run(&mut m, 100_000);
            (r.stats.cycles, r.stats.committed_instrs, r.stats.mispredicts)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn wrong_path_instructions_are_fetched_and_squashed() {
        let (mut p, mut m) = build_pipeline(|b| {
            // A loop whose branch alternates taken/not-taken is hard to
            // predict early on, guaranteeing wrong-path fetches.
            let top = b.new_label();
            let skip = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 64 });
            b.bind(top);
            b.push(Instruction::AndI { rd: Reg::R3, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Ne, Reg::R3, Reg::R0, skip);
            b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: 1 });
            b.bind(skip);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert!(r.stats.wrong_path_fetched > 0, "expected wrong-path fetches");
        assert_eq!(p.oracle().state().reg(Reg::R4), 32);
    }
}
