//! The out-of-order pipeline: fetch → decode/rename → dispatch → issue →
//! execute → writeback → commit, with oracle-driven correct-path fetch and
//! real wrong-path fetch along mispredicted paths.

use crate::bpred::{BranchPredictor, PredictorCheckpoint};
use crate::config::CpuConfig;
use crate::monitor::{CommitGate, CommitQuery, ExecMonitor, FetchEvent, StoreCommit, Violation};
use crate::oracle::{DynOp, Oracle};
use crate::stats::CpuStats;
use rev_isa::{decode, FReg, InstrClass, Instruction, Reg, MAX_INSTR_LEN, REG_SP};
use rev_mem::{Hierarchy, MemConfig, Request, Requester};
use rev_trace::{EventKind, TraceBus, TraceEvent};
use std::collections::{HashMap, HashSet, VecDeque};

/// Why a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The committed-instruction budget was reached.
    BudgetReached,
    /// The program executed `halt`.
    Halted,
    /// The monitor reported a validation violation.
    Violation(Violation),
    /// The oracle hit undecodable bytes (control flow escaped into garbage
    /// before any validation boundary could fire).
    OracleFault {
        /// Faulting PC.
        pc: u64,
    },
}

/// Result of [`Pipeline::run`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Counters.
    pub stats: CpuStats,
}

/// Unified integer/FP architectural register id for renaming (0–31 int,
/// 32–63 fp).
fn rid(r: Reg) -> u8 {
    r.index() as u8
}
fn fid(f: FReg) -> u8 {
    32 + f.index() as u8
}

/// Registers read by an instruction (rename sources).
fn reads_of(insn: &Instruction, out: &mut Vec<u8>) {
    out.clear();
    match *insn {
        Instruction::Alu { rs1, rs2, .. } => {
            out.push(rid(rs1));
            out.push(rid(rs2));
        }
        Instruction::AddI { rs, .. }
        | Instruction::AndI { rs, .. }
        | Instruction::XorI { rs, .. }
        | Instruction::MulI { rs, .. }
        | Instruction::Mov { rs, .. } => out.push(rid(rs)),
        Instruction::Fpu { fs1, fs2, .. } => {
            out.push(fid(fs1));
            out.push(fid(fs2));
        }
        Instruction::FMov { fs, .. } => out.push(fid(fs)),
        Instruction::CvtIF { rs, .. } => out.push(rid(rs)),
        Instruction::CvtFI { fs, .. } => out.push(fid(fs)),
        Instruction::Load { rbase, .. } | Instruction::LoadF { rbase, .. } => out.push(rid(rbase)),
        Instruction::Store { rs, rbase, .. } => {
            out.push(rid(rs));
            out.push(rid(rbase));
        }
        Instruction::StoreF { fs, rbase, .. } => {
            out.push(fid(fs));
            out.push(rid(rbase));
        }
        Instruction::Branch { rs1, rs2, .. } => {
            out.push(rid(rs1));
            out.push(rid(rs2));
        }
        Instruction::JmpInd { rt } => out.push(rid(rt)),
        Instruction::CallInd { rt } => {
            out.push(rid(rt));
            out.push(rid(REG_SP));
        }
        Instruction::Call { .. } | Instruction::Ret => out.push(rid(REG_SP)),
        Instruction::Nop
        | Instruction::Halt
        | Instruction::Li { .. }
        | Instruction::Jmp { .. }
        | Instruction::Syscall { .. } => {}
    }
    out.retain(|&r| r != 0); // r0 reads are always ready
}

/// Register written by an instruction (rename destination).
fn write_of(insn: &Instruction) -> Option<u8> {
    match *insn {
        Instruction::Alu { rd, .. }
        | Instruction::AddI { rd, .. }
        | Instruction::AndI { rd, .. }
        | Instruction::XorI { rd, .. }
        | Instruction::MulI { rd, .. }
        | Instruction::Li { rd, .. }
        | Instruction::Mov { rd, .. }
        | Instruction::CvtFI { rd, .. }
        | Instruction::Load { rd, .. } => (rd != Reg::R0).then(|| rid(rd)),
        Instruction::Fpu { fd, .. }
        | Instruction::FMov { fd, .. }
        | Instruction::CvtIF { fd, .. }
        | Instruction::LoadF { fd, .. } => Some(fid(fd)),
        Instruction::Call { .. } | Instruction::CallInd { .. } | Instruction::Ret => {
            Some(rid(REG_SP))
        }
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug, Clone)]
struct Slot {
    seq: u64,
    addr: u64,
    insn: Instruction,
    wrong_path: bool,
    is_boundary: bool,
    stage: Stage,
    dispatch_ready: u64,
    complete_at: u64,
    srcs: Vec<u64>,
    dyn_op: Option<DynOp>,
    mispredicted: bool,
    checkpoint: Option<PredictorCheckpoint>,
    history_at_predict: u64,
    writes_reg: bool,
    recovery_done: bool,
}

impl Slot {
    fn is_load(&self) -> bool {
        matches!(self.insn.class(), InstrClass::Load | InstrClass::Return)
    }

    fn is_store(&self) -> bool {
        matches!(
            self.insn.class(),
            InstrClass::Store | InstrClass::CallDirect | InstrClass::CallIndirect
        )
    }

    fn mem_addr(&self) -> Option<u64> {
        self.dyn_op.and_then(|d| d.mem_addr)
    }
}

/// The out-of-order core.
///
/// Construct with a loaded [`Oracle`] and run against an [`ExecMonitor`].
#[derive(Debug)]
pub struct Pipeline {
    config: CpuConfig,
    oracle: Oracle,
    mem: Hierarchy,
    bpred: BranchPredictor,
    fetch_queue: VecDeque<Slot>,
    rob: VecDeque<Slot>,
    done_set: HashSet<u64>,
    last_writer: [Option<u64>; 64],
    in_flight_writers: usize,
    next_seq: u64,
    now: u64,
    fetch_pc: u64,
    fetch_resume: u64,
    wrong_path_mode: bool,
    wrong_path_stuck: bool,
    fetch_stopped: bool, // oracle halted or faulted
    oracle_fault: Option<u64>,
    cur_line: Option<(u64, u64)>,        // (line addr, ready cycle)
    prefetched_line: Option<(u64, u64)>, // (line addr, prefetch done cycle)
    head_retry_at: u64,
    stats: CpuStats,
    stats_start_cycle: u64,
    trace: TraceBus,
    fpu_free: Vec<u64>,
    alu_free: Vec<u64>,
    reads_buf: Vec<u8>,
}

impl Pipeline {
    /// Creates a pipeline over a ready-to-run oracle.
    pub fn new(config: CpuConfig, mem_config: MemConfig, oracle: Oracle) -> Self {
        let entry = oracle.state().pc;
        Pipeline {
            bpred: BranchPredictor::new(config.predictor),
            fpu_free: vec![0; config.fpu_units],
            alu_free: vec![0; config.alu_units],
            config,
            oracle,
            mem: Hierarchy::new(mem_config),
            fetch_queue: VecDeque::new(),
            rob: VecDeque::new(),
            done_set: HashSet::new(),
            last_writer: [None; 64],
            in_flight_writers: 0,
            next_seq: 1,
            now: 0,
            fetch_pc: entry,
            fetch_resume: 0,
            wrong_path_mode: false,
            wrong_path_stuck: false,
            fetch_stopped: false,
            oracle_fault: None,
            cur_line: None,
            prefetched_line: None,
            head_retry_at: 0,
            stats: CpuStats::default(),
            stats_start_cycle: 0,
            trace: TraceBus::disabled(),
            reads_buf: Vec::with_capacity(4),
        }
    }

    /// Attaches a trace bus: fetch and commit events flow through it, and
    /// the memory hierarchy gets a clone for DRAM-access events.
    pub fn set_trace(&mut self, trace: TraceBus) {
        self.mem.set_trace(trace.clone());
        self.trace = trace;
    }

    /// The memory hierarchy (stats inspection).
    pub fn mem(&self) -> &Hierarchy {
        &self.mem
    }

    /// The oracle (architectural state inspection).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Mutable oracle access (attack injection between cycles).
    pub fn oracle_mut(&mut self) -> &mut Oracle {
        &mut self.oracle
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Clears all statistics (counters restart from zero) without touching
    /// microarchitectural state — ends a cache/predictor warmup phase, the
    /// same methodology as the paper's measurement windows.
    pub fn reset_stats(&mut self) {
        self.stats = CpuStats::default();
        self.stats_start_cycle = self.now;
        self.mem.reset_stats();
    }

    /// Runs until `max_instrs` correct-path instructions commit, the
    /// program halts, or the monitor reports a violation.
    pub fn run<M: ExecMonitor>(&mut self, monitor: &mut M, max_instrs: u64) -> RunResult {
        let mut last_commit_cycle = self.now;
        let mut last_committed = self.stats.committed_instrs;
        loop {
            if let Some(v) = self.cycle(monitor) {
                monitor.on_run_end(&mut self.mem, self.now);
                return RunResult { outcome: RunOutcome::Violation(v), stats: self.stats.clone() };
            }
            if self.stats.committed_instrs != last_committed {
                last_committed = self.stats.committed_instrs;
                last_commit_cycle = self.now;
            }
            if self.stats.committed_instrs >= max_instrs {
                monitor.on_run_end(&mut self.mem, self.now);
                return RunResult { outcome: RunOutcome::BudgetReached, stats: self.stats.clone() };
            }
            if self.pipeline_empty() {
                monitor.on_run_end(&mut self.mem, self.now);
                let outcome = match self.oracle_fault {
                    Some(pc) => RunOutcome::OracleFault { pc },
                    None => RunOutcome::Halted,
                };
                return RunResult { outcome, stats: self.stats.clone() };
            }
            assert!(
                self.now - last_commit_cycle < 1_000_000,
                "pipeline deadlock at cycle {} (head: {:?})",
                self.now,
                self.rob.front().map(|s| (s.seq, s.addr, s.insn, s.stage))
            );
        }
    }

    fn pipeline_empty(&self) -> bool {
        self.fetch_stopped && self.rob.is_empty() && self.fetch_queue.is_empty()
    }

    /// Advances one cycle. Returns a violation if the monitor raised one.
    pub fn cycle<M: ExecMonitor>(&mut self, monitor: &mut M) -> Option<Violation> {
        self.now += 1;
        self.stats.cycles = self.now - self.stats_start_cycle;
        if let Some(v) = self.commit_stage(monitor) {
            return Some(v);
        }
        self.complete_stage(monitor);
        self.issue_stage(monitor);
        self.dispatch_stage();
        self.fetch_stage(monitor);
        None
    }

    // ----- commit ---------------------------------------------------------

    fn commit_stage<M: ExecMonitor>(&mut self, monitor: &mut M) -> Option<Violation> {
        for _ in 0..self.config.width {
            let Some(head) = self.rob.front() else { break };
            debug_assert!(!head.wrong_path, "wrong-path at ROB head");
            if head.stage != Stage::Done || self.now < head.complete_at + 2 {
                break;
            }
            if head.is_store() && !monitor.can_accept_store() {
                self.stats.defer_full_stall_cycles += 1;
                break;
            }
            if head.is_boundary {
                if self.now < self.head_retry_at {
                    self.stats.validation_stall_cycles += 1;
                    break;
                }
                let d = head.dyn_op.expect("correct-path head has oracle info");
                let query = CommitQuery {
                    seq: head.seq,
                    bb_addr: head.addr,
                    cycle: self.now,
                    actual_target: d.next_pc,
                    insn: head.insn,
                };
                match monitor.on_terminator_commit(&mut self.mem, &query) {
                    CommitGate::Proceed => {}
                    CommitGate::StallUntil(c) => {
                        self.head_retry_at = c.max(self.now + 1);
                        self.stats.validation_stall_cycles += 1;
                        break;
                    }
                    CommitGate::Violation(v) => return Some(v),
                }
            }
            let slot = self.rob.pop_front().expect("head exists");
            self.trace.emit_with(|| TraceEvent {
                cycle: self.now,
                kind: EventKind::Commit { seq: slot.seq, addr: slot.addr },
            });
            self.head_retry_at = 0;
            self.done_set.remove(&slot.seq);
            if slot.writes_reg {
                self.in_flight_writers -= 1;
            }
            let d = slot.dyn_op.expect("correct path");
            // Train the predictor with the architectural outcome.
            match slot.insn.class() {
                InstrClass::CondBranch => {
                    self.bpred.update_cond(slot.addr, d.taken, slot.history_at_predict);
                    self.stats.committed_cond_branches += 1;
                    if slot.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                InstrClass::JumpIndirect | InstrClass::CallIndirect => {
                    self.bpred.update_indirect(slot.addr, d.next_pc);
                }
                _ => {}
            }
            if slot.insn.is_bb_terminator() && !matches!(slot.insn, Instruction::Halt) {
                self.stats.committed_branches += 1;
                self.stats.unique_branch_addrs.insert(slot.addr);
            }
            if slot.is_store() {
                monitor.on_store_commit(
                    &mut self.mem,
                    StoreCommit {
                        seq: slot.seq,
                        addr: d.mem_addr.expect("stores have addresses"),
                        value: d.store_value.unwrap_or(0),
                        cycle: self.now,
                    },
                );
            }
            self.stats.committed_instrs += 1;
            self.stats.mix.record(slot.insn.class());
            if d.halted {
                self.fetch_stopped = true;
            }
        }
        None
    }

    // ----- complete / branch resolution -----------------------------------

    fn complete_stage<M: ExecMonitor>(&mut self, monitor: &mut M) {
        let mut recover_from: Option<usize> = None;
        for (i, slot) in self.rob.iter_mut().enumerate() {
            if slot.stage == Stage::Executing && self.now >= slot.complete_at {
                slot.stage = Stage::Done;
                self.done_set.insert(slot.seq);
                if slot.mispredicted && !slot.wrong_path && !slot.recovery_done {
                    slot.recovery_done = true;
                    recover_from = Some(i);
                    break; // the oldest resolving mispredict wins
                }
            }
        }
        if let Some(i) = recover_from {
            self.recover_from_mispredict(i, monitor);
        }
    }

    fn recover_from_mispredict<M: ExecMonitor>(&mut self, rob_idx: usize, monitor: &mut M) {
        let branch_seq = self.rob[rob_idx].seq;
        let actual = self.rob[rob_idx].dyn_op.expect("correct path").next_pc;
        let taken = self.rob[rob_idx].dyn_op.expect("correct path").taken;
        let cp = self.rob[rob_idx].checkpoint;
        let is_cond = matches!(self.rob[rob_idx].insn.class(), InstrClass::CondBranch);

        // Squash everything younger than the branch.
        self.squash_after(branch_seq);
        monitor.on_flush(branch_seq + 1);

        if let Some(cp) = cp {
            self.bpred.restore(cp, is_cond.then_some(taken));
        }
        self.fetch_pc = actual;
        self.fetch_resume = self.now + 1;
        self.wrong_path_mode = false;
        self.wrong_path_stuck = false;
        self.cur_line = None;
    }

    fn squash_after(&mut self, seq: u64) {
        while self.rob.back().map(|s| s.seq > seq).unwrap_or(false) {
            let s = self.rob.pop_back().expect("non-empty");
            if s.writes_reg {
                self.in_flight_writers -= 1;
            }
            if s.wrong_path {
                self.stats.wrong_path_fetched += 1;
            }
            self.done_set.remove(&s.seq);
        }
        for s in self.fetch_queue.drain(..) {
            if s.writes_reg {
                self.in_flight_writers -= 1;
            }
            if s.wrong_path {
                self.stats.wrong_path_fetched += 1;
            }
        }
        // Rebuild the rename map from the survivors.
        self.last_writer = [None; 64];
        let mut rebuilt = [None; 64];
        for s in &self.rob {
            if let Some(w) = write_of(&s.insn) {
                rebuilt[w as usize] = Some(s.seq);
            }
        }
        self.last_writer = rebuilt;
    }

    // ----- issue -----------------------------------------------------------

    fn issue_stage<M: ExecMonitor>(&mut self, monitor: &mut M) {
        let mut issued = 0usize;
        let mut load_used = 0usize;
        let mut store_used = 0usize;
        // Store-address visibility for conservative disambiguation, built
        // in program order as we scan.
        let mut older_store_addr_unknown = false;
        let mut store_by_addr: HashMap<u64, (u64, bool)> = HashMap::new(); // addr -> (seq, done)

        let head_seq = self.rob.front().map(|s| s.seq).unwrap_or(u64::MAX);
        for idx in 0..self.rob.len() {
            if issued >= self.config.width {
                break;
            }
            let (ready, is_load, is_store, mem_addr, wrong_path, class) = {
                let s = &self.rob[idx];
                let ready = s.stage == Stage::Waiting
                    && s.srcs.iter().all(|&p| p < head_seq || self.done_set.contains(&p));
                (ready, s.is_load(), s.is_store(), s.mem_addr(), s.wrong_path, s.insn.class())
            };
            // Track older stores regardless of whether this slot issues.
            let track_store = |map: &mut HashMap<u64, (u64, bool)>, s: &Slot| {
                if let Some(a) = s.mem_addr() {
                    map.insert(a, (s.seq, s.stage == Stage::Done));
                }
            };

            if self.rob[idx].stage != Stage::Waiting {
                if is_store {
                    track_store(&mut store_by_addr, &self.rob[idx]);
                }
                continue;
            }
            if !ready {
                if is_store {
                    older_store_addr_unknown = true;
                }
                continue;
            }

            // Functional-unit availability.
            let complete_at = match class {
                InstrClass::IntAlu
                | InstrClass::CondBranch
                | InstrClass::Jump
                | InstrClass::JumpIndirect
                | InstrClass::Syscall
                | InstrClass::Other => match self.claim_alu() {
                    Some(()) => self.now + 1,
                    None => continue,
                },
                InstrClass::IntMul => match self.claim_alu() {
                    Some(()) => self.now + self.config.mul_latency,
                    None => continue,
                },
                InstrClass::Fp => match self.claim_fpu(1) {
                    Some(()) => self.now + self.config.fp_latency,
                    None => continue,
                },
                InstrClass::FpDiv => match self.claim_fpu(self.config.fpdiv_latency) {
                    Some(()) => self.now + self.config.fpdiv_latency,
                    None => continue,
                },
                InstrClass::Load | InstrClass::Return => {
                    if load_used >= self.config.load_units {
                        continue;
                    }
                    if wrong_path {
                        load_used += 1;
                        self.now + 3 // wrong-path load: no oracle address
                    } else {
                        if older_store_addr_unknown {
                            continue; // conservative disambiguation
                        }
                        let addr = mem_addr.expect("correct-path loads have addresses");
                        if let Some(&(_, done)) = store_by_addr.get(&addr) {
                            if !done {
                                continue; // wait for the forwarding store's data
                            }
                            load_used += 1;
                            self.now + 2 // store-to-load forward
                        } else if monitor.forwards_store(addr) {
                            load_used += 1;
                            self.now + 2 // forward from the deferred buffer
                        } else {
                            load_used += 1;
                            let out = self.mem.data_access(Request {
                                addr,
                                is_write: false,
                                requester: Requester::Data,
                                cycle: self.now,
                            });
                            out.complete_at
                        }
                    }
                }
                InstrClass::Store | InstrClass::CallDirect | InstrClass::CallIndirect => {
                    if store_used >= self.config.store_units {
                        // Ready but port-limited: its address is still
                        // unknown to younger loads this cycle.
                        older_store_addr_unknown = true;
                        continue;
                    }
                    store_used += 1;
                    self.now + 1 // address generation; data written post-commit
                }
            };

            let s = &mut self.rob[idx];
            s.stage = Stage::Executing;
            s.complete_at = complete_at;
            issued += 1;
            if is_store {
                let seq = s.seq;
                if let Some(a) = s.mem_addr() {
                    store_by_addr.insert(a, (seq, false));
                }
            }
            let _ = is_load;
        }
    }

    fn claim_alu(&mut self) -> Option<()> {
        let now = self.now;
        let slot = self.alu_free.iter_mut().find(|f| **f <= now)?;
        *slot = now + 1;
        Some(())
    }

    fn claim_fpu(&mut self, occupy: u64) -> Option<()> {
        let now = self.now;
        let slot = self.fpu_free.iter_mut().find(|f| **f <= now)?;
        *slot = now + occupy;
        Some(())
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch_stage(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.config.width {
            let Some(front) = self.fetch_queue.front() else { break };
            if self.now < front.dispatch_ready {
                break;
            }
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            let iq_occupancy = self.rob.iter().filter(|s| s.stage == Stage::Waiting).count();
            if iq_occupancy >= self.config.iq_size {
                break;
            }
            let lsq_occupancy = self.rob.iter().filter(|s| s.is_load() || s.is_store()).count();
            if (front.is_load() || front.is_store()) && lsq_occupancy >= self.config.lsq_size {
                break;
            }
            if front.writes_reg && self.in_flight_writers + 64 >= self.config.phys_regs {
                break;
            }
            let mut slot = self.fetch_queue.pop_front().expect("front exists");
            // Rename: resolve source producers.
            reads_of(&slot.insn, &mut self.reads_buf);
            slot.srcs =
                self.reads_buf.iter().filter_map(|&r| self.last_writer[r as usize]).collect();
            if let Some(w) = write_of(&slot.insn) {
                self.last_writer[w as usize] = Some(slot.seq);
            }
            slot.stage = Stage::Waiting;
            self.rob.push_back(slot);
            dispatched += 1;
        }
    }

    // ----- fetch -----------------------------------------------------------

    fn fetch_stage<M: ExecMonitor>(&mut self, monitor: &mut M) {
        if self.fetch_stopped || self.wrong_path_stuck || self.now < self.fetch_resume {
            return;
        }
        let line_mask = !(self.mem.config().l1i.line_bytes as u64 - 1);
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= self.config.fetch_queue {
                break;
            }
            // Instruction-cache line availability (with next-line stream
            // prefetch: sequential line fills are overlapped, fills after
            // taken control transfers pay the full miss).
            let line = self.fetch_pc & line_mask;
            match self.cur_line {
                Some((l, ready)) if l == line => {
                    if self.now < ready {
                        break;
                    }
                }
                _ => {
                    let out = self.mem.fetch_access(line, self.now);
                    let mut ready = out.complete_at;
                    if let Some((pl, prdy)) = self.prefetched_line {
                        if pl == line {
                            // The line is resident thanks to the prefetch,
                            // but not usable before the prefetch completes.
                            ready = ready.max(prdy);
                        }
                    }
                    let line_bytes = self.mem.config().l1i.line_bytes as u64;
                    let pf_done = self.mem.prefetch_line(line + line_bytes, self.now);
                    self.prefetched_line = Some((line + line_bytes, pf_done));
                    self.cur_line = Some((line, ready));
                    if self.now < ready {
                        self.fetch_resume = ready;
                        break;
                    }
                }
            }

            // Obtain the instruction: oracle step (correct path) or raw
            // decode (wrong path).
            let (insn, len, dyn_op) = if self.wrong_path_mode {
                let bytes = self.oracle.mem().read_bytes(self.fetch_pc, MAX_INSTR_LEN);
                match decode(&bytes) {
                    Ok((insn, len)) => (insn, len as u8, None),
                    Err(_) => {
                        // Wrong-path fetch ran into garbage: stall until
                        // the mispredict resolves.
                        self.wrong_path_stuck = true;
                        break;
                    }
                }
            } else {
                match self.oracle.step() {
                    Ok(op) => (op.insn, op.len, Some(op)),
                    Err(e) => {
                        let crate::oracle::OracleError::IllegalInstruction { pc } = e;
                        self.oracle_fault = Some(pc);
                        self.fetch_stopped = true;
                        break;
                    }
                }
            };
            let addr = self.fetch_pc;
            let fall_through = addr + len as u64;

            // Predict the next fetch address.
            let mut checkpoint = None;
            let mut history_at_predict = self.bpred.history();
            let predicted_next = match insn {
                Instruction::Branch { disp, .. } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    history_at_predict = self.bpred.history();
                    let predicted_taken = self.bpred.predict_cond(addr);
                    // Speculative history: actual outcome on the correct
                    // path (known from the oracle), prediction otherwise.
                    let history_bit = match &dyn_op {
                        Some(d) => d.taken,
                        None => predicted_taken,
                    };
                    self.bpred.push_history(history_bit);
                    if predicted_taken {
                        fall_through.wrapping_add(disp as i64 as u64)
                    } else {
                        fall_through
                    }
                }
                Instruction::Jmp { disp } => fall_through.wrapping_add(disp as i64 as u64),
                Instruction::Call { disp } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.ras_push(fall_through);
                    fall_through.wrapping_add(disp as i64 as u64)
                }
                Instruction::JmpInd { .. } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.predict_indirect(addr).unwrap_or(fall_through)
                }
                Instruction::CallInd { .. } => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.ras_push(fall_through);
                    self.bpred.predict_indirect(addr).unwrap_or(fall_through)
                }
                Instruction::Ret => {
                    checkpoint = Some(self.bpred.checkpoint());
                    self.bpred.ras_pop().unwrap_or(fall_through)
                }
                Instruction::Halt => addr,
                _ => fall_through,
            };

            let mispredicted = match &dyn_op {
                Some(d) => !d.halted && predicted_next != d.next_pc,
                None => false,
            };

            let mut bytes = [0u8; MAX_INSTR_LEN];
            let raw = self.oracle.mem().read_bytes(addr, len as usize);
            bytes[..len as usize].copy_from_slice(&raw);

            let seq = self.next_seq;
            self.next_seq += 1;
            let event = FetchEvent {
                seq,
                addr,
                insn,
                bytes,
                len,
                cycle: self.now,
                predicted_next,
                wrong_path: self.wrong_path_mode,
            };
            self.trace.emit_with(|| TraceEvent {
                cycle: self.now,
                kind: EventKind::Fetch { seq, addr, wrong_path: self.wrong_path_mode },
            });
            let is_boundary = monitor.on_fetch(&mut self.mem, &event);

            self.fetch_queue.push_back(Slot {
                seq,
                addr,
                insn,
                wrong_path: self.wrong_path_mode,
                is_boundary,
                stage: Stage::Waiting,
                dispatch_ready: self.now + self.config.frontend_depth,
                complete_at: 0,
                srcs: Vec::new(),
                dyn_op,
                mispredicted,
                checkpoint,
                history_at_predict,
                writes_reg: write_of(&insn).is_some(),
                recovery_done: false,
            });
            if write_of(&insn).is_some() {
                self.in_flight_writers += 1;
            }

            if let Some(d) = &dyn_op {
                if d.halted {
                    self.fetch_stopped = true;
                    break;
                }
            }
            if mispredicted {
                self.wrong_path_mode = true;
            }
            self.fetch_pc = predicted_next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullMonitor;
    use rev_isa::BranchCond;
    use rev_mem::MainMemory;
    use rev_prog::{ModuleBuilder, Program};

    fn build_pipeline<F: FnOnce(&mut ModuleBuilder)>(f: F) -> (Pipeline, NullMonitor) {
        let mut b = ModuleBuilder::new("t", 0x1000);
        f(&mut b);
        let m = b.finish().unwrap();
        let mut pb = Program::builder();
        pb.module(m);
        let p = pb.build();
        let mem = MainMemory::with_segments(&p.segments());
        let monitor = NullMonitor::new(mem.clone());
        let oracle = Oracle::new(mem, p.entry(), p.initial_sp());
        (Pipeline::new(CpuConfig::paper_default(), MemConfig::paper_default(), oracle), monitor)
    }

    #[test]
    fn straight_line_commits_all() {
        let (mut p, mut m) = build_pipeline(|b| {
            for i in 0..20 {
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: i });
            }
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 1_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(r.stats.committed_instrs, 21);
        assert!(r.stats.cycles >= 16, "min fetch-to-commit depth");
    }

    #[test]
    fn ipc_exceeds_one_on_ilp() {
        let (mut p, mut m) = build_pipeline(|b| {
            // A loop of independent adds on distinct registers: once the
            // I-cache warms, both ALUs should stay busy.
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R30, imm: 300 });
            b.bind(top);
            for i in 0..16 {
                let rd = Reg::from_index(1 + (i % 16) as u8).unwrap();
                b.push(Instruction::AddI { rd, rs: Reg::R0, imm: i });
            }
            b.push(Instruction::AddI { rd: Reg::R20, rs: Reg::R20, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R20, Reg::R30, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert!(r.stats.ipc() > 1.0, "ipc {} should exceed 1", r.stats.ipc());
    }

    #[test]
    fn dependent_chain_is_serial() {
        let (mut p, mut m) = build_pipeline(|b| {
            for _ in 0..200 {
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            }
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 10_000);
        assert!(r.stats.ipc() <= 1.05, "serial chain ipc {} must be ~1", r.stats.ipc());
        assert_eq!(p.oracle().state().reg(Reg::R1), 200, "functional result intact");
    }

    #[test]
    fn loop_with_predictable_branch() {
        let (mut p, mut m) = build_pipeline(|b| {
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 200 });
            b.bind(top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 2 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(r.stats.committed_cond_branches, 200);
        // Loop branch should become nearly perfectly predicted.
        assert!(r.stats.mispredict_rate() < 0.10, "mispredict rate {}", r.stats.mispredict_rate());
        assert_eq!(p.oracle().state().reg(Reg::R3), 400);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch (LCG bit) vs an
        // always-taken one: the former must run slower.
        let run = |chaotic: bool| {
            let (mut p, mut m) = build_pipeline(|b| {
                let top = b.new_label();
                let skip = b.new_label();
                b.push(Instruction::Li { rd: Reg::R2, imm: 400 });
                b.push(Instruction::Li { rd: Reg::R10, imm: 12345 });
                b.bind(top);
                b.push(Instruction::MulI { rd: Reg::R10, rs: Reg::R10, imm: 1103515245 });
                b.push(Instruction::AddI { rd: Reg::R10, rs: Reg::R10, imm: 12345 });
                if chaotic {
                    // test bit 17 of the LCG
                    b.push(Instruction::Alu {
                        op: rev_isa::AluOp::Shr,
                        rd: Reg::R11,
                        rs1: Reg::R10,
                        rs2: Reg::R12,
                    });
                    b.push(Instruction::AndI { rd: Reg::R11, rs: Reg::R11, imm: 1 });
                } else {
                    b.push(Instruction::Li { rd: Reg::R11, imm: 0 });
                    b.push(Instruction::Nop);
                }
                b.branch(BranchCond::Ne, Reg::R11, Reg::R0, skip);
                b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 1 });
                b.bind(skip);
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
                b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
                b.push(Instruction::Halt);
            });
            // R12 = 17 must be set before the loop; do it via injection.
            p.oracle_mut().state_mut().regs[12] = 17;
            let r = p.run(&mut m, 100_000);
            assert_eq!(r.outcome, RunOutcome::Halted);
            (r.stats.cycles, r.stats.mispredict_rate())
        };
        let (fast_cycles, fast_rate) = run(false);
        let (slow_cycles, slow_rate) = run(true);
        assert!(slow_rate > fast_rate + 0.1, "rates {slow_rate} vs {fast_rate}");
        assert!(slow_cycles > fast_cycles, "cycles {slow_cycles} vs {fast_cycles}");
    }

    #[test]
    fn call_ret_predicted_by_ras() {
        let (mut p, mut m) = build_pipeline(|b| {
            let main = b.begin_function("main");
            let top = b.new_label();
            let callee = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 100 });
            b.bind(top);
            b.call(callee);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
            b.end_function(main);
            let f = b.begin_function("callee");
            b.bind(callee);
            b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: 1 });
            b.push(Instruction::Ret);
            b.end_function(f);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(p.oracle().state().reg(Reg::R4), 100);
        assert_eq!(r.stats.committed_branches, 100 + 100 + 100); // call+ret+loop branch
    }

    #[test]
    fn stores_reach_committed_memory_via_monitor() {
        let (mut p, mut m) = build_pipeline(|b| {
            let buf = b.data_zeroed(64);
            b.li_data(Reg::R5, buf);
            b.push(Instruction::Li { rd: Reg::R6, imm: 0xabcd });
            b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 16 });
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 1_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        // Find the data address from the oracle's view and compare.
        let data_addr = {
            // li_data loaded R5.
            p.oracle().state().reg(Reg::R5) + 16
        };
        assert_eq!(m.committed().read_u64(data_addr), 0xabcd);
    }

    #[test]
    fn load_forwards_from_inflight_store() {
        let (mut p, mut m) = build_pipeline(|b| {
            let buf = b.data_zeroed(64);
            b.li_data(Reg::R5, buf);
            b.push(Instruction::Li { rd: Reg::R6, imm: 7 });
            b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 0 });
            b.push(Instruction::Load { rd: Reg::R7, rbase: Reg::R5, off: 0 });
            b.push(Instruction::AddI { rd: Reg::R8, rs: Reg::R7, imm: 1 });
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 1_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(p.oracle().state().reg(Reg::R8), 8);
    }

    #[test]
    fn unique_branch_addresses_counted() {
        let (mut p, mut m) = build_pipeline(|b| {
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 50 });
            b.bind(top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 10_000);
        assert_eq!(r.stats.committed_branches, 50);
        assert_eq!(r.stats.unique_branches(), 1, "one static branch");
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let (mut p, mut m) = build_pipeline(|b| {
                let top = b.new_label();
                b.push(Instruction::Li { rd: Reg::R2, imm: 300 });
                b.push(Instruction::Li { rd: Reg::R10, imm: 99 });
                b.bind(top);
                b.push(Instruction::MulI { rd: Reg::R10, rs: Reg::R10, imm: 6364136 });
                b.push(Instruction::AndI { rd: Reg::R11, rs: Reg::R10, imm: 0xff });
                b.push(Instruction::Store { rs: Reg::R11, rbase: rev_isa::REG_SP, off: -64 });
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
                b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
                b.push(Instruction::Halt);
            });
            let r = p.run(&mut m, 100_000);
            (r.stats.cycles, r.stats.committed_instrs, r.stats.mispredicts)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn wrong_path_instructions_are_fetched_and_squashed() {
        let (mut p, mut m) = build_pipeline(|b| {
            // A loop whose branch alternates taken/not-taken is hard to
            // predict early on, guaranteeing wrong-path fetches.
            let top = b.new_label();
            let skip = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 64 });
            b.bind(top);
            b.push(Instruction::AndI { rd: Reg::R3, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Ne, Reg::R3, Reg::R0, skip);
            b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: 1 });
            b.bind(skip);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        let r = p.run(&mut m, 100_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert!(r.stats.wrong_path_fetched > 0, "expected wrong-path fetches");
        assert_eq!(p.oracle().state().reg(Reg::R4), 32);
    }
}
