//! # rev-cpu — the out-of-order core under REV
//!
//! An execution-driven, cycle-level model of the paper's Table 2 machine:
//!
//! * 4-wide fetch/dispatch/issue/commit, 32-entry fetch queue,
//! * 128-entry ROB, 92-entry LSQ, 256-register unified physical file,
//! * 2 ALU + 2 FPU + 2 load + 2 store functional units,
//! * 32K-counter gshare + 4K-entry BTB + return address stack,
//! * a front-end depth of 16 cycles from fetch to earliest commit — the
//!   `S` that the CHG's hash latency `H` must not exceed (paper Sec. VI).
//!
//! Execution is **oracle-driven**: a functional engine ([`Oracle`]) steps
//! the program along the architecturally correct path; the timing model
//! fetches along the *predicted* path, so wrong-path instructions are
//! fetched (from the real memory image), occupy resources, pollute the
//! CHG/SC, and are squashed on branch resolution — the behaviors REV's
//! post-commit validation must tolerate (paper requirement R6).
//!
//! REV attaches through the [`ExecMonitor`] trait: the pipeline reports
//! fetched instructions (for CHG hashing, BB-boundary tracking, SC
//! prefetch), asks permission for BB-terminator commits (validation gate),
//! hands over committed stores (deferred-update containment) and reports
//! flushes. A [`NullMonitor`] yields the baseline machine.

mod bpred;
mod config;
mod monitor;
mod oracle;
mod pipeline;
mod stats;

pub use bpred::{BranchPredictor, PredictorConfig};
pub use config::CpuConfig;
pub use monitor::{
    CommitGate, CommitQuery, ExecMonitor, FetchEvent, NullMonitor, StoreCommit, Violation,
    ViolationKind,
};
pub use oracle::{ArchState, DynOp, Oracle, OracleError};
pub use pipeline::{Pipeline, RunOutcome, RunResult};
pub use stats::{CpuStats, InstrMix};
