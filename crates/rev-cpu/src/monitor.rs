//! The attachment point for REV (or any execution monitor).
//!
//! The pipeline reports front-end and commit events; the monitor decides
//! basic-block boundaries, gates terminator commits (validation stalls),
//! takes custody of committed stores (deferred memory update), and reacts
//! to squashes. [`NullMonitor`] is the unmodified baseline core: stores
//! write straight to committed memory and nothing ever stalls.

use rev_isa::{Instruction, MAX_INSTR_LEN};
use rev_mem::{Hierarchy, MainMemory};
use std::fmt;

/// A fetched instruction, reported in fetch order (including wrong-path
/// instructions, which are later flushed).
#[derive(Debug, Clone, Copy)]
pub struct FetchEvent {
    /// Global fetch sequence number (monotone; wrong-path included).
    pub seq: u64,
    /// Instruction address.
    pub addr: u64,
    /// The decoded instruction.
    pub insn: Instruction,
    /// Raw encoded bytes (`len` of them) — the CHG's hash input.
    pub bytes: [u8; MAX_INSTR_LEN],
    /// Encoded length.
    pub len: u8,
    /// Fetch cycle.
    pub cycle: u64,
    /// Address the front end will fetch next (predicted path).
    pub predicted_next: u64,
    /// `true` if this instruction is beyond an unresolved misprediction.
    pub wrong_path: bool,
}

impl FetchEvent {
    /// The instruction's encoded bytes.
    pub fn byte_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }
}

/// A BB-terminator instruction at the ROB head asking to commit.
#[derive(Debug, Clone, Copy)]
pub struct CommitQuery {
    /// Fetch sequence number of the committing instruction.
    pub seq: u64,
    /// Its address — the BB address used for the SC probe.
    pub bb_addr: u64,
    /// Current cycle.
    pub cycle: u64,
    /// The architecturally actual transfer target (next PC).
    pub actual_target: u64,
    /// The committing instruction.
    pub insn: Instruction,
}

/// Monitor's verdict on a terminator commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitGate {
    /// Commit may proceed this cycle.
    Proceed,
    /// Commit must wait; re-query at the given cycle (SC miss service,
    /// CHG latency, spill fetch...).
    StallUntil(u64),
    /// Validation failed: raise the REV exception and stop.
    Violation(Violation),
}

/// Why validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// No reference entry digest-matched the executed block (code was
    /// modified, or control entered a block unknown to static analysis).
    HashMismatch,
    /// The computed branch/return transferred to an address not in the
    /// reference target set.
    IllegalTarget,
    /// A block entered via return did not list the latched return
    /// instruction among its predecessors.
    ReturnMismatch,
    /// No signature table covers the executing address (SAG limit check
    /// failed).
    NoTable,
    /// The in-RAM signature table failed to parse after decryption
    /// (tampering).
    TableCorrupt,
    /// A deferred store failed its parity check at release (the
    /// post-commit buffer was corrupted between commit and validation).
    ParityError,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::HashMismatch => "basic-block hash mismatch",
            ViolationKind::IllegalTarget => "illegal computed-branch target",
            ViolationKind::ReturnMismatch => "return-address validation failed",
            ViolationKind::NoTable => "no signature table for executing module",
            ViolationKind::TableCorrupt => "signature table corrupt",
            ViolationKind::ParityError => "deferred-store buffer parity error",
        };
        f.write_str(s)
    }
}

/// A validation failure report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Failure class.
    pub kind: ViolationKind,
    /// BB address of the offending block.
    pub bb_addr: u64,
    /// The actual transfer target observed.
    pub actual_target: u64,
    /// Cycle of detection.
    pub cycle: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REV violation at BB {:#x} (target {:#x}, cycle {}): {}",
            self.bb_addr, self.actual_target, self.cycle, self.kind
        )
    }
}

/// A store handed over at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCommit {
    /// Fetch sequence number.
    pub seq: u64,
    /// Effective address.
    pub addr: u64,
    /// 64-bit store value.
    pub value: u64,
    /// Commit cycle.
    pub cycle: u64,
}

/// Hooks the pipeline calls into. See the crate docs for the call protocol.
pub trait ExecMonitor {
    /// An instruction was fetched. Return `true` if the monitor designates
    /// it a basic-block boundary whose commit must be gated (control-flow
    /// terminators and artificial split points).
    fn on_fetch(&mut self, mem: &mut Hierarchy, event: &FetchEvent) -> bool;

    /// All instructions with `seq >= from_seq` were squashed.
    fn on_flush(&mut self, from_seq: u64);

    /// A boundary instruction at the ROB head wants to commit.
    fn on_terminator_commit(&mut self, mem: &mut Hierarchy, query: &CommitQuery) -> CommitGate;

    /// A store (or call push) reached commit. The monitor owns committed
    /// memory and decides when the value becomes architectural.
    fn on_store_commit(&mut self, mem: &mut Hierarchy, store: StoreCommit);

    /// Whether the monitor's deferred-store buffers can accept another
    /// store (the post-commit store-queue extension back-pressure).
    fn can_accept_store(&self) -> bool {
        true
    }

    /// Whether a load at `addr` would forward from a deferred (committed
    /// but unvalidated) store.
    fn forwards_store(&self, addr: u64) -> bool {
        let _ = addr;
        false
    }

    /// The run ended (budget, halt, or violation); flush any terminal
    /// state (e.g. release remaining validated stores).
    fn on_run_end(&mut self, mem: &mut Hierarchy, cycle: u64) {
        let _ = (mem, cycle);
    }
}

/// The baseline (no REV) monitor: BB boundaries are never gated and stores
/// commit directly to its committed-memory image.
#[derive(Debug)]
pub struct NullMonitor {
    committed: MainMemory,
}

impl NullMonitor {
    /// Creates a baseline monitor whose committed state starts from the
    /// loaded program image.
    pub fn new(initial: MainMemory) -> Self {
        NullMonitor { committed: initial }
    }

    /// The committed memory image.
    pub fn committed(&self) -> &MainMemory {
        &self.committed
    }

    /// Mutable committed memory (external/attack writes).
    pub fn committed_mut(&mut self) -> &mut MainMemory {
        &mut self.committed
    }
}

impl ExecMonitor for NullMonitor {
    fn on_fetch(&mut self, _mem: &mut Hierarchy, event: &FetchEvent) -> bool {
        event.insn.is_bb_terminator()
    }

    fn on_flush(&mut self, _from_seq: u64) {}

    fn on_terminator_commit(&mut self, _mem: &mut Hierarchy, _query: &CommitQuery) -> CommitGate {
        CommitGate::Proceed
    }

    fn on_store_commit(&mut self, mem: &mut Hierarchy, store: StoreCommit) {
        // The baseline drains stores straight to memory (one cache write).
        mem.data_access(rev_mem::Request {
            addr: store.addr,
            is_write: true,
            requester: rev_mem::Requester::Data,
            cycle: store.cycle,
        });
        self.committed.write_u64(store.addr, store.value);
    }
}
