//! The functional (oracle) execution engine.
//!
//! Executes the program architecturally, one instruction at a time, against
//! the *live* memory image — so run-time attacks that rewrite code bytes or
//! clobber return addresses genuinely divert the oracle's control flow, and
//! REV's job is to catch the divergence. The timing pipeline consumes the
//! oracle's [`DynOp`] stream for correct-path instructions and reads raw
//! bytes for wrong-path fetch; each consumed op surfaces as a `Fetch`
//! (and later `Commit`) trace event when the pipeline's `TraceBus` is
//! enabled (see `docs/METRICS.md`).

use rev_isa::{decode, Instruction, Reg, REG_SP};
use rev_mem::MainMemory;
use std::fmt;

/// Architectural register state.
#[derive(Debug, Clone)]
pub struct ArchState {
    /// Integer registers (`r0` reads as zero).
    pub regs: [u64; 32],
    /// Floating-point registers.
    pub fregs: [f64; 32],
    /// Program counter.
    pub pc: u64,
}

impl ArchState {
    /// Fresh state with `pc` at `entry` and `sp` at `sp`.
    pub fn new(entry: u64, sp: u64) -> Self {
        let mut s = ArchState { regs: [0; 32], fregs: [0.0; 32], pc: entry };
        s.regs[REG_SP.index()] = sp;
        s
    }

    /// Reads an integer register (`r0` is hardwired zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r == Reg::R0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an integer register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }
}

/// One architecturally executed instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynOp {
    /// Instruction address.
    pub addr: u64,
    /// The instruction.
    pub insn: Instruction,
    /// Encoded length in bytes.
    pub len: u8,
    /// Architecturally correct next PC.
    pub next_pc: u64,
    /// For conditional branches, whether the branch was taken.
    pub taken: bool,
    /// Effective address of the memory access, if any (includes the stack
    /// push of calls and pop of returns).
    pub mem_addr: Option<u64>,
    /// Value stored, for memory-writing instructions.
    pub store_value: Option<u64>,
    /// `true` if this instruction halted the machine.
    pub halted: bool,
}

/// Functional execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// Bytes at `pc` did not decode (e.g. control flow jumped into data or
    /// clobbered code).
    IllegalInstruction {
        /// Faulting PC.
        pc: u64,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::IllegalInstruction { pc } => {
                write!(f, "illegal instruction at {pc:#x}")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// Slot count of the direct-mapped decode memo (index = low PC bits);
/// must be a power of two. 8 Ki slots cover the modeled code footprints
/// with an indexed load instead of a hash probe on the per-fetch path.
const DEC_SLOTS: usize = 8192;

/// One memoized fetch+decode: the tag PC (`u64::MAX` = empty), the
/// instruction, its encoded length, and the fetch bytes exactly as a
/// fresh read-plus-tail-zero would produce them (only `bytes[..len]`
/// carries semantics; the tail is zeroed at fill so replays are
/// byte-identical to the uncached path).
#[derive(Debug, Clone, Copy)]
struct DecEntry {
    pc: u64,
    len: u8,
    insn: Instruction,
    bytes: [u8; rev_isa::MAX_INSTR_LEN],
}

impl DecEntry {
    const EMPTY: DecEntry = DecEntry {
        pc: u64::MAX,
        len: 0,
        insn: Instruction::Nop,
        bytes: [0; rev_isa::MAX_INSTR_LEN],
    };
}

/// The oracle: architectural state + live memory.
#[derive(Debug, Clone)]
pub struct Oracle {
    state: ArchState,
    mem: MainMemory,
    halted: bool,
    executed: u64,
    /// Direct-mapped PC → decoded-instruction memo for the fetch hot
    /// path. Purely a simulator-performance cache: it is bypassed
    /// entirely while a fault injector is attached (in-flight corruption
    /// and site-visit counting must see every read), cleared whenever
    /// [`Oracle::mem_mut`] hands out mutable memory (external writes —
    /// SMC attacks, DMA, table placement), and cleared when the oracle's
    /// own stores land inside the cached code range.
    dec_cache: Vec<DecEntry>,
    /// `[lo, hi)` union of `pc..pc+len` over cached entries — the
    /// store-invalidation fast-reject bound. `(u64::MAX, 0)` when empty.
    dec_bounds: (u64, u64),
}

impl Oracle {
    /// Creates an oracle at `entry` with stack pointer `sp` over `mem`.
    pub fn new(mem: MainMemory, entry: u64, sp: u64) -> Self {
        Oracle {
            state: ArchState::new(entry, sp),
            mem,
            halted: false,
            executed: 0,
            dec_cache: vec![DecEntry::EMPTY; DEC_SLOTS],
            dec_bounds: (u64::MAX, 0),
        }
    }

    /// Current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable architectural state (used by attack injectors that model
    /// register-clobbering exploits; normal operation never needs this).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// The live memory image.
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable live memory (attack injection, table loading). Drops the
    /// decode memo: the caller may rewrite code bytes the memo pinned.
    pub fn mem_mut(&mut self) -> &mut MainMemory {
        self.clear_dec_cache();
        &mut self.mem
    }

    fn clear_dec_cache(&mut self) {
        self.dec_cache.fill(DecEntry::EMPTY);
        self.dec_bounds = (u64::MAX, 0);
    }

    /// Invalidates the decode memo if an 8-byte store at `addr` could
    /// overlap any cached instruction's bytes. Stores land in data/stack
    /// pages in any well-formed run, so the bound check almost always
    /// rejects in two compares; self-modifying code pays a full refill.
    #[inline]
    fn note_store(&mut self, addr: u64) {
        let (lo, hi) = self.dec_bounds;
        if addr + 8 > lo && addr < hi {
            self.clear_dec_cache();
        }
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Serializes architectural state and the live memory image. The
    /// decode memo is a simulator-performance cache and is *not* saved —
    /// a restored oracle refills it cold, which is functionally
    /// invisible (memoized replays are byte-identical to fresh fetches).
    pub fn save_state(&self, w: &mut rev_trace::CkptWriter) {
        for &r in &self.state.regs {
            w.u64(r);
        }
        for &f in &self.state.fregs {
            w.f64(f);
        }
        w.u64(self.state.pc);
        w.bool(self.halted);
        w.u64(self.executed);
        self.mem.save_state(w);
    }

    /// Restores state saved by [`Oracle::save_state`]. The decode memo
    /// restarts cold.
    ///
    /// # Errors
    ///
    /// Returns [`rev_trace::CkptError`] on decode failure.
    pub fn restore_state(
        &mut self,
        r: &mut rev_trace::CkptReader<'_>,
    ) -> Result<(), rev_trace::CkptError> {
        for reg in &mut self.state.regs {
            *reg = r.u64()?;
        }
        for freg in &mut self.state.fregs {
            *freg = r.f64()?;
        }
        self.state.pc = r.u64()?;
        self.halted = r.bool()?;
        self.executed = r.u64()?;
        self.mem.restore_state(r)?;
        self.clear_dec_cache();
        Ok(())
    }

    /// Number of instructions executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::IllegalInstruction`] if the bytes at the PC
    /// do not decode.
    pub fn step(&mut self) -> Result<DynOp, OracleError> {
        let mut bytes = [0u8; rev_isa::MAX_INSTR_LEN];
        self.step_fetched(&mut bytes)
    }

    /// Executes one instruction, exposing the code bytes it fetched in
    /// `bytes` (so a caller that also needs the raw encoding — the
    /// pipeline's fetch event — avoids a second memory read).
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::IllegalInstruction`] if the bytes at the PC
    /// do not decode.
    pub fn step_fetched(
        &mut self,
        bytes: &mut [u8; rev_isa::MAX_INSTR_LEN],
    ) -> Result<DynOp, OracleError> {
        let pc = self.state.pc;
        let faulted = self.mem.fault_enabled();
        let slot = (pc as usize) & (DEC_SLOTS - 1);
        let e = &self.dec_cache[slot];
        let (insn, len) = if !faulted && e.pc == pc {
            *bytes = e.bytes;
            (e.insn, e.len as usize)
        } else {
            self.mem.read_filtered(pc, bytes);
            let (insn, len) =
                decode(&bytes[..]).map_err(|_| OracleError::IllegalInstruction { pc })?;
            if !faulted {
                // Pin the post-zeroing byte image so a memo replay is
                // indistinguishable from this fresh fetch.
                let mut pinned = *bytes;
                for b in &mut pinned[len..] {
                    *b = 0;
                }
                self.dec_cache[slot] = DecEntry { pc, len: len as u8, insn, bytes: pinned };
                self.dec_bounds.0 = self.dec_bounds.0.min(pc);
                self.dec_bounds.1 = self.dec_bounds.1.max(pc + len as u64);
            }
            (insn, len)
        };
        let next_seq = pc + len as u64;
        let mut op = DynOp {
            addr: pc,
            insn,
            len: len as u8,
            next_pc: next_seq,
            taken: false,
            mem_addr: None,
            store_value: None,
            halted: false,
        };
        let s = &mut self.state;
        match insn {
            Instruction::Nop => {}
            Instruction::Halt => {
                self.halted = true;
                op.halted = true;
                op.next_pc = pc; // stay
            }
            Instruction::Alu { op: aop, rd, rs1, rs2 } => {
                let v = aop.eval(s.reg(rs1), s.reg(rs2));
                s.set_reg(rd, v);
            }
            Instruction::AddI { rd, rs, imm } => {
                s.set_reg(rd, s.reg(rs).wrapping_add(imm as i64 as u64));
            }
            Instruction::AndI { rd, rs, imm } => {
                s.set_reg(rd, s.reg(rs) & (imm as i64 as u64));
            }
            Instruction::XorI { rd, rs, imm } => {
                s.set_reg(rd, s.reg(rs) ^ (imm as i64 as u64));
            }
            Instruction::MulI { rd, rs, imm } => {
                s.set_reg(rd, s.reg(rs).wrapping_mul(imm as i64 as u64));
            }
            Instruction::Li { rd, imm } => s.set_reg(rd, imm),
            Instruction::Mov { rd, rs } => {
                let v = s.reg(rs);
                s.set_reg(rd, v);
            }
            Instruction::Fpu { op: fop, fd, fs1, fs2 } => {
                s.fregs[fd.index()] = fop.eval(s.fregs[fs1.index()], s.fregs[fs2.index()]);
            }
            Instruction::FMov { fd, fs } => s.fregs[fd.index()] = s.fregs[fs.index()],
            Instruction::CvtIF { fd, rs } => s.fregs[fd.index()] = s.reg(rs) as i64 as f64,
            Instruction::CvtFI { rd, fs } => {
                let v = s.fregs[fs.index()] as i64 as u64;
                s.set_reg(rd, v);
            }
            Instruction::Load { rd, rbase, off } => {
                let addr = s.reg(rbase).wrapping_add(off as i64 as u64);
                op.mem_addr = Some(addr);
                let v = self.mem.read_u64(addr);
                s.set_reg(rd, v);
            }
            Instruction::Store { rs, rbase, off } => {
                let addr = s.reg(rbase).wrapping_add(off as i64 as u64);
                let v = s.reg(rs);
                op.mem_addr = Some(addr);
                op.store_value = Some(v);
                self.mem.write_u64(addr, v);
            }
            Instruction::LoadF { fd, rbase, off } => {
                let addr = s.reg(rbase).wrapping_add(off as i64 as u64);
                op.mem_addr = Some(addr);
                s.fregs[fd.index()] = f64::from_bits(self.mem.read_u64(addr));
            }
            Instruction::StoreF { fs, rbase, off } => {
                let addr = s.reg(rbase).wrapping_add(off as i64 as u64);
                let v = s.fregs[fs.index()].to_bits();
                op.mem_addr = Some(addr);
                op.store_value = Some(v);
                self.mem.write_u64(addr, v);
            }
            Instruction::Branch { cond, rs1, rs2, disp } => {
                op.taken = cond.eval(s.reg(rs1), s.reg(rs2));
                if op.taken {
                    op.next_pc = next_seq.wrapping_add(disp as i64 as u64);
                }
            }
            Instruction::Jmp { disp } => {
                op.next_pc = next_seq.wrapping_add(disp as i64 as u64);
            }
            Instruction::Call { disp } => {
                let sp = s.reg(REG_SP).wrapping_sub(8);
                s.set_reg(REG_SP, sp);
                self.mem.write_u64(sp, next_seq);
                op.mem_addr = Some(sp);
                op.store_value = Some(next_seq);
                op.next_pc = next_seq.wrapping_add(disp as i64 as u64);
            }
            Instruction::CallInd { rt } => {
                let target = s.reg(rt);
                let sp = s.reg(REG_SP).wrapping_sub(8);
                s.set_reg(REG_SP, sp);
                self.mem.write_u64(sp, next_seq);
                op.mem_addr = Some(sp);
                op.store_value = Some(next_seq);
                op.next_pc = target;
            }
            Instruction::JmpInd { rt } => {
                op.next_pc = s.reg(rt);
            }
            Instruction::Ret => {
                let sp = s.reg(REG_SP);
                let ret = self.mem.read_u64(sp);
                s.set_reg(REG_SP, sp.wrapping_add(8));
                op.mem_addr = Some(sp);
                op.next_pc = ret;
            }
            Instruction::Syscall { .. } => {
                // Modeled as a validated no-op boundary (kernel execution
                // itself would be validated with the kernel module's table).
            }
        }
        // Every memory-writing arm (stores, call pushes) set `store_value`:
        // check the one written address against the decode memo's bounds.
        if op.store_value.is_some() {
            if let Some(addr) = op.mem_addr {
                self.note_store(addr);
            }
        }
        self.state.pc = op.next_pc;
        if !op.halted {
            self.executed += 1;
        }
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_isa::{AluOp, BranchCond};
    use rev_prog::{ModuleBuilder, Program};

    fn run_program<F: FnOnce(&mut ModuleBuilder)>(build: F) -> (Oracle, Vec<DynOp>) {
        let mut b = ModuleBuilder::new("t", 0x1000);
        build(&mut b);
        let m = b.finish().unwrap();
        let mut pb = Program::builder();
        pb.module(m);
        let p = pb.build();
        let mem = MainMemory::with_segments(&p.segments());
        let mut oracle = Oracle::new(mem, p.entry(), p.initial_sp());
        let mut ops = Vec::new();
        for _ in 0..1000 {
            let op = oracle.step().unwrap();
            let halted = op.halted;
            ops.push(op);
            if halted {
                break;
            }
        }
        (oracle, ops)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (oracle, ops) = run_program(|b| {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 40 });
            b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R1, imm: 2 });
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R2), 42);
        assert!(ops.last().unwrap().halted);
        assert_eq!(oracle.executed(), 2);
    }

    #[test]
    fn r0_stays_zero() {
        let (oracle, _) = run_program(|b| {
            b.push(Instruction::AddI { rd: Reg::R0, rs: Reg::R0, imm: 99 });
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R0), 0);
    }

    #[test]
    fn taken_branch_loops() {
        let (oracle, ops) = run_program(|b| {
            let top = b.new_label();
            b.push(Instruction::Li { rd: Reg::R2, imm: 5 });
            b.bind(top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R1), 5);
        let branches: Vec<&DynOp> =
            ops.iter().filter(|o| matches!(o.insn, Instruction::Branch { .. })).collect();
        assert_eq!(branches.len(), 5);
        assert!(branches[0].taken);
        assert!(!branches[4].taken);
    }

    #[test]
    fn call_ret_uses_stack() {
        let (oracle, ops) = run_program(|b| {
            let f = b.new_label();
            b.call(f);
            b.push(Instruction::Halt);
            b.bind(f);
            b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R0, imm: 7 });
            b.push(Instruction::Ret);
        });
        assert_eq!(oracle.state().reg(Reg::R3), 7);
        // Call pushed; ret popped; sp back to initial.
        let call_op = ops.iter().find(|o| matches!(o.insn, Instruction::Call { .. })).unwrap();
        let ret_op = ops.iter().find(|o| matches!(o.insn, Instruction::Ret)).unwrap();
        assert_eq!(call_op.mem_addr, ret_op.mem_addr);
        assert_eq!(ret_op.next_pc, call_op.addr + call_op.len as u64);
        assert!(ops.last().unwrap().halted);
    }

    #[test]
    fn corrupted_return_address_diverts_control() {
        // Overwrite the saved return address mid-run via a store: the ret
        // must follow the attacker-controlled value.
        let (oracle, ops) = run_program(|b| {
            let f = b.new_label();
            let evil = b.new_label();
            b.call(f);
            b.push(Instruction::Halt); // legitimate return site
            b.bind(evil);
            b.push(Instruction::AddI { rd: Reg::R9, rs: Reg::R0, imm: 0x66 });
            b.push(Instruction::Halt);
            b.bind(f);
            // Overwrite [sp] with &evil.
            b.li_label(Reg::R8, evil);
            b.push(Instruction::Store { rs: Reg::R8, rbase: REG_SP, off: 0 });
            b.push(Instruction::Ret);
        });
        assert_eq!(oracle.state().reg(Reg::R9), 0x66, "control must reach evil block");
        let ret_op = ops.iter().find(|o| matches!(o.insn, Instruction::Ret)).unwrap();
        assert_ne!(ret_op.next_pc, ret_op.addr + 1);
    }

    #[test]
    fn load_store_round_trip() {
        let (oracle, _) = run_program(|b| {
            let buf = b.data_zeroed(64);
            b.li_data(Reg::R5, buf);
            b.push(Instruction::Li { rd: Reg::R6, imm: 0xfeed });
            b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 8 });
            b.push(Instruction::Load { rd: Reg::R7, rbase: Reg::R5, off: 8 });
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R7), 0xfeed);
    }

    #[test]
    fn indirect_jump_through_table() {
        let (oracle, _) = run_program(|b| {
            let t0 = b.new_label();
            let t1 = b.new_label();
            let table = b.data_label_table(&[t0, t1]);
            b.li_data(Reg::R5, table);
            b.push(Instruction::Load { rd: Reg::R6, rbase: Reg::R5, off: 8 }); // entry 1
            b.jmp_ind(Reg::R6, &[t0, t1]);
            b.bind(t0);
            b.push(Instruction::AddI { rd: Reg::R7, rs: Reg::R0, imm: 1 });
            b.push(Instruction::Halt);
            b.bind(t1);
            b.push(Instruction::AddI { rd: Reg::R7, rs: Reg::R0, imm: 2 });
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R7), 2);
    }

    #[test]
    fn fp_pipeline() {
        let (oracle, _) = run_program(|b| {
            b.push(Instruction::Li { rd: Reg::R1, imm: 6 });
            b.push(Instruction::Li { rd: Reg::R2, imm: 3 });
            b.push(Instruction::CvtIF { fd: rev_isa::FReg::F1, rs: Reg::R1 });
            b.push(Instruction::CvtIF { fd: rev_isa::FReg::F2, rs: Reg::R2 });
            b.push(Instruction::Fpu {
                op: rev_isa::FpuOp::Div,
                fd: rev_isa::FReg::F3,
                fs1: rev_isa::FReg::F1,
                fs2: rev_isa::FReg::F2,
            });
            b.push(Instruction::CvtFI { rd: Reg::R3, fs: rev_isa::FReg::F3 });
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R3), 2);
    }

    #[test]
    fn illegal_bytes_error() {
        let mut mem = MainMemory::new();
        mem.write_bytes(0x100, &[0xff, 0xff]);
        let mut o = Oracle::new(mem, 0x100, 0x8000);
        assert!(matches!(o.step(), Err(OracleError::IllegalInstruction { pc: 0x100 })));
    }

    #[test]
    fn slt_alu() {
        let (oracle, _) = run_program(|b| {
            b.push(Instruction::Li { rd: Reg::R1, imm: (-5i64) as u64 });
            b.push(Instruction::Li { rd: Reg::R2, imm: 3 });
            b.push(Instruction::Alu { op: AluOp::Slt, rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R2 });
            b.push(Instruction::Halt);
        });
        assert_eq!(oracle.state().reg(Reg::R3), 1);
    }
}
