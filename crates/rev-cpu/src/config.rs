//! Core configuration (paper Table 2).

use crate::bpred::PredictorConfig;

/// Out-of-order core parameters. Defaults reproduce the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Fetch-queue capacity (Table 2: 32).
    pub fetch_queue: usize,
    /// Dispatch/issue/commit width (Table 2: 4).
    pub width: usize,
    /// Reorder-buffer capacity (Table 2: 128).
    pub rob_size: usize,
    /// Load/store-queue capacity (Table 2: 92).
    pub lsq_size: usize,
    /// Unified physical register file (Table 2: 256).
    pub phys_regs: usize,
    /// Issue-queue (scheduler) capacity.
    pub iq_size: usize,
    /// Integer ALUs (Table 2: 2).
    pub alu_units: usize,
    /// Floating-point units (Table 2: 2).
    pub fpu_units: usize,
    /// Load ports (Table 2: 2).
    pub load_units: usize,
    /// Store ports (Table 2: 2).
    pub store_units: usize,
    /// Cycles from fetching an instruction to the earliest cycle it can
    /// dispatch (front-end pipeline depth). Together with
    /// issue/execute/writeback/commit this puts the minimum fetch→commit
    /// distance at 16 cycles — the paper's `S`.
    pub frontend_depth: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// FP add/mul latency.
    pub fp_latency: u64,
    /// FP divide latency (unpipelined).
    pub fpdiv_latency: u64,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
}

impl CpuConfig {
    /// The paper's Table 2 configuration.
    pub fn paper_default() -> Self {
        CpuConfig {
            fetch_width: 4,
            fetch_queue: 32,
            width: 4,
            rob_size: 128,
            lsq_size: 92,
            phys_regs: 256,
            iq_size: 64,
            alu_units: 2,
            fpu_units: 2,
            load_units: 2,
            store_units: 2,
            frontend_depth: 12,
            mul_latency: 3,
            fp_latency: 4,
            fpdiv_latency: 12,
            predictor: PredictorConfig::paper_default(),
        }
    }

    /// The minimum fetch→commit depth `S` implied by this configuration
    /// (front end + issue + execute + writeback + commit).
    pub fn min_fetch_to_commit(&self) -> u64 {
        self.frontend_depth + 4
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = CpuConfig::paper_default();
        assert_eq!(c.fetch_queue, 32);
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.lsq_size, 92);
        assert_eq!(c.phys_regs, 256);
        assert_eq!(c.alu_units, 2);
        assert_eq!(c.fpu_units, 2);
        assert_eq!(c.min_fetch_to_commit(), 16, "S must equal the paper's 16");
    }
}
