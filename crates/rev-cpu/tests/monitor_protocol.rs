//! Tests of the pipeline↔monitor protocol: commit gating (StallUntil and
//! Violation), store custody, deferral back-pressure and flush reporting.

use rev_cpu::{
    CommitGate, CommitQuery, CpuConfig, ExecMonitor, FetchEvent, Oracle, Pipeline, RunOutcome,
    StoreCommit, Violation, ViolationKind,
};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_mem::{Hierarchy, MainMemory, MemConfig};
use rev_prog::{ModuleBuilder, Program};

fn program<F: FnOnce(&mut ModuleBuilder)>(f: F) -> Program {
    let mut b = ModuleBuilder::new("t", 0x1000);
    f(&mut b);
    let mut pb = Program::builder();
    pb.module(b.finish().expect("assembles"));
    pb.build()
}

fn pipeline(p: &Program) -> Pipeline {
    let mem = MainMemory::with_segments(&p.segments());
    let oracle = Oracle::new(mem, p.entry(), p.initial_sp());
    Pipeline::new(CpuConfig::paper_default(), MemConfig::paper_default(), oracle)
}

/// A monitor that stalls every terminator commit by a fixed number of
/// cycles, counts protocol events, and can refuse stores or raise a
/// violation on demand.
#[derive(Debug, Default)]
struct ProtocolMonitor {
    stall_cycles: u64,
    fetches: u64,
    wrong_path_fetches: u64,
    boundaries: u64,
    commits_gated: u64,
    stores: Vec<StoreCommit>,
    flushes: u64,
    refuse_stores: bool,
    refuse_store_polls: u64,
    violate_at_commit: Option<u64>,
    retries: u64,
}

impl ExecMonitor for ProtocolMonitor {
    fn on_fetch(&mut self, _mem: &mut Hierarchy, event: &FetchEvent) -> bool {
        self.fetches += 1;
        if event.wrong_path {
            self.wrong_path_fetches += 1;
        }
        let b = event.insn.is_bb_terminator();
        if b {
            self.boundaries += 1;
        }
        b
    }

    fn on_flush(&mut self, _from_seq: u64) {
        self.flushes += 1;
    }

    fn on_terminator_commit(&mut self, _mem: &mut Hierarchy, q: &CommitQuery) -> CommitGate {
        if let Some(n) = self.violate_at_commit {
            if self.commits_gated >= n {
                return CommitGate::Violation(Violation {
                    kind: ViolationKind::HashMismatch,
                    bb_addr: q.bb_addr,
                    actual_target: q.actual_target,
                    cycle: q.cycle,
                });
            }
        }
        // Stall each boundary once, then proceed on the retry.
        if self.stall_cycles > 0 && self.retries == 0 {
            self.retries = 1;
            return CommitGate::StallUntil(q.cycle + self.stall_cycles);
        }
        self.retries = 0;
        self.commits_gated += 1;
        CommitGate::Proceed
    }

    fn on_store_commit(&mut self, _mem: &mut Hierarchy, store: StoreCommit) {
        self.stores.push(store);
    }

    fn can_accept_store(&self) -> bool {
        !self.refuse_stores
    }

    fn forwards_store(&self, _addr: u64) -> bool {
        false
    }
}

// can_accept_store has no &mut self, so polling counts are approximated by
// observing stall statistics instead.

#[test]
fn stall_until_delays_commit_by_the_requested_amount() {
    let p = program(|b| {
        for _ in 0..50 {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.push(Instruction::Nop);
        }
        b.push(Instruction::Halt);
    });
    let run = |stall: u64| {
        let mut pl = pipeline(&p);
        let mut m = ProtocolMonitor { stall_cycles: stall, ..Default::default() };
        let r = pl.run(&mut m, 10_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        (r.stats.cycles, r.stats.validation_stall_cycles, m.commits_gated)
    };
    let (free_cycles, free_stall, gated) = run(0);
    let (slow_cycles, slow_stall, gated2) = run(40);
    assert_eq!(gated, gated2, "same boundaries either way");
    assert_eq!(free_stall, 0);
    assert!(slow_stall > 0, "stalls recorded");
    // Only one boundary (the halt): the stall should show up in cycles.
    assert!(slow_cycles > free_cycles, "{slow_cycles} vs {free_cycles}");
}

#[test]
fn violation_from_monitor_ends_the_run_and_reports() {
    let p = program(|b| {
        let top = b.new_label();
        b.push(Instruction::Li { rd: Reg::R2, imm: 1_000_000 });
        b.bind(top);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
        b.push(Instruction::Halt);
    });
    let mut pl = pipeline(&p);
    let mut m = ProtocolMonitor { violate_at_commit: Some(5), ..Default::default() };
    let r = pl.run(&mut m, 1_000_000);
    match r.outcome {
        RunOutcome::Violation(v) => assert_eq!(v.kind, ViolationKind::HashMismatch),
        other => panic!("expected violation, got {other:?}"),
    }
    assert_eq!(m.commits_gated, 5, "exactly five boundaries committed before the violation");
}

#[test]
fn refused_stores_stall_commit_forever_is_detected_as_deadlock() {
    let p = program(|b| {
        b.push(Instruction::Li { rd: Reg::R5, imm: 0x9000 });
        b.push(Instruction::Store { rs: Reg::R5, rbase: Reg::R5, off: 0 });
        b.push(Instruction::Halt);
    });
    let mut pl = pipeline(&p);
    let mut m = ProtocolMonitor { refuse_stores: true, ..Default::default() };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pl.run(&mut m, 1_000)));
    assert!(result.is_err(), "a permanently refused store must trip the deadlock guard");
    let _ = m.refuse_store_polls;
}

#[test]
fn stores_arrive_in_commit_order_with_values() {
    let p = program(|b| {
        let buf = b.data_zeroed(64);
        b.li_data(Reg::R5, buf);
        for i in 0..5 {
            b.push(Instruction::Li { rd: Reg::R6, imm: 100 + i });
            b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: (8 * i) as i32 });
        }
        b.push(Instruction::Halt);
    });
    let mut pl = pipeline(&p);
    let mut m = ProtocolMonitor::default();
    let r = pl.run(&mut m, 1_000);
    assert_eq!(r.outcome, RunOutcome::Halted);
    assert_eq!(m.stores.len(), 5);
    for (i, s) in m.stores.iter().enumerate() {
        assert_eq!(s.value, 100 + i as u64);
    }
    assert!(m.stores.windows(2).all(|w| w[0].seq < w[1].seq), "commit order");
}

#[test]
fn wrong_path_fetches_are_reported_then_flushed() {
    let p = program(|b| {
        // A data-dependent (unpredictable) branch drives wrong-path fetch.
        let top = b.new_label();
        let skip = b.new_label();
        b.push(Instruction::Li { rd: Reg::R2, imm: 200 });
        b.push(Instruction::Li { rd: Reg::R10, imm: 7 });
        b.bind(top);
        b.push(Instruction::MulI { rd: Reg::R10, rs: Reg::R10, imm: 1_103_515_245 });
        b.push(Instruction::AndI { rd: Reg::R11, rs: Reg::R10, imm: 0x40 });
        b.branch(BranchCond::Ne, Reg::R11, Reg::R0, skip);
        b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 1 });
        b.bind(skip);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
        b.push(Instruction::Halt);
    });
    let mut pl = pipeline(&p);
    let mut m = ProtocolMonitor::default();
    let r = pl.run(&mut m, 100_000);
    assert_eq!(r.outcome, RunOutcome::Halted);
    assert!(m.wrong_path_fetches > 0, "wrong-path fetches reported to the monitor");
    assert!(m.flushes > 0, "flushes reported");
    assert_eq!(m.flushes, r.stats.mispredicts, "one flush per resolved mispredict");
}

#[test]
fn instruction_mix_accounts_for_every_commit() {
    let p = program(|b| {
        let buf = b.data_zeroed(64);
        b.li_data(Reg::R5, buf);
        b.push(Instruction::Li { rd: Reg::R6, imm: 7 });
        b.push(Instruction::Store { rs: Reg::R6, rbase: Reg::R5, off: 0 });
        b.push(Instruction::Load { rd: Reg::R7, rbase: Reg::R5, off: 0 });
        b.push(Instruction::Fpu {
            op: rev_isa::FpuOp::Add,
            fd: rev_isa::FReg::F1,
            fs1: rev_isa::FReg::F1,
            fs2: rev_isa::FReg::F2,
        });
        b.push(Instruction::Halt);
    });
    let mut pl = pipeline(&p);
    let mut m = ProtocolMonitor::default();
    let r = pl.run(&mut m, 1_000);
    assert_eq!(r.outcome, RunOutcome::Halted);
    let mix = r.stats.mix;
    assert_eq!(mix.total(), r.stats.committed_instrs);
    assert_eq!(mix.stores, 1);
    assert_eq!(mix.loads, 1);
    assert_eq!(mix.fp, 1);
    assert!(mix.int_alu >= 2); // li + li_data
    assert_eq!(mix.other, 1); // halt
}
