//! On-"disk" (in-RAM) entry formats and their packing.
//!
//! All multi-byte fields are little-endian. Addresses are stored as 32-bit
//! values: the simulated address space fits in 32 bits, standing in for the
//! paper's module-relative offsets ("using offsets instead of full
//! addresses", Sec. V.B). `0xffff_ffff` marks an absent address.

use std::fmt;

/// Sentinel for "no address" / "no next entry".
pub const ENTRY_NONE: u32 = u32::MAX;
/// Sentinel for a 24-bit next-index field.
pub const NEXT24_NONE: u32 = 0x00ff_ffff;
/// Sentinel for a 20-bit next-index field (CFI-only entries).
pub const NEXT20_NONE: u32 = 0x000f_ffff;

/// Which validation flavor a table implements (paper Secs. V.B–V.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationMode {
    /// Hash + implicit static-branch validation + explicit computed-branch
    /// and return validation (the paper's main design).
    Standard,
    /// Hash + explicit validation of **every** branch target; two inline
    /// targets per 32-byte entry (paper Sec. V.C, Fig. 5).
    Aggressive,
    /// Control-flow-integrity only: no hashes, entries only for computed
    /// branches and returns (paper Sec. V.D).
    CfiOnly,
}

impl ValidationMode {
    /// Entry size in bytes for this mode.
    pub fn entry_size(self) -> usize {
        match self {
            ValidationMode::Standard => 16,
            ValidationMode::Aggressive => 32,
            ValidationMode::CfiOnly => 8,
        }
    }

    /// Whether this mode stores and checks BB crypto hashes.
    pub fn uses_hashes(self) -> bool {
        !matches!(self, ValidationMode::CfiOnly)
    }
}

impl fmt::Display for ValidationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationMode::Standard => write!(f, "standard"),
            ValidationMode::Aggressive => write!(f, "aggressive"),
            ValidationMode::CfiOnly => write!(f, "cfi-only"),
        }
    }
}

/// Terminator classification stored in primary entries (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// Static control flow (conditional branch, direct jump/call, syscall,
    /// artificial split): target validated implicitly by the BB hash.
    Implicit,
    /// Computed jump/call: target validated explicitly.
    Computed,
    /// Return: delayed validation via the successor block's predecessor
    /// field (paper Sec. V.A).
    Return,
}

impl EntryKind {
    fn code(self) -> u8 {
        match self {
            EntryKind::Implicit => 0,
            EntryKind::Computed => 1,
            EntryKind::Return => 2,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => EntryKind::Implicit,
            1 => EntryKind::Computed,
            2 => EntryKind::Return,
            _ => return None,
        })
    }

    /// Whether the actual transfer target must be membership-checked
    /// against the successor list in standard mode.
    pub fn needs_target_check(self) -> bool {
        matches!(self, EntryKind::Computed | EntryKind::Return)
    }
}

/// A decoded (plaintext) table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawEntry {
    /// An unused slot.
    Invalid,
    /// A standard-mode primary entry (16 B).
    Primary {
        /// Terminator classification.
        kind: EntryKind,
        /// Keyed 4-byte digest (binds bytes, BB addr, succ, pred).
        digest: u32,
        /// Primary successor (start address of the successor block), or
        /// [`ENTRY_NONE`].
        succ: u32,
        /// Primary predecessor (BB address of the predecessor block), or
        /// [`ENTRY_NONE`].
        pred: u32,
        /// Next entry index (spill continuation or collision chain), 24-bit.
        next: u32,
    },
    /// Additional successor or predecessor addresses (16 B, up to 3).
    Spill {
        /// `true` if the addresses extend the predecessor list, `false`
        /// for the successor list.
        is_pred: bool,
        /// 1–3 addresses.
        addrs: Vec<u32>,
        /// Next entry index, 24-bit.
        next: u32,
    },
    /// An aggressive-mode primary entry (32 B, two inline targets).
    AggressivePrimary {
        /// Terminator classification.
        kind: EntryKind,
        /// Keyed 4-byte digest.
        digest: u32,
        /// Up to two inline successor addresses.
        succs: [u32; 2],
        /// Primary predecessor.
        pred: u32,
        /// Next entry index, 24-bit.
        next: u32,
        /// Low 16 bits of the BB address (chain discriminator).
        bb_tag: u16,
    },
    /// A CFI-only entry (8 B): one target per entry.
    Cfi {
        /// Full (32-bit) target address.
        target: u32,
        /// Low 12 bits of the source BB address (discriminator).
        src_tag: u16,
        /// Next entry index, 20-bit ([`NEXT20_NONE`] = none).
        next: u32,
    },
}

impl RawEntry {
    /// The entry's next-index, if any.
    pub fn next(&self) -> Option<u32> {
        match self {
            RawEntry::Invalid => None,
            RawEntry::Primary { next, .. }
            | RawEntry::Spill { next, .. }
            | RawEntry::AggressivePrimary { next, .. } => {
                if *next == NEXT24_NONE {
                    None
                } else {
                    Some(*next)
                }
            }
            RawEntry::Cfi { next, .. } => {
                if *next == NEXT20_NONE {
                    None
                } else {
                    Some(*next)
                }
            }
        }
    }

    /// Packs the entry into `mode.entry_size()` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not belong to `mode`, an index field
    /// overflows its width, or a spill holds 0 or more than 3 addresses.
    pub fn pack(&self, mode: ValidationMode) -> Vec<u8> {
        let mut out = vec![0u8; mode.entry_size()];
        match (self, mode) {
            (RawEntry::Invalid, _) => {
                // All zeros; type bits 0 = invalid.
            }
            (RawEntry::Primary { kind, digest, succ, pred, next }, ValidationMode::Standard) => {
                assert!(*next <= NEXT24_NONE, "next index overflows 24 bits");
                let has_succ = *succ != ENTRY_NONE;
                let has_pred = *pred != ENTRY_NONE;
                out[0] = 0b01
                    | (kind.code() << 2)
                    | (u8::from(has_succ) << 4)
                    | (u8::from(has_pred) << 5);
                out[1..5].copy_from_slice(&digest.to_le_bytes());
                out[5..9].copy_from_slice(&succ.to_le_bytes());
                out[9..13].copy_from_slice(&pred.to_le_bytes());
                out[13..16].copy_from_slice(&next.to_le_bytes()[..3]);
            }
            (RawEntry::Spill { is_pred, addrs, next }, ValidationMode::Standard)
            | (RawEntry::Spill { is_pred, addrs, next }, ValidationMode::Aggressive) => {
                assert!(*next <= NEXT24_NONE, "next index overflows 24 bits");
                assert!((1..=3).contains(&addrs.len()), "spill holds 1..=3 addresses");
                out[0] = 0b10 | (u8::from(*is_pred) << 2) | (((addrs.len() - 1) as u8) << 3);
                for (i, a) in addrs.iter().enumerate() {
                    out[1 + 4 * i..5 + 4 * i].copy_from_slice(&a.to_le_bytes());
                }
                out[13..16].copy_from_slice(&next.to_le_bytes()[..3]);
            }
            (
                RawEntry::AggressivePrimary { kind, digest, succs, pred, next, bb_tag },
                ValidationMode::Aggressive,
            ) => {
                assert!(*next <= NEXT24_NONE, "next index overflows 24 bits");
                out[0] = 0b01 | (kind.code() << 2);
                out[1..5].copy_from_slice(&digest.to_le_bytes());
                out[5..9].copy_from_slice(&succs[0].to_le_bytes());
                out[9..13].copy_from_slice(&succs[1].to_le_bytes());
                out[13..17].copy_from_slice(&pred.to_le_bytes());
                out[17..20].copy_from_slice(&next.to_le_bytes()[..3]);
                out[20..22].copy_from_slice(&bb_tag.to_le_bytes());
            }
            (RawEntry::Cfi { target, src_tag, next }, ValidationMode::CfiOnly) => {
                assert!(*src_tag < (1 << 12), "source tag overflows 12 bits");
                assert!(*next <= NEXT20_NONE, "next index overflows 20 bits");
                out[0..4].copy_from_slice(&target.to_le_bytes());
                let meta = (*src_tag as u32) | (next << 12);
                out[4..8].copy_from_slice(&meta.to_le_bytes());
            }
            (entry, mode) => panic!("entry {entry:?} does not belong to mode {mode}"),
        }
        out
    }

    /// Unpacks an entry from `bytes` (must be `mode.entry_size()` long).
    ///
    /// Returns `None` for bytes that do not parse as an entry of `mode`
    /// (e.g. after tampering with the encrypted table, decryption yields
    /// garbage that frequently fails to parse; garbage that *does* parse is
    /// caught by the digest check instead).
    pub fn unpack(mode: ValidationMode, bytes: &[u8]) -> Option<RawEntry> {
        if bytes.len() != mode.entry_size() {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
        let next24 = |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], 0]);
        match mode {
            ValidationMode::Standard => {
                let ty = bytes[0] & 0b11;
                match ty {
                    0b00 => Some(RawEntry::Invalid),
                    0b01 => {
                        let kind = EntryKind::from_code((bytes[0] >> 2) & 0b11)?;
                        Some(RawEntry::Primary {
                            kind,
                            digest: u32_at(1),
                            succ: u32_at(5),
                            pred: u32_at(9),
                            next: next24(13),
                        })
                    }
                    0b10 => {
                        let is_pred = (bytes[0] >> 2) & 1 == 1;
                        let count = ((bytes[0] >> 3) & 0b11) as usize + 1;
                        if count > 3 {
                            return None;
                        }
                        let addrs = (0..count).map(|i| u32_at(1 + 4 * i)).collect();
                        Some(RawEntry::Spill { is_pred, addrs, next: next24(13) })
                    }
                    _ => None,
                }
            }
            ValidationMode::Aggressive => {
                let ty = bytes[0] & 0b11;
                match ty {
                    0b00 => Some(RawEntry::Invalid),
                    0b01 => {
                        let kind = EntryKind::from_code((bytes[0] >> 2) & 0b11)?;
                        Some(RawEntry::AggressivePrimary {
                            kind,
                            digest: u32_at(1),
                            succs: [u32_at(5), u32_at(9)],
                            pred: u32_at(13),
                            next: next24(17),
                            bb_tag: u16::from_le_bytes([bytes[20], bytes[21]]),
                        })
                    }
                    0b10 => {
                        let is_pred = (bytes[0] >> 2) & 1 == 1;
                        let count = ((bytes[0] >> 3) & 0b11) as usize + 1;
                        if count > 3 {
                            return None;
                        }
                        let addrs = (0..count).map(|i| u32_at(1 + 4 * i)).collect();
                        Some(RawEntry::Spill { is_pred, addrs, next: next24(13) })
                    }
                    _ => None,
                }
            }
            ValidationMode::CfiOnly => {
                let target = u32_at(0);
                let meta = u32_at(4);
                if target == 0 && meta == 0 {
                    return Some(RawEntry::Invalid);
                }
                Some(RawEntry::Cfi { target, src_tag: (meta & 0xfff) as u16, next: meta >> 12 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_primary_round_trip() {
        let e = RawEntry::Primary {
            kind: EntryKind::Computed,
            digest: 0xdead_beef,
            succ: 0x1234,
            pred: ENTRY_NONE,
            next: 42,
        };
        let bytes = e.pack(ValidationMode::Standard);
        assert_eq!(bytes.len(), 16);
        assert_eq!(RawEntry::unpack(ValidationMode::Standard, &bytes), Some(e));
    }

    #[test]
    fn spill_round_trip_all_counts() {
        for count in 1..=3usize {
            for is_pred in [false, true] {
                let e = RawEntry::Spill {
                    is_pred,
                    addrs: (0..count as u32).map(|i| 0x1000 + i).collect(),
                    next: NEXT24_NONE,
                };
                let bytes = e.pack(ValidationMode::Standard);
                assert_eq!(RawEntry::unpack(ValidationMode::Standard, &bytes), Some(e));
            }
        }
    }

    #[test]
    fn aggressive_round_trip() {
        let e = RawEntry::AggressivePrimary {
            kind: EntryKind::Return,
            digest: 1,
            succs: [0x10, 0x20],
            pred: 0x30,
            next: 7,
            bb_tag: 0xabcd,
        };
        let bytes = e.pack(ValidationMode::Aggressive);
        assert_eq!(bytes.len(), 32);
        assert_eq!(RawEntry::unpack(ValidationMode::Aggressive, &bytes), Some(e));
    }

    #[test]
    fn cfi_round_trip() {
        let e = RawEntry::Cfi { target: 0x4000, src_tag: 0x123, next: 99 };
        let bytes = e.pack(ValidationMode::CfiOnly);
        assert_eq!(bytes.len(), 8);
        assert_eq!(RawEntry::unpack(ValidationMode::CfiOnly, &bytes), Some(e));
    }

    #[test]
    fn invalid_is_all_zero() {
        let bytes = RawEntry::Invalid.pack(ValidationMode::Standard);
        assert!(bytes.iter().all(|&b| b == 0));
        assert_eq!(RawEntry::unpack(ValidationMode::Standard, &bytes), Some(RawEntry::Invalid));
    }

    #[test]
    fn next_sentinel_means_none() {
        let e = RawEntry::Primary {
            kind: EntryKind::Implicit,
            digest: 0,
            succ: 0,
            pred: 0,
            next: NEXT24_NONE,
        };
        assert_eq!(e.next(), None);
        let e2 = RawEntry::Cfi { target: 1, src_tag: 0, next: NEXT20_NONE };
        assert_eq!(e2.next(), None);
        let e3 = RawEntry::Cfi { target: 1, src_tag: 0, next: 5 };
        assert_eq!(e3.next(), Some(5));
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn wrong_mode_pack_panics() {
        let e = RawEntry::Cfi { target: 1, src_tag: 0, next: 0 };
        let _ = e.pack(ValidationMode::Standard);
    }

    #[test]
    fn unpack_wrong_length_is_none() {
        assert_eq!(RawEntry::unpack(ValidationMode::Standard, &[0u8; 8]), None);
    }

    #[test]
    fn mode_properties() {
        assert_eq!(ValidationMode::Standard.entry_size(), 16);
        assert_eq!(ValidationMode::Aggressive.entry_size(), 32);
        assert_eq!(ValidationMode::CfiOnly.entry_size(), 8);
        assert!(ValidationMode::Standard.uses_hashes());
        assert!(!ValidationMode::CfiOnly.uses_hashes());
    }
}
