//! The trusted linker's table generator.
//!
//! Consumes a module's static CFG and produces the encrypted, hash-indexed
//! signature table image (paper Sec. V). Placement: primary entries land in
//! their hash slot when free; colliding primaries and all spill
//! continuations append to the spill area past the slot region, linked by
//! the entries' next-index fields into a single chain per slot.

use crate::format::{EntryKind, RawEntry, ValidationMode, ENTRY_NONE, NEXT20_NONE, NEXT24_NONE};
use crate::lookup::SignatureTable;
use rev_crypto::{
    bb_body_hash_x4, entry_digest_x4, Aes128, BodyHash, CubeHashX4, EntryDigestInput, SignatureKey,
    X4_LANES,
};
use rev_prog::{BlockInfo, Cfg, Module, TermKind};
use std::collections::BTreeSet;
use std::fmt;

/// Size statistics for a built table (paper Secs. V.B–V.D report these as
/// percentages of the executable size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Primary (per-block-variant) entries.
    pub primaries: usize,
    /// Spill entries (extra successors/predecessors + collision overflow).
    pub spills: usize,
    /// Primary hash slots allocated.
    pub slots: usize,
    /// Total image bytes (header + slots + spill area).
    pub image_bytes: usize,
    /// Module code bytes (the ratio's denominator).
    pub code_bytes: usize,
}

impl TableStats {
    /// Table size as a fraction of the binary's code size.
    pub fn ratio_to_code(&self) -> f64 {
        self.image_bytes as f64 / self.code_bytes.max(1) as f64
    }
}

impl rev_trace::MetricSink for TableStats {
    fn export_metrics(&self, reg: &mut rev_trace::MetricRegistry) {
        reg.counter("table.primaries", self.primaries as u64);
        reg.counter("table.spills", self.spills as u64);
        reg.counter("table.slots", self.slots as u64);
        reg.counter("table.image_bytes", self.image_bytes as u64);
        reg.counter("table.code_bytes", self.code_bytes as u64);
        reg.gauge("table.ratio_to_code", self.ratio_to_code());
    }
}

/// Errors during table construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableBuildError {
    /// An address did not fit the 32-bit entry fields.
    AddressOverflow {
        /// The offending address.
        addr: u64,
    },
    /// The table grew past the 24-bit (or 20-bit for CFI) index space.
    TooManyEntries,
}

impl fmt::Display for TableBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableBuildError::AddressOverflow { addr } => {
                write!(f, "address {addr:#x} exceeds the 32-bit entry fields")
            }
            TableBuildError::TooManyEntries => write!(f, "table exceeds the next-index space"),
        }
    }
}

impl std::error::Error for TableBuildError {}

/// Multiplicative hash of a BB address into the slot space (the paper's
/// "A mod P" with a mixing step so nearby addresses spread).
pub(crate) fn slot_index(bb_addr: u64, slots: usize) -> usize {
    let mixed = bb_addr.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (bb_addr >> 7);
    (mixed % slots as u64) as usize
}

fn addr32(addr: u64) -> Result<u32, TableBuildError> {
    u32::try_from(addr).map_err(|_| TableBuildError::AddressOverflow { addr })
}

fn entry_kind(term: TermKind) -> EntryKind {
    match term {
        TermKind::JumpIndirect | TermKind::CallIndirect => EntryKind::Computed,
        TermKind::Return => EntryKind::Return,
        _ => EntryKind::Implicit,
    }
}

fn set_next(entry: &mut RawEntry, value: u32) {
    match entry {
        RawEntry::Primary { next, .. }
        | RawEntry::Spill { next, .. }
        | RawEntry::AggressivePrimary { next, .. }
        | RawEntry::Cfi { next, .. } => *next = value,
        RawEntry::Invalid => panic!("cannot link an invalid entry"),
    }
}

/// A logical chain segment: one primary entry plus its spill continuations.
struct Segment {
    entries: Vec<RawEntry>,
}

fn spill_run(is_pred: bool, addrs: &[u32]) -> Vec<RawEntry> {
    addrs
        .chunks(3)
        .map(|c| RawEntry::Spill { is_pred, addrs: c.to_vec(), next: NEXT24_NONE })
        .collect()
}

/// A segment whose primary entry still carries a placeholder digest: the
/// digest is a pure function of `(key, bb_addr, body, bound_succ,
/// bound_pred)` and is filled in by the batched multi-lane pass in
/// [`build_table`] (four entries per [`CubeHashX4`] call).
struct PlannedSegment {
    bb_addr: u64,
    bound_succ: u64,
    bound_pred: u64,
    segment: Segment,
}

impl PlannedSegment {
    /// Writes the batch-computed digest into the primary entry.
    fn set_digest(&mut self, digest: u32) {
        match &mut self.segment.entries[0] {
            RawEntry::Primary { digest: d, .. } | RawEntry::AggressivePrimary { digest: d, .. } => {
                *d = digest;
            }
            _ => unreachable!("planned segments lead with a primary entry"),
        }
    }
}

/// Hashes every block body through the four-lane CHG, [`X4_LANES`] blocks
/// per pass (a short tail of fewer than four real messages rides along
/// with empty filler lanes — the lockstep finalization makes them nearly
/// free). Bit-equal to per-block [`rev_crypto::bb_body_hash`] calls.
fn batched_body_hashes(module: &Module, cfg: &Cfg, h4: &CubeHashX4) -> Vec<BodyHash> {
    let blocks = cfg.blocks();
    let mut bodies = Vec::with_capacity(blocks.len());
    for chunk in blocks.chunks(X4_LANES) {
        let mut msgs: [&[u8]; X4_LANES] = [&[]; X4_LANES];
        for (lane, block) in chunk.iter().enumerate() {
            msgs[lane] = cfg.block_bytes(module, block);
        }
        bodies.extend_from_slice(&bb_body_hash_x4(h4, msgs)[..chunk.len()]);
    }
    bodies
}

/// Builds the logical segment for one block in standard mode.
///
/// Space optimizations straight from the paper's Sec. V: the targets of
/// non-computed branches are *not* stored ("since we verify the integrity
/// of the committed instruction in the BB, there is no need to verify the
/// target addresses for the non-computed branches"), and predecessors are
/// stored only when they are return instructions — the single case the
/// delayed return validation consults.
fn standard_segment(cfg: &Cfg, block: &BlockInfo) -> Result<PlannedSegment, TableBuildError> {
    // Successor lists are stored only where a target can change at run
    // time: computed branches, and returns ("the signature table entry
    // for the return instruction terminating such a function should list
    // multiple targets", Sec. V) — static branch targets are authenticated
    // by the block hash itself and are omitted.
    let succs: Vec<u32> = if entry_kind(block.term) != EntryKind::Implicit {
        block.successors.iter().map(|&a| addr32(a)).collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    let preds: Vec<u32> = block
        .predecessors
        .iter()
        .filter(|&&p| {
            let ids = cfg.blocks_by_bb_addr(p);
            if ids.is_empty() {
                // Not in this module's CFG: an external (cross-module)
                // return stitched in by the trusted linker — keep it.
                true
            } else {
                ids.iter().any(|id| cfg.block(*id).term == TermKind::Return)
            }
        })
        .map(|&a| addr32(a))
        .collect::<Result<_, _>>()?;
    let primary_succ = succs.first().copied().unwrap_or(ENTRY_NONE);
    let primary_pred = preds.first().copied().unwrap_or(ENTRY_NONE);
    let mut entries = vec![RawEntry::Primary {
        kind: entry_kind(block.term),
        digest: 0, // patched in by the batched digest pass
        succ: primary_succ,
        pred: primary_pred,
        next: NEXT24_NONE,
    }];
    if succs.len() > 1 {
        entries.extend(spill_run(false, &succs[1..]));
    }
    if preds.len() > 1 {
        entries.extend(spill_run(true, &preds[1..]));
    }
    Ok(PlannedSegment {
        bb_addr: block.bb_addr,
        bound_succ: if primary_succ == ENTRY_NONE { 0 } else { primary_succ as u64 },
        bound_pred: if primary_pred == ENTRY_NONE { 0 } else { primary_pred as u64 },
        segment: Segment { entries },
    })
}

/// Builds the logical segment for one block in aggressive mode: two inline
/// verified targets per entry, both bound by the digest (paper Fig. 5).
fn aggressive_segment(block: &BlockInfo) -> Result<PlannedSegment, TableBuildError> {
    let succs: Vec<u32> = block.successors.iter().map(|&a| addr32(a)).collect::<Result<_, _>>()?;
    let preds: Vec<u32> =
        block.predecessors.iter().map(|&a| addr32(a)).collect::<Result<_, _>>()?;
    let s0 = succs.first().copied().unwrap_or(ENTRY_NONE);
    let s1 = succs.get(1).copied().unwrap_or(ENTRY_NONE);
    let primary_pred = preds.first().copied().unwrap_or(ENTRY_NONE);
    let bound_targets = (if s0 == ENTRY_NONE { 0u64 } else { s0 as u64 })
        | (if s1 == ENTRY_NONE { 0u64 } else { (s1 as u64) << 32 });
    let mut entries = vec![RawEntry::AggressivePrimary {
        kind: entry_kind(block.term),
        digest: 0, // patched in by the batched digest pass
        succs: [s0, s1],
        pred: primary_pred,
        next: NEXT24_NONE,
        bb_tag: (block.bb_addr & 0xffff) as u16,
    }];
    if succs.len() > 2 {
        entries.extend(spill_run(false, &succs[2..]));
    }
    if preds.len() > 1 {
        entries.extend(spill_run(true, &preds[1..]));
    }
    Ok(PlannedSegment {
        bb_addr: block.bb_addr,
        bound_succ: bound_targets,
        bound_pred: if primary_pred == ENTRY_NONE { 0 } else { primary_pred as u64 },
        segment: Segment { entries },
    })
}

/// Builds the CFI-only segment for one computed-terminator BB address: one
/// 8-byte entry per distinct target (paper Sec. V.D).
fn cfi_segment(bb_addr: u64, targets: &BTreeSet<u64>) -> Result<Segment, TableBuildError> {
    let src_tag = (bb_addr & 0xfff) as u16;
    let entries = targets
        .iter()
        .map(|&t| Ok(RawEntry::Cfi { target: addr32(t)?, src_tag, next: NEXT20_NONE }))
        .collect::<Result<Vec<_>, TableBuildError>>()?;
    Ok(Segment { entries })
}

/// Builds the encrypted signature table for `module`.
///
/// `cpu` is the CPU-resident master key used to wrap the module's symmetric
/// key into the table header (paper Sec. IX: "the encrypted symmetric key
/// is stored at the beginning of the signature table").
///
/// # Errors
///
/// Returns [`TableBuildError`] on 32-bit field overflow or index-space
/// exhaustion.
pub fn build_table(
    module: &Module,
    cfg: &Cfg,
    key: &SignatureKey,
    mode: ValidationMode,
    cpu: &Aes128,
) -> Result<SignatureTable, TableBuildError> {
    // 1. Logical segments keyed by BB address. Body hashes and entry
    //    digests both go through the four-lane CHG: hash four blocks per
    //    pass, plan the segments (pure bookkeeping), then fill four entry
    //    digests per pass. Lane-for-lane bit-equal to the old scalar loop.
    let h4 = CubeHashX4::new();
    let mut segments: Vec<(u64, Segment)> = Vec::new();
    match mode {
        ValidationMode::Standard | ValidationMode::Aggressive => {
            let bodies = batched_body_hashes(module, cfg, &h4);
            let mut planned = Vec::with_capacity(bodies.len());
            for block in cfg.blocks() {
                planned.push(match mode {
                    ValidationMode::Standard => standard_segment(cfg, block)?,
                    _ => aggressive_segment(block)?,
                });
            }
            for (chunk, body_chunk) in planned.chunks_mut(X4_LANES).zip(bodies.chunks(X4_LANES)) {
                let filler = &bodies[0];
                let mut inputs: [EntryDigestInput<'_>; X4_LANES] = [(0, filler, 0, 0); X4_LANES];
                for (lane, (p, body)) in chunk.iter().zip(body_chunk).enumerate() {
                    inputs[lane] = (p.bb_addr, body, p.bound_succ, p.bound_pred);
                }
                let digests = entry_digest_x4(&h4, key, inputs);
                for (p, digest) in chunk.iter_mut().zip(digests) {
                    p.set_digest(digest.0);
                }
            }
            segments.extend(planned.into_iter().map(|p| (p.bb_addr, p.segment)));
        }
        ValidationMode::CfiOnly => {
            // One segment per computed-terminator address; merge target
            // sets across block variants sharing the terminator.
            let mut by_addr: std::collections::BTreeMap<u64, BTreeSet<u64>> = Default::default();
            for block in cfg.blocks() {
                if entry_kind(block.term).needs_target_check() {
                    by_addr.entry(block.bb_addr).or_default().extend(&block.successors);
                }
            }
            for (addr, targets) in &by_addr {
                if targets.is_empty() {
                    // A computed terminator with no legitimate targets
                    // (e.g. the return of a never-called function) gets no
                    // entry: executing it can only be a violation.
                    continue;
                }
                segments.push((*addr, cfi_segment(*addr, targets)?));
            }
        }
    }

    // 2. Placement: slot region sized ~1.15x the segment count (denser
    //    packing costs slightly longer collision chains, the trade-off the
    //    paper accepts to keep tables small).
    let slots = (segments.len() * 23 / 20).max(8) | 1; // odd, >= 8
    let mut entries: Vec<RawEntry> = vec![RawEntry::Invalid; slots];
    let mut chain_tail: Vec<Option<usize>> = vec![None; slots]; // tail index per slot chain
    let next_limit = match mode {
        ValidationMode::CfiOnly => NEXT20_NONE as usize,
        _ => NEXT24_NONE as usize,
    };

    let mut primaries = 0usize;
    let mut spills = 0usize;
    for (bb_addr, segment) in segments {
        let slot = slot_index(bb_addr, slots);
        let mut seg_iter = segment.entries.into_iter();
        let first = seg_iter.next().expect("segments are non-empty");
        primaries += 1;
        // Place the first entry: into the slot if free, else appended and
        // linked from the current chain tail.
        let first_idx = if matches!(entries[slot], RawEntry::Invalid) {
            entries[slot] = first;
            slot
        } else {
            entries.push(first);
            let idx = entries.len() - 1;
            if idx >= next_limit {
                return Err(TableBuildError::TooManyEntries);
            }
            let tail = chain_tail[slot].unwrap_or(slot);
            set_next(&mut entries[tail], idx as u32);
            idx
        };
        // Append the segment's continuation entries.
        let mut tail = first_idx;
        for entry in seg_iter {
            spills += 1;
            entries.push(entry);
            let idx = entries.len() - 1;
            if idx >= next_limit {
                return Err(TableBuildError::TooManyEntries);
            }
            set_next(&mut entries[tail], idx as u32);
            tail = idx;
        }
        chain_tail[slot] = Some(tail);
    }

    // 3. Serialize + encrypt (16-byte blocks, tweak = block index within
    //    the entry region, so each block decrypts independently).
    let entry_size = mode.entry_size();
    let mut region: Vec<u8> = Vec::with_capacity(entries.len() * entry_size);
    for e in &entries {
        region.extend_from_slice(&e.pack(mode));
    }
    // Pad to a whole number of AES blocks (CFI entries are 8 B).
    while !region.len().is_multiple_of(16) {
        region.push(0);
    }
    let aes = Aes128::new(*key.as_bytes());
    for (block_idx, chunk) in region.chunks_mut(16).enumerate() {
        aes.encrypt_tweaked(block_idx as u64, chunk);
    }

    // 4. Header: the module key wrapped by the CPU master key.
    let wrapped = cpu.encrypt_block(key.as_bytes());
    let mut image = Vec::with_capacity(16 + region.len());
    image.extend_from_slice(&wrapped);
    image.extend_from_slice(&region);

    let stats = TableStats {
        primaries,
        spills,
        slots,
        image_bytes: image.len(),
        code_bytes: module.code_len(),
    };
    Ok(SignatureTable::from_parts(
        module.name().to_string(),
        module.base(),
        module.code_end(),
        mode,
        slots,
        entries.len(),
        image,
        *key,
        aes,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_isa::{BranchCond, Instruction, Reg};
    use rev_prog::{BbLimits, ModuleBuilder};

    fn demo() -> (Module, Cfg) {
        let mut b = ModuleBuilder::new("demo", 0x1000);
        let f = b.begin_function("main");
        let out = b.new_label();
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
        b.branch(BranchCond::Eq, Reg::R1, Reg::R0, out);
        b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 2 });
        b.bind(out);
        b.push(Instruction::Halt);
        b.end_function(f);
        let m = b.finish().unwrap();
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        (m, cfg)
    }

    fn cpu() -> Aes128 {
        Aes128::new([0x33; 16])
    }

    #[test]
    fn build_all_modes() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(1);
        for mode in [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly]
        {
            let t = build_table(&m, &cfg, &key, mode, &cpu()).unwrap();
            assert_eq!(t.mode(), mode);
            assert!(t.image().len() >= 16);
            assert_eq!(t.image().len() % 16, 0);
        }
    }

    #[test]
    fn standard_has_entry_per_block() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(2);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        assert_eq!(t.stats().primaries, cfg.blocks().len());
    }

    #[test]
    fn cfi_only_is_much_smaller() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(3);
        let std_t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let cfi_t = build_table(&m, &cfg, &key, ValidationMode::CfiOnly, &cpu()).unwrap();
        assert!(cfi_t.image().len() < std_t.image().len());
    }

    #[test]
    fn aggressive_is_larger_than_standard() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(4);
        let std_t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let agg_t = build_table(&m, &cfg, &key, ValidationMode::Aggressive, &cpu()).unwrap();
        assert!(agg_t.image().len() > std_t.image().len());
    }

    #[test]
    fn wrapped_key_unwraps_with_cpu_key() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(5);
        let c = cpu();
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &c).unwrap();
        assert_eq!(t.unwrap_key(&c), key);
    }

    #[test]
    fn image_is_actually_encrypted() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(6);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        // A plaintext table would contain many all-zero invalid slots; the
        // ciphertext must not.
        let zero_blocks = t.image()[16..].chunks(16).filter(|c| c.iter().all(|&b| b == 0)).count();
        assert_eq!(zero_blocks, 0, "encrypted image must not leak zero slots");
    }

    #[test]
    fn duplicate_leaders_pin_table_stats() {
        use rev_crypto::{bb_body_hash, entry_digest};
        // Hand-written module with duplicate leaders: an (unreachable)
        // jump targets the middle of the entry run, so the halt terminator
        // owns two distinct blocks with the same BB address.
        let mut b = ModuleBuilder::new("dup", 0x1000);
        let mid = b.new_label();
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
        b.bind(mid);
        b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 2 });
        b.push(Instruction::Halt);
        b.jmp(mid);
        let m = b.finish().unwrap();
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        assert_eq!(cfg.blocks().len(), 2, "two leaders into one terminator");
        let halt_addr = cfg.blocks()[0].bb_addr;
        assert!(cfg.blocks().iter().all(|blk| blk.bb_addr == halt_addr));

        let key = SignatureKey::from_seed(20);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let s = t.stats();
        // Pin the exact table shape: one primary per block variant, no
        // spills (no computed targets, no return predecessors), the
        // minimum slot count, and one collision-appended entry (both
        // variants hash to the same slot by construction).
        assert_eq!(s.primaries, 2);
        assert_eq!(s.spills, 0);
        assert_eq!(s.slots, 9); // (2 * 23 / 20).max(8) | 1
        assert_eq!(t.total_entries(), 10, "slot region + 1 collision entry");
        assert_eq!(s.image_bytes, 16 + 10 * 16);
        assert_eq!(s.code_bytes, m.code_len());

        // The two variants produce two digest-distinct entries on one
        // chain, each matching exactly one block body.
        let lookup = t.lookup(halt_addr);
        assert!(!lookup.parse_failure);
        assert_eq!(lookup.variants.len(), 2);
        assert_ne!(lookup.variants[0].digest, lookup.variants[1].digest);
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(&m, block));
            let matching = lookup
                .variants
                .iter()
                .filter(|v| v.digest == Some(entry_digest(&key, halt_addr, &body, 0, 0).0))
                .count();
            assert_eq!(matching, 1, "leader at {:#x}", block.start);
        }
    }

    #[test]
    fn over_long_block_pins_table_stats() {
        use rev_crypto::{bb_body_hash, entry_digest};
        // A block far past the split limit: 10 instructions at
        // max_instrs = 4 must become ceil-split artificial segments, each
        // with its own table entry.
        let mut b = ModuleBuilder::new("long", 0x1000);
        for i in 0..10 {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: i });
        }
        b.push(Instruction::Halt);
        let m = b.finish().unwrap();
        let limits = BbLimits { max_instrs: 4, max_stores: 8 };
        let cfg = Cfg::analyze(&m, limits).unwrap();
        assert_eq!(cfg.blocks().len(), 3, "4 + 4 + (2 + halt)");

        let key = SignatureKey::from_seed(21);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let s = t.stats();
        // Artificial splits get Implicit entries: no successor or
        // predecessor storage, hence zero spills.
        assert_eq!(s.primaries, 3);
        assert_eq!(s.spills, 0);
        assert_eq!(s.slots, 9); // (3 * 23 / 20).max(8) | 1
                                // Entry count is slot region + collision overflow; derive the
                                // expected overflow from the (deterministic) slot hash so the
                                // pinned value survives only genuine layout changes.
        let distinct_slots: std::collections::HashSet<usize> =
            cfg.blocks().iter().map(|blk| slot_index(blk.bb_addr, s.slots)).collect();
        let expected_total = s.slots + (cfg.blocks().len() - distinct_slots.len());
        assert_eq!(t.total_entries(), expected_total);
        assert_eq!(s.image_bytes, 16 + expected_total * 16);

        // Every split segment is digest-findable under its own BB address.
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(&m, block));
            let found = t
                .lookup(block.bb_addr)
                .variants
                .iter()
                .any(|v| v.digest == Some(entry_digest(&key, block.bb_addr, &body, 0, 0).0));
            assert!(found, "split block at {:#x} has an entry", block.bb_addr);
        }
    }

    #[test]
    fn slot_index_spreads() {
        let mut used = std::collections::HashSet::new();
        for i in 0..100u64 {
            used.insert(slot_index(0x1000 + i * 8, 131));
        }
        assert!(used.len() > 50, "hash should spread addresses");
    }
}
