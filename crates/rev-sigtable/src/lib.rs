//! # rev-sigtable — encrypted reference signature tables
//!
//! Every executable module gets a RAM-resident table of reference
//! signatures, built ahead of execution by the trusted linker and stored
//! **encrypted** with the module's secret key (paper Sec. V). The table is
//! hash-indexed by the basic block's address (the address of its
//! terminating instruction); colliding entries chain through a spill area,
//! and entries with more than one successor/predecessor continue into
//! spill slots.
//!
//! Three table flavors reproduce the paper's three validation modes:
//!
//! | Mode | Entry | Contents | Paper |
//! |---|---|---|---|
//! | [`ValidationMode::Standard`]  | 16 B | 4-byte keyed digest binding (BB bytes, BB addr, primary successor, primary predecessor) + successor/predecessor lists | Sec. V.B, Fig. 4 |
//! | [`ValidationMode::Aggressive`] | 32 B | digest + **two** inline verified targets (every branch target checked explicitly) | Sec. V.C, Fig. 5 |
//! | [`ValidationMode::CfiOnly`]   | 8 B  | full target address + 12-bit source tag + 20-bit next index; computed branches and returns only, no hashes | Sec. V.D |
//!
//! The paper reports table sizes of 15–52 % of the binary (avg 37 %) for
//! standard, 40–65 % for aggressive, and 3–20 % (avg 9 %) for CFI-only —
//! regenerated here by `rev-bench`'s `table_sizes` harness.

mod build;
mod format;
mod lookup;

pub use build::{build_table, TableBuildError, TableStats};
pub use format::{EntryKind, RawEntry, ValidationMode, ENTRY_NONE, NEXT20_NONE, NEXT24_NONE};
pub use lookup::{ChainLookup, SigVariant, SignatureTable};
