//! The decrypt-and-walk side of the signature table, as performed by the
//! signature address generation unit + SC fill engine on an SC miss.

use crate::build::{slot_index, TableStats};
use crate::format::{EntryKind, RawEntry, ValidationMode};
use rev_crypto::{Aes128, SignatureKey};

const HEADER_BYTES: u64 = 16;

/// One decoded candidate record for a BB address: a primary entry with its
/// spill continuations resolved. Several variants can share a BB address
/// (different entry leaders into the same terminator, or hash-chain
/// neighbors from colliding addresses — the digest check disambiguates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigVariant {
    /// Terminator classification.
    pub kind: EntryKind,
    /// The stored 4-byte keyed digest (`None` in CFI-only mode).
    pub digest: Option<u32>,
    /// The successor address(es) bound into the digest (primary one for
    /// standard mode, up to two for aggressive).
    pub bound_succs: Vec<u64>,
    /// The predecessor address bound into the digest.
    pub bound_pred: Option<u64>,
    /// Full successor set (inline + spills).
    pub succs: Vec<u64>,
    /// Full predecessor set (inline + spills).
    pub preds: Vec<u64>,
    /// Low 12/16 bits of the owning BB address when the format stores a
    /// discriminator tag (aggressive `bb_tag`, CFI `src_tag`).
    pub tag: Option<u16>,
    /// Absolute memory addresses of this variant's spill entries (the
    /// partial-miss fetch targets).
    pub spill_addrs: Vec<u64>,
}

impl SigVariant {
    /// Returns `true` if `target` is a legitimate successor.
    pub fn allows_target(&self, target: u64) -> bool {
        self.succs.contains(&target)
    }

    /// Returns `true` if `pred` is a legitimate predecessor.
    pub fn allows_pred(&self, pred: u64) -> bool {
        self.preds.contains(&pred)
    }
}

/// Result of walking the chain for one BB address.
#[derive(Debug, Clone, Default)]
pub struct ChainLookup {
    /// Candidate variants found on the chain.
    pub variants: Vec<SigVariant>,
    /// Absolute addresses read while walking primary entries (each is one
    /// dependent memory access on the SC-miss path).
    pub primary_touch: Vec<u64>,
    /// `true` if a chain entry failed to parse after decryption —
    /// symptomatic of table tampering.
    pub parse_failure: bool,
}

/// A built (encrypted) signature table plus the metadata the SAG holds for
/// its module: base/limit addresses and the (CPU-internal) decryption key.
#[derive(Debug, Clone)]
pub struct SignatureTable {
    module_name: String,
    module_base: u64,
    module_end: u64,
    mode: ValidationMode,
    slots: usize,
    total_entries: usize,
    image: Vec<u8>,
    key: SignatureKey,
    /// Expanded key schedule for `key`, built once — `decrypt_entry` runs
    /// on the SC-miss path and must not redo the AES key expansion per
    /// entry.
    aes: Aes128,
    stats: TableStats,
    base: u64,
}

impl SignatureTable {
    #[allow(clippy::too_many_arguments)]
    /// `aes` must be the expanded schedule of `key` — the builder already
    /// holds one for table encryption, so sharing it here avoids a second
    /// key expansion per constructed table.
    pub(crate) fn from_parts(
        module_name: String,
        module_base: u64,
        module_end: u64,
        mode: ValidationMode,
        slots: usize,
        total_entries: usize,
        image: Vec<u8>,
        key: SignatureKey,
        aes: Aes128,
        stats: TableStats,
    ) -> Self {
        debug_assert_eq!(
            aes.encrypt_block(&[0; 16]),
            Aes128::new(*key.as_bytes()).encrypt_block(&[0; 16]),
            "shared AES schedule must match the table key"
        );
        SignatureTable {
            module_name,
            module_base,
            module_end,
            mode,
            slots,
            total_entries,
            image,
            aes,
            key,
            stats,
            base: 0,
        }
    }

    /// Name of the module this table validates.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// First code address of the module (SAG limit register low bound).
    pub fn module_base(&self) -> u64 {
        self.module_base
    }

    /// One past the last code address (SAG limit register high bound).
    pub fn module_end(&self) -> u64 {
        self.module_end
    }

    /// Validation mode.
    pub fn mode(&self) -> ValidationMode {
        self.mode
    }

    /// Number of primary hash slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Total entries (slots + spill area).
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// The encrypted image (header + entry region) the loader writes into
    /// RAM.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Build statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The module's signature key. In hardware this never leaves the CPU;
    /// it is exposed here for the simulator's SAG key registers.
    pub fn key(&self) -> SignatureKey {
        self.key
    }

    /// Unwraps the key stored in the table header using the CPU master key.
    pub fn unwrap_key(&self, cpu: &Aes128) -> SignatureKey {
        let block: [u8; 16] = self.image[..16].try_into().expect("header present");
        SignatureKey::from_bytes(cpu.decrypt_block(&block))
    }

    /// Records where the loader placed the table in RAM.
    pub fn set_base(&mut self, base: u64) {
        self.base = base;
    }

    /// Overrides the SAG base/limit pair for this table. This is a
    /// fault-injection hook: `rev-lint`'s corrupted-table tests shift the
    /// range to prove the SAG sanity lints fire; it is never called on the
    /// trusted linker path.
    pub fn set_module_range(&mut self, base: u64, end: u64) {
        self.module_base = base;
        self.module_end = end;
    }

    /// Mutable access to the encrypted image — the second fault-injection
    /// hook: tamper tests overwrite ciphertext blocks in place (dropped or
    /// rewritten entries) to prove the audit lints fire.
    pub fn image_mut(&mut self) -> &mut Vec<u8> {
        &mut self.image
    }

    /// The table's RAM base address (0 until loaded).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Absolute address of entry `idx`.
    pub fn entry_addr(&self, idx: usize) -> u64 {
        self.base + HEADER_BYTES + (idx * self.mode.entry_size()) as u64
    }

    /// The hash-slot index for a BB address.
    pub fn slot_of(&self, bb_addr: u64) -> usize {
        slot_index(bb_addr, self.slots)
    }

    fn decrypt_entry(
        &self,
        encrypted_region_read: &mut dyn FnMut(u64, usize) -> Vec<u8>,
        idx: usize,
    ) -> Option<RawEntry> {
        let esize = self.mode.entry_size();
        let byte_off = idx * esize;
        // Determine the covering 16-byte blocks.
        let block_lo = byte_off / 16;
        let block_hi = (byte_off + esize - 1) / 16;
        let mut plain = Vec::with_capacity((block_hi - block_lo + 1) * 16);
        let aes = &self.aes;
        for b in block_lo..=block_hi {
            let addr = self.base + HEADER_BYTES + (b * 16) as u64;
            let mut bytes = encrypted_region_read(addr, 16);
            if bytes.len() != 16 {
                return None;
            }
            aes.decrypt_tweaked(b as u64, &mut bytes);
            plain.extend_from_slice(&bytes);
        }
        let inner_off = byte_off - block_lo * 16;
        RawEntry::unpack(self.mode, &plain[inner_off..inner_off + esize])
    }

    /// Walks the chain for `bb_addr`, reading the encrypted table through
    /// `read` (absolute address, byte count) — typically backed by the
    /// simulated main memory so that tampering with the in-RAM table is
    /// observable. Returns the decoded candidates and the addresses
    /// touched.
    pub fn lookup_with(
        &self,
        read: &mut dyn FnMut(u64, usize) -> Vec<u8>,
        bb_addr: u64,
    ) -> ChainLookup {
        let mut out = ChainLookup::default();
        let mut idx = self.slot_of(bb_addr);
        let mut current: Option<SigVariant> = None;
        let mut hops = 0usize;
        loop {
            hops += 1;
            if hops > self.total_entries + 2 {
                // Cycle (corrupt table); bail out.
                out.parse_failure = true;
                break;
            }
            let addr = self.entry_addr(idx);
            let entry = match self.decrypt_entry(read, idx) {
                Some(e) => e,
                None => {
                    out.parse_failure = true;
                    break;
                }
            };
            match &entry {
                RawEntry::Invalid => {
                    break;
                }
                RawEntry::Primary { kind, digest, succ, pred, .. } => {
                    out.primary_touch.push(addr);
                    if let Some(v) = current.take() {
                        out.variants.push(v);
                    }
                    let succs: Vec<u64> =
                        (*succ != u32::MAX).then_some(*succ as u64).into_iter().collect();
                    let preds: Vec<u64> =
                        (*pred != u32::MAX).then_some(*pred as u64).into_iter().collect();
                    current = Some(SigVariant {
                        kind: *kind,
                        digest: Some(*digest),
                        bound_succs: succs.clone(),
                        bound_pred: preds.first().copied(),
                        succs,
                        preds,
                        tag: None,
                        spill_addrs: Vec::new(),
                    });
                }
                RawEntry::AggressivePrimary { kind, digest, succs, pred, bb_tag, .. } => {
                    out.primary_touch.push(addr);
                    if let Some(v) = current.take() {
                        out.variants.push(v);
                    }
                    let succ_list: Vec<u64> =
                        succs.iter().filter(|&&s| s != u32::MAX).map(|&s| s as u64).collect();
                    let preds: Vec<u64> =
                        (*pred != u32::MAX).then_some(*pred as u64).into_iter().collect();
                    current = Some(SigVariant {
                        kind: *kind,
                        digest: Some(*digest),
                        bound_succs: succ_list.clone(),
                        bound_pred: preds.first().copied(),
                        succs: succ_list,
                        preds,
                        tag: Some(*bb_tag),
                        spill_addrs: Vec::new(),
                    });
                }
                RawEntry::Spill { is_pred, addrs, .. } => {
                    if let Some(v) = current.as_mut() {
                        v.spill_addrs.push(addr);
                        let list = if *is_pred { &mut v.preds } else { &mut v.succs };
                        list.extend(addrs.iter().map(|&a| a as u64));
                    } else {
                        // Spill with no owning primary: corrupt chain.
                        out.parse_failure = true;
                    }
                }
                RawEntry::Cfi { target, src_tag, .. } => {
                    out.primary_touch.push(addr);
                    // Group CFI entries by source tag into one variant.
                    let matches_current =
                        current.as_ref().map(|v| v.tag == Some(*src_tag)).unwrap_or(false);
                    if matches_current {
                        current.as_mut().expect("checked").succs.push(*target as u64);
                    } else {
                        if let Some(v) = current.take() {
                            out.variants.push(v);
                        }
                        current = Some(SigVariant {
                            kind: EntryKind::Computed,
                            digest: None,
                            bound_succs: vec![*target as u64],
                            bound_pred: None,
                            succs: vec![*target as u64],
                            preds: Vec::new(),
                            tag: Some(*src_tag),
                            spill_addrs: Vec::new(),
                        });
                    }
                }
            }
            match entry.next() {
                Some(n) => idx = n as usize,
                None => break,
            }
        }
        if let Some(v) = current.take() {
            out.variants.push(v);
        }
        out
    }

    /// Decrypts and decodes every entry in the table's own image, in index
    /// order. `None` marks an entry that fails to parse after decryption.
    /// This is the offline audit path (`rev-lint` walks the raw entry
    /// region to find orphans, duplicates, and broken chains); the runtime
    /// lookup path never decodes more than one chain.
    pub fn decode_entries(&self) -> Vec<Option<RawEntry>> {
        let base = self.base;
        let image = &self.image;
        let mut read = move |addr: u64, len: usize| -> Vec<u8> {
            let off = (addr - base) as usize;
            image.get(off..off + len).map(|s| s.to_vec()).unwrap_or_default()
        };
        (0..self.total_entries).map(|i| self.decrypt_entry(&mut read, i)).collect()
    }

    /// Convenience lookup against the table's own image (no simulated
    /// memory involved).
    pub fn lookup(&self, bb_addr: u64) -> ChainLookup {
        let base = self.base;
        let image = &self.image;
        let mut read = move |addr: u64, len: usize| -> Vec<u8> {
            let off = (addr - base) as usize;
            image.get(off..off + len).map(|s| s.to_vec()).unwrap_or_default()
        };
        self.lookup_with(&mut read, bb_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_table;
    use rev_crypto::{bb_body_hash, entry_digest};
    use rev_isa::{BranchCond, Instruction, Reg};
    use rev_prog::{BbLimits, Cfg, Module, ModuleBuilder, TermKind};

    fn cpu() -> Aes128 {
        Aes128::new([0x55; 16])
    }

    fn demo() -> (Module, Cfg) {
        let mut b = ModuleBuilder::new("demo", 0x1000);
        let f = b.begin_function("main");
        let t1 = b.new_label();
        let t2 = b.new_label();
        let out = b.new_label();
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
        b.branch(BranchCond::Eq, Reg::R1, Reg::R0, out);
        b.jmp_ind(Reg::R5, &[t1, t2]);
        b.bind(t1);
        b.jmp(out);
        b.bind(t2);
        b.push(Instruction::Nop);
        b.bind(out);
        b.push(Instruction::Halt);
        b.end_function(f);
        let m = b.finish().unwrap();
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        (m, cfg)
    }

    #[test]
    fn every_block_is_findable_standard() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(10);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(&m, block));
            let lookup = t.lookup(block.bb_addr);
            assert!(!lookup.parse_failure);
            // Exactly one candidate must digest-match this block variant.
            let matching = lookup
                .variants
                .iter()
                .filter(|v| {
                    let succ = v.bound_succs.first().copied().unwrap_or(0);
                    let pred = v.bound_pred.unwrap_or(0);
                    v.digest == Some(entry_digest(&key, block.bb_addr, &body, succ, pred).0)
                })
                .count();
            assert_eq!(matching, 1, "block at {:#x}", block.bb_addr);
        }
    }

    #[test]
    fn successor_sets_complete_for_validated_cases() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(11);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(&m, block));
            let lookup = t.lookup(block.bb_addr);
            let v = lookup
                .variants
                .iter()
                .find(|v| {
                    let succ = v.bound_succs.first().copied().unwrap_or(0);
                    let pred = v.bound_pred.unwrap_or(0);
                    v.digest == Some(entry_digest(&key, block.bb_addr, &body, succ, pred).0)
                })
                .expect("variant found");
            // Standard mode stores successors only where REV validates
            // them explicitly: computed branches (paper Sec. V).
            if matches!(block.term, TermKind::JumpIndirect | TermKind::CallIndirect) {
                for &s in &block.successors {
                    assert!(v.allows_target(s), "succ {s:#x} of {:#x}", block.bb_addr);
                }
            }
            // Predecessors are stored when they are return instructions
            // (the delayed return check's lookup).
            for &p in &block.predecessors {
                let pred_is_ret = cfg
                    .blocks_by_bb_addr(p)
                    .iter()
                    .any(|id| cfg.block(*id).term == TermKind::Return);
                if pred_is_ret {
                    assert!(v.allows_pred(p), "ret pred {p:#x} of {:#x}", block.bb_addr);
                }
            }
        }
    }

    #[test]
    fn cfi_only_covers_computed_blocks() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(12);
        let t = build_table(&m, &cfg, &key, ValidationMode::CfiOnly, &cpu()).unwrap();
        for block in cfg.blocks() {
            if !matches!(
                block.term,
                TermKind::JumpIndirect | TermKind::CallIndirect | TermKind::Return
            ) {
                continue;
            }
            let lookup = t.lookup(block.bb_addr);
            let tag = (block.bb_addr & 0xfff) as u16;
            let v = lookup.variants.iter().find(|v| v.tag == Some(tag)).expect("cfi variant");
            for &s in &block.successors {
                assert!(v.allows_target(s));
            }
        }
    }

    #[test]
    fn unknown_bb_yields_no_matching_variant() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(13);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let bogus = 0xdead0;
        let body = bb_body_hash(&[0x90]);
        let lookup = t.lookup(bogus);
        let matching = lookup.variants.iter().any(|v| {
            let succ = v.bound_succs.first().copied().unwrap_or(0);
            let pred = v.bound_pred.unwrap_or(0);
            v.digest == Some(entry_digest(&key, bogus, &body, succ, pred).0)
        });
        assert!(!matching);
    }

    #[test]
    fn tampered_table_detected() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(14);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let block = &cfg.blocks()[0];
        // Corrupt the image and look up through a tampered reader.
        let mut corrupted = t.image().to_vec();
        for b in corrupted[16..].iter_mut() {
            *b ^= 0xa5;
        }
        let mut read = |addr: u64, len: usize| -> Vec<u8> {
            corrupted[(addr as usize)..(addr as usize) + len].to_vec()
        };
        let lookup = t.lookup_with(&mut read, block.bb_addr);
        let body = bb_body_hash(cfg.block_bytes(&m, block));
        let matching = lookup.variants.iter().any(|v| {
            let succ = v.bound_succs.first().copied().unwrap_or(0);
            let pred = v.bound_pred.unwrap_or(0);
            v.digest == Some(entry_digest(&key, block.bb_addr, &body, succ, pred).0)
        });
        assert!(!matching, "tampering must never produce a digest match");
    }

    #[test]
    fn wrong_key_never_matches() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(15);
        let wrong = SignatureKey::from_seed(16);
        let t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        let block = &cfg.blocks()[0];
        let body = bb_body_hash(cfg.block_bytes(&m, block));
        let lookup = t.lookup(block.bb_addr);
        let matching = lookup.variants.iter().any(|v| {
            let succ = v.bound_succs.first().copied().unwrap_or(0);
            let pred = v.bound_pred.unwrap_or(0);
            v.digest == Some(entry_digest(&wrong, block.bb_addr, &body, succ, pred).0)
        });
        assert!(!matching);
    }

    #[test]
    fn placed_table_reports_addresses_in_range() {
        let (m, cfg) = demo();
        let key = SignatureKey::from_seed(17);
        let mut t = build_table(&m, &cfg, &key, ValidationMode::Standard, &cpu()).unwrap();
        t.set_base(0x8_0000);
        let block = &cfg.blocks()[0];
        let lookup = t.lookup(block.bb_addr);
        for &addr in &lookup.primary_touch {
            assert!(addr >= 0x8_0000 + 16);
            assert!(addr < 0x8_0000 + t.image().len() as u64);
        }
    }
}
