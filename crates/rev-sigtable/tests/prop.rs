//! Property tests: every block of a random module is findable in its
//! signature table with exactly the right digest, and tampering never
//! produces a digest match.

use proptest::prelude::*;
use rev_crypto::{bb_body_hash, entry_digest, Aes128, SignatureKey};
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{BbLimits, Cfg, Module, ModuleBuilder, TermKind};
use rev_sigtable::{build_table, SignatureTable, ValidationMode};

fn build_module(shape: &[(u8, bool)]) -> Module {
    let mut b = ModuleBuilder::new("prop", 0x2000);
    let f = b.begin_function("main");
    for &(n, branchy) in shape {
        if branchy {
            let merge = b.new_label();
            b.branch(BranchCond::Ne, Reg::R1, Reg::R2, merge);
            for _ in 0..n {
                b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 7 });
            }
            b.bind(merge);
        }
        for k in 0..n {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: k as i32 });
        }
    }
    b.push(Instruction::Halt);
    b.end_function(f);
    b.finish().expect("assembles")
}

fn digest_matches(
    table: &SignatureTable,
    key: &SignatureKey,
    module: &Module,
    cfg: &Cfg,
) -> Result<(), TestCaseError> {
    for block in cfg.blocks() {
        let body = bb_body_hash(cfg.block_bytes(module, block));
        let lookup = table.lookup(block.bb_addr);
        prop_assert!(!lookup.parse_failure, "chain parse failure at {:#x}", block.bb_addr);
        let matches = lookup
            .variants
            .iter()
            .filter(|v| {
                let succ = v.bound_succs.first().copied().unwrap_or(0);
                let pred = v.bound_pred.unwrap_or(0);
                v.digest == Some(entry_digest(key, block.bb_addr, &body, succ, pred).0)
            })
            .count();
        prop_assert_eq!(matches, 1, "block {:#x}: {} digest matches", block.bb_addr, matches);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Completeness: one digest-matching entry per block, with the full
    /// successor/predecessor sets recoverable, for arbitrary collision
    /// patterns.
    #[test]
    fn every_block_findable(
        shape in proptest::collection::vec((1u8..8, any::<bool>()), 1..24),
        key_seed in any::<u64>(),
    ) {
        let module = build_module(&shape);
        let cfg = Cfg::analyze(&module, BbLimits::default()).expect("analyzes");
        let key = SignatureKey::from_seed(key_seed);
        let cpu = Aes128::new([9; 16]);
        let table =
            build_table(&module, &cfg, &key, ValidationMode::Standard, &cpu).expect("builds");
        digest_matches(&table, &key, &module, &cfg)?;

        // Target-set completeness for the explicitly validated cases
        // (standard mode stores only computed-branch successors and
        // return predecessors — paper Sec. V).
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(&module, block));
            let lookup = table.lookup(block.bb_addr);
            let v = lookup.variants.iter().find(|v| {
                let succ = v.bound_succs.first().copied().unwrap_or(0);
                let pred = v.bound_pred.unwrap_or(0);
                v.digest == Some(entry_digest(&key, block.bb_addr, &body, succ, pred).0)
            }).expect("matching variant");
            if matches!(block.term, TermKind::JumpIndirect | TermKind::CallIndirect) {
                for &s in &block.successors {
                    prop_assert!(v.succs.contains(&s));
                }
            }
            for &p in &block.predecessors {
                let pred_is_ret = cfg
                    .blocks_by_bb_addr(p)
                    .iter()
                    .any(|id| cfg.block(*id).term == TermKind::Return);
                if pred_is_ret {
                    prop_assert!(v.preds.contains(&p));
                }
            }
        }
    }

    /// Soundness under tampering: flipping any byte of the encrypted
    /// entry region never yields a digest match for an affected block.
    #[test]
    fn tampering_never_matches(
        shape in proptest::collection::vec((1u8..6, any::<bool>()), 1..10),
        flip_byte in any::<u8>(),
        flip_pos_seed in any::<u64>(),
    ) {
        prop_assume!(flip_byte != 0);
        let module = build_module(&shape);
        let cfg = Cfg::analyze(&module, BbLimits::default()).expect("analyzes");
        let key = SignatureKey::from_seed(5);
        let cpu = Aes128::new([9; 16]);
        let table =
            build_table(&module, &cfg, &key, ValidationMode::Standard, &cpu).expect("builds");

        let mut image = table.image().to_vec();
        let pos = 16 + (flip_pos_seed as usize % (image.len() - 16));
        image[pos] ^= flip_byte;
        let affected_block = pos - 16; // byte offset in entry region
        let affected_entry = affected_block / 16;

        // RAM semantics: out-of-range reads (a corrupted next pointer can
        // point anywhere) return zeros rather than faulting.
        let mut read = |addr: u64, len: usize| -> Vec<u8> {
            (0..len)
                .map(|i| image.get(addr as usize + i).copied().unwrap_or(0))
                .collect()
        };
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(&module, block));
            let lookup = table.lookup_with(&mut read, block.bb_addr);
            // If this block's chain includes the tampered entry, it must
            // NOT digest-match via that entry. Blocks whose chains avoid
            // the tampered entry still match; we only require that no
            // FORGED match appears — i.e. every reported match must equal
            // the honest one.
            let honest = table.lookup(block.bb_addr);
            let count = |l: &rev_sigtable::ChainLookup| {
                l.variants.iter().filter(|v| {
                    let succ = v.bound_succs.first().copied().unwrap_or(0);
                    let pred = v.bound_pred.unwrap_or(0);
                    v.digest == Some(entry_digest(&key, block.bb_addr, &body, succ, pred).0)
                }).count()
            };
            prop_assert!(count(&lookup) <= count(&honest),
                "tampering at entry {} produced an extra match for {:#x}",
                affected_entry, block.bb_addr);
        }
    }

    /// Table construction is deterministic in (module, key, mode).
    #[test]
    fn deterministic_build(shape in proptest::collection::vec((1u8..6, any::<bool>()), 1..10)) {
        let module = build_module(&shape);
        let cfg = Cfg::analyze(&module, BbLimits::default()).expect("analyzes");
        let key = SignatureKey::from_seed(11);
        let cpu = Aes128::new([9; 16]);
        for mode in [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly] {
            let a = build_table(&module, &cfg, &key, mode, &cpu).expect("builds");
            let b = build_table(&module, &cfg, &key, mode, &cpu).expect("builds");
            prop_assert_eq!(a.image(), b.image());
        }
    }
}
