//! Architectural register names.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FREGS: usize = 32;

/// The hardwired zero register (`r0` always reads 0; writes are discarded).
pub const REG_ZERO: Reg = Reg::R0;
/// ABI stack pointer. `Call` pushes the return address at `[sp - 8]`,
/// `Ret` pops it — so return addresses live in simulated memory and are
/// corruptible, which is exactly what ROP-style attacks exploit.
pub const REG_SP: Reg = Reg::R29;
/// ABI frame pointer (used by generated workloads).
pub const REG_FP: Reg = Reg::R28;
/// Register that generated workloads dedicate to their in-program linear
/// congruential generator, which drives data-dependent branch outcomes.
pub const REG_LCG: Reg = Reg::R27;

macro_rules! define_reg {
    ($(#[$meta:meta])* $name:ident, $n:expr, $($variant:ident = $idx:expr),+ $(,)?) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum $name {
            $(#[allow(missing_docs)] $variant = $idx),+
        }

        impl $name {
            /// Returns the register's index in `0..$n`.
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }

            /// Constructs a register from an index.
            ///
            /// Returns `None` if `idx >= $n`.
            #[inline]
            pub const fn from_index(idx: u8) -> Option<Self> {
                if (idx as usize) < $n {
                    // SAFETY-free: exhaustive match via transmute-equivalent table.
                    Some(match idx {
                        $($idx => Self::$variant,)+
                        _ => unreachable!(),
                    })
                } else {
                    None
                }
            }

            /// Iterator over every register, in index order.
            pub fn all() -> impl Iterator<Item = Self> {
                (0..$n as u8).map(|i| Self::from_index(i).expect("index in range"))
            }
        }

        impl From<$name> for u8 {
            #[inline]
            fn from(r: $name) -> u8 {
                r as u8
            }
        }

        impl TryFrom<u8> for $name {
            type Error = InvalidRegError;

            #[inline]
            fn try_from(v: u8) -> Result<Self, InvalidRegError> {
                Self::from_index(v).ok_or(InvalidRegError(v))
            }
        }
    };
}

define_reg!(
    /// An architectural integer register (`r0`–`r31`).
    ///
    /// `r0` is hardwired to zero. See [`REG_SP`], [`REG_FP`], [`REG_LCG`]
    /// for ABI role assignments used by the workload generator.
    Reg, NUM_REGS,
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
);

define_reg!(
    /// An architectural floating-point register (`f0`–`f31`).
    FReg, NUM_FREGS,
    F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
    F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14, F15 = 15,
    F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20, F21 = 21, F22 = 22, F23 = 23,
    F24 = 24, F25 = 25, F26 = 26, F27 = 27, F28 = 28, F29 = 29, F30 = 30, F31 = 31,
);

/// Error returned when converting an out-of-range index into a register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRegError(pub u8);

impl fmt::Display for InvalidRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range", self.0)
    }
}

impl std::error::Error for InvalidRegError {}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..NUM_REGS as u8 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i as usize);
            assert_eq!(u8::from(r), i);
        }
        for i in 0..NUM_FREGS as u8 {
            let r = FReg::from_index(i).unwrap();
            assert_eq!(r.index(), i as usize);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(FReg::from_index(255), None);
        assert!(Reg::try_from(200u8).is_err());
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        assert_eq!(regs[0], Reg::R0);
        assert_eq!(regs[31], Reg::R31);
    }

    #[test]
    fn display_is_conventional() {
        assert_eq!(Reg::R29.to_string(), "r29");
        assert_eq!(FReg::F3.to_string(), "f3");
        assert_eq!(REG_SP, Reg::R29);
    }
}
