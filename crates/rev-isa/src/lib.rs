//! # rev-isa — a synthetic byte-encoded ISA for the REV simulator
//!
//! The REV paper (MICRO 2014) evaluates on the x86-64 ISA via the MARSS
//! full-system simulator. REV itself is ISA-agnostic: it hashes the raw
//! *bytes* of each basic block as instructions are fetched and keys all
//! validation state off the *address* of the control-flow instruction that
//! terminates a basic block. This crate provides a compact load/store ISA
//! with **variable-length byte encodings** (1–10 bytes, mimicking x86's
//! variable-length property that REV's byte-stream hashing must handle) and
//! the full control-flow taxonomy REV distinguishes:
//!
//! * PC-relative conditional branches (validated implicitly via the BB hash),
//! * direct jumps and calls (also implicit),
//! * **computed** jumps and calls (explicit target validation),
//! * returns (delayed validation, Sec. V.A of the paper),
//! * syscalls and halt (BB terminators).
//!
//! # Example
//!
//! ```
//! use rev_isa::{Instruction, Reg, decode, encoded_len};
//!
//! let insn = Instruction::AddI { rd: Reg::R1, rs: Reg::R2, imm: 42 };
//! let bytes = insn.encode();
//! assert_eq!(bytes.len(), encoded_len(&insn));
//! let (decoded, len) = decode(&bytes).expect("round trip");
//! assert_eq!(decoded, insn);
//! assert_eq!(len, bytes.len());
//! ```

mod instr;
mod reg;

pub use instr::{
    decode, encoded_len, AluOp, BranchCond, DecodeError, FpuOp, InstrClass, Instruction,
    MAX_INSTR_LEN,
};
pub use reg::{FReg, Reg, NUM_FREGS, NUM_REGS, REG_FP, REG_LCG, REG_SP, REG_ZERO};
