//! Instruction set definition, byte encoding, and decoding.
//!
//! Encodings are variable length (1–10 bytes): one opcode byte followed by
//! operand bytes. Branch/jump displacements are relative to the address of
//! the *next* instruction (i.e. target = addr + len + disp), matching the
//! common x86 convention the paper's substrate simulated.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Maximum length in bytes of any encoded instruction.
pub const MAX_INSTR_LEN: usize = 10;

/// Condition tested by a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if `rs1 == rs2`.
    Eq,
    /// Branch if `rs1 != rs2`.
    Ne,
    /// Branch if `rs1 < rs2` (signed).
    Lt,
    /// Branch if `rs1 >= rs2` (signed).
    Ge,
    /// Branch if `rs1 < rs2` (unsigned).
    Ltu,
    /// Branch if `rs1 >= rs2` (unsigned).
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two operand values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    fn code(self) -> u8 {
        match self {
            BranchCond::Eq => 0,
            BranchCond::Ne => 1,
            BranchCond::Lt => 2,
            BranchCond::Ge => 3,
            BranchCond::Ltu => 4,
            BranchCond::Geu => 5,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => BranchCond::Eq,
            1 => BranchCond::Ne,
            2 => BranchCond::Lt,
            3 => BranchCond::Ge,
            4 => BranchCond::Ltu,
            5 => BranchCond::Geu,
            _ => return None,
        })
    }
}

/// Binary integer ALU operation selector for the three-register form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (by low 6 bits of rhs).
    Shl,
    /// Logical right shift (by low 6 bits of rhs).
    Shr,
    /// Wrapping multiplication.
    Mul,
    /// Set to 1 if lhs < rhs (signed), else 0.
    Slt,
}

impl AluOp {
    /// Applies the operation to two operand values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
        }
    }

    fn code(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::And => 2,
            AluOp::Or => 3,
            AluOp::Xor => 4,
            AluOp::Shl => 5,
            AluOp::Shr => 6,
            AluOp::Mul => 7,
            AluOp::Slt => 8,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::And,
            3 => AluOp::Or,
            4 => AluOp::Xor,
            5 => AluOp::Shl,
            6 => AluOp::Shr,
            7 => AluOp::Mul,
            8 => AluOp::Slt,
            _ => return None,
        })
    }
}

/// Binary floating-point operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Floating add.
    Add,
    /// Floating subtract.
    Sub,
    /// Floating multiply.
    Mul,
    /// Floating divide.
    Div,
}

impl FpuOp {
    /// Applies the operation to two `f64` operands.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::Add => a + b,
            FpuOp::Sub => a - b,
            FpuOp::Mul => a * b,
            FpuOp::Div => a / b,
        }
    }

    fn code(self) -> u8 {
        match self {
            FpuOp::Add => 0,
            FpuOp::Sub => 1,
            FpuOp::Mul => 2,
            FpuOp::Div => 3,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => FpuOp::Add,
            1 => FpuOp::Sub,
            2 => FpuOp::Mul,
            3 => FpuOp::Div,
            _ => return None,
        })
    }
}

/// A decoded instruction.
///
/// Displacements (`disp`) in control-flow instructions are relative to the
/// address immediately after the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// No operation (1 byte).
    Nop,
    /// Stop the machine (1 byte). Terminates a basic block.
    Halt,
    /// Three-register integer ALU operation (4 bytes).
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register–immediate addition (7 bytes).
    AddI {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate addend.
        imm: i32,
    },
    /// Register–immediate bitwise AND (7 bytes).
    AndI {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate mask.
        imm: i32,
    },
    /// Register–immediate XOR (7 bytes).
    XorI {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// Register–immediate multiply (7 bytes).
    MulI {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate multiplicand.
        imm: i32,
    },
    /// Load a 64-bit immediate into a register (10 bytes).
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Register move (3 bytes).
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// Three-register floating-point operation (4 bytes).
    Fpu {
        /// Operation selector.
        op: FpuOp,
        /// Destination register.
        fd: FReg,
        /// First source register.
        fs1: FReg,
        /// Second source register.
        fs2: FReg,
    },
    /// Floating-point register move (3 bytes).
    FMov {
        /// Destination register.
        fd: FReg,
        /// Source register.
        fs: FReg,
    },
    /// Convert integer to floating point (3 bytes).
    CvtIF {
        /// Destination FP register.
        fd: FReg,
        /// Source integer register.
        rs: Reg,
    },
    /// Convert floating point to integer (3 bytes).
    CvtFI {
        /// Destination integer register.
        rd: Reg,
        /// Source FP register.
        fs: FReg,
    },
    /// 64-bit load: `rd = mem[rbase + off]` (7 bytes).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rbase: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// 64-bit store: `mem[rbase + off] = rs` (7 bytes).
    Store {
        /// Source (value) register.
        rs: Reg,
        /// Base address register.
        rbase: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// 64-bit FP load (7 bytes).
    LoadF {
        /// Destination FP register.
        fd: FReg,
        /// Base address register.
        rbase: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// 64-bit FP store (7 bytes).
    StoreF {
        /// Source FP register.
        fs: FReg,
        /// Base address register.
        rbase: Reg,
        /// Signed byte offset.
        off: i32,
    },
    /// PC-relative conditional branch (8 bytes). Terminates a basic block.
    Branch {
        /// Condition to test.
        cond: BranchCond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Displacement from the next instruction when taken.
        disp: i32,
    },
    /// PC-relative unconditional jump (6 bytes). Terminates a basic block.
    Jmp {
        /// Displacement from the next instruction.
        disp: i32,
    },
    /// PC-relative direct call (6 bytes). Pushes the return address at
    /// `[sp - 8]` and decrements `sp`. Terminates a basic block.
    Call {
        /// Displacement from the next instruction.
        disp: i32,
    },
    /// Computed (register-indirect) jump (2 bytes). Terminates a basic
    /// block; its target is validated explicitly by REV.
    JmpInd {
        /// Register holding the target address.
        rt: Reg,
    },
    /// Computed (register-indirect) call (2 bytes). Pushes the return
    /// address like [`Instruction::Call`]. Terminates a basic block; its
    /// target is validated explicitly by REV.
    CallInd {
        /// Register holding the target address.
        rt: Reg,
    },
    /// Return (1 byte): pops the return address from `[sp]`, increments
    /// `sp`. Terminates a basic block; validated by REV's delayed return
    /// validation (paper Sec. V.A).
    Ret,
    /// System call (3 bytes). Terminates a basic block.
    Syscall {
        /// Service number.
        num: u16,
    },
}

/// Broad execution class of an instruction, used by the pipeline model to
/// pick functional units and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Simple integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/sub/mul/mov/convert.
    Fp,
    /// Floating-point divide (long latency, unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Direct unconditional jump.
    Jump,
    /// Direct call (also performs a store of the return address).
    CallDirect,
    /// Computed jump.
    JumpIndirect,
    /// Computed call (also performs a store of the return address).
    CallIndirect,
    /// Return (also performs a load of the return address).
    Return,
    /// System call.
    Syscall,
    /// No-op / halt.
    Other,
}

// Opcode byte assignments. Grouped so unknown bytes are dense and easy to
// reject.
const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_RET: u8 = 0x02;
const OP_ALU_BASE: u8 = 0x10; // 0x10..=0x18 indexed by AluOp::code
const OP_ADDI: u8 = 0x20;
const OP_ANDI: u8 = 0x21;
const OP_XORI: u8 = 0x22;
const OP_MULI: u8 = 0x23;
const OP_LI: u8 = 0x24;
const OP_MOV: u8 = 0x25;
const OP_FPU_BASE: u8 = 0x30; // 0x30..=0x33 indexed by FpuOp::code
const OP_FMOV: u8 = 0x34;
const OP_CVTIF: u8 = 0x35;
const OP_CVTFI: u8 = 0x36;
const OP_LOAD: u8 = 0x40;
const OP_STORE: u8 = 0x41;
const OP_LOADF: u8 = 0x42;
const OP_STOREF: u8 = 0x43;
const OP_BRANCH_BASE: u8 = 0x50; // 0x50..=0x55 indexed by BranchCond::code
const OP_JMP: u8 = 0x60;
const OP_CALL: u8 = 0x61;
const OP_JMPIND: u8 = 0x62;
const OP_CALLIND: u8 = 0x63;
const OP_SYSCALL: u8 = 0x70;

impl Instruction {
    /// Encodes the instruction into its byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAX_INSTR_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Appends the instruction's byte encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Instruction::Nop => out.push(OP_NOP),
            Instruction::Halt => out.push(OP_HALT),
            Instruction::Ret => out.push(OP_RET),
            Instruction::Alu { op, rd, rs1, rs2 } => {
                out.extend_from_slice(&[
                    OP_ALU_BASE + op.code(),
                    rd.into(),
                    rs1.into(),
                    rs2.into(),
                ]);
            }
            Instruction::AddI { rd, rs, imm } => enc_ri(out, OP_ADDI, rd, rs, imm),
            Instruction::AndI { rd, rs, imm } => enc_ri(out, OP_ANDI, rd, rs, imm),
            Instruction::XorI { rd, rs, imm } => enc_ri(out, OP_XORI, rd, rs, imm),
            Instruction::MulI { rd, rs, imm } => enc_ri(out, OP_MULI, rd, rs, imm),
            Instruction::Li { rd, imm } => {
                out.push(OP_LI);
                out.push(rd.into());
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instruction::Mov { rd, rs } => out.extend_from_slice(&[OP_MOV, rd.into(), rs.into()]),
            Instruction::Fpu { op, fd, fs1, fs2 } => {
                out.extend_from_slice(&[
                    OP_FPU_BASE + op.code(),
                    fd.into(),
                    fs1.into(),
                    fs2.into(),
                ]);
            }
            Instruction::FMov { fd, fs } => out.extend_from_slice(&[OP_FMOV, fd.into(), fs.into()]),
            Instruction::CvtIF { fd, rs } => {
                out.extend_from_slice(&[OP_CVTIF, fd.into(), rs.into()])
            }
            Instruction::CvtFI { rd, fs } => {
                out.extend_from_slice(&[OP_CVTFI, rd.into(), fs.into()])
            }
            Instruction::Load { rd, rbase, off } => enc_mem(out, OP_LOAD, rd.into(), rbase, off),
            Instruction::Store { rs, rbase, off } => enc_mem(out, OP_STORE, rs.into(), rbase, off),
            Instruction::LoadF { fd, rbase, off } => enc_mem(out, OP_LOADF, fd.into(), rbase, off),
            Instruction::StoreF { fs, rbase, off } => {
                enc_mem(out, OP_STOREF, fs.into(), rbase, off)
            }
            Instruction::Branch { cond, rs1, rs2, disp } => {
                out.push(OP_BRANCH_BASE + cond.code());
                out.push(rs1.into());
                out.push(rs2.into());
                out.extend_from_slice(&disp.to_le_bytes());
                out.push(0); // pad to 8 bytes so branches are distinctive in the byte stream
            }
            Instruction::Jmp { disp } => {
                out.push(OP_JMP);
                out.extend_from_slice(&disp.to_le_bytes());
                out.push(0);
            }
            Instruction::Call { disp } => {
                out.push(OP_CALL);
                out.extend_from_slice(&disp.to_le_bytes());
                out.push(0);
            }
            Instruction::JmpInd { rt } => out.extend_from_slice(&[OP_JMPIND, rt.into()]),
            Instruction::CallInd { rt } => out.extend_from_slice(&[OP_CALLIND, rt.into()]),
            Instruction::Syscall { num } => {
                out.push(OP_SYSCALL);
                out.extend_from_slice(&num.to_le_bytes());
            }
        }
    }

    /// Returns the instruction's execution class.
    pub fn class(&self) -> InstrClass {
        match self {
            Instruction::Nop | Instruction::Halt => InstrClass::Other,
            Instruction::Alu { op: AluOp::Mul, .. } | Instruction::MulI { .. } => {
                InstrClass::IntMul
            }
            Instruction::Alu { .. }
            | Instruction::AddI { .. }
            | Instruction::AndI { .. }
            | Instruction::XorI { .. }
            | Instruction::Li { .. }
            | Instruction::Mov { .. } => InstrClass::IntAlu,
            Instruction::Fpu { op: FpuOp::Div, .. } => InstrClass::FpDiv,
            Instruction::Fpu { .. }
            | Instruction::FMov { .. }
            | Instruction::CvtIF { .. }
            | Instruction::CvtFI { .. } => InstrClass::Fp,
            Instruction::Load { .. } | Instruction::LoadF { .. } => InstrClass::Load,
            Instruction::Store { .. } | Instruction::StoreF { .. } => InstrClass::Store,
            Instruction::Branch { .. } => InstrClass::CondBranch,
            Instruction::Jmp { .. } => InstrClass::Jump,
            Instruction::Call { .. } => InstrClass::CallDirect,
            Instruction::JmpInd { .. } => InstrClass::JumpIndirect,
            Instruction::CallInd { .. } => InstrClass::CallIndirect,
            Instruction::Ret => InstrClass::Return,
            Instruction::Syscall { .. } => InstrClass::Syscall,
        }
    }

    /// Returns `true` if this instruction terminates a basic block.
    ///
    /// These are the instructions at whose commit REV performs the
    /// signature-cache authentication check (paper Sec. IV.A: "a branch,
    /// jump, return, exit etc.").
    pub fn is_bb_terminator(&self) -> bool {
        matches!(
            self.class(),
            InstrClass::CondBranch
                | InstrClass::Jump
                | InstrClass::CallDirect
                | InstrClass::JumpIndirect
                | InstrClass::CallIndirect
                | InstrClass::Return
                | InstrClass::Syscall
        ) || matches!(self, Instruction::Halt)
    }

    /// Returns `true` for control-flow instructions whose target is computed
    /// at run time (computed jumps/calls and returns) — the cases whose
    /// targets REV validates explicitly against the reference signature.
    pub fn has_computed_target(&self) -> bool {
        matches!(
            self.class(),
            InstrClass::JumpIndirect | InstrClass::CallIndirect | InstrClass::Return
        )
    }

    /// Returns `true` if this instruction writes memory (stores; calls push
    /// the return address).
    pub fn writes_memory(&self) -> bool {
        matches!(
            self.class(),
            InstrClass::Store | InstrClass::CallDirect | InstrClass::CallIndirect
        )
    }

    /// Returns `true` if this instruction reads memory (loads; returns pop
    /// the return address).
    pub fn reads_memory(&self) -> bool {
        matches!(self.class(), InstrClass::Load | InstrClass::Return)
    }
}

#[inline]
fn enc_ri(out: &mut Vec<u8>, op: u8, rd: Reg, rs: Reg, imm: i32) {
    out.push(op);
    out.push(rd.into());
    out.push(rs.into());
    out.extend_from_slice(&imm.to_le_bytes());
}

#[inline]
fn enc_mem(out: &mut Vec<u8>, op: u8, r: u8, rbase: Reg, off: i32) {
    out.push(op);
    out.push(r);
    out.push(rbase.into());
    out.extend_from_slice(&off.to_le_bytes());
}

/// Returns the encoded length in bytes of an instruction without encoding it.
pub fn encoded_len(insn: &Instruction) -> usize {
    match insn {
        Instruction::Nop | Instruction::Halt | Instruction::Ret => 1,
        Instruction::JmpInd { .. } | Instruction::CallInd { .. } => 2,
        Instruction::Mov { .. }
        | Instruction::FMov { .. }
        | Instruction::CvtIF { .. }
        | Instruction::CvtFI { .. }
        | Instruction::Syscall { .. } => 3,
        Instruction::Alu { .. } | Instruction::Fpu { .. } => 4,
        Instruction::Jmp { .. } | Instruction::Call { .. } => 6,
        Instruction::AddI { .. }
        | Instruction::AndI { .. }
        | Instruction::XorI { .. }
        | Instruction::MulI { .. }
        | Instruction::Load { .. }
        | Instruction::Store { .. }
        | Instruction::LoadF { .. }
        | Instruction::StoreF { .. } => 7,
        Instruction::Branch { .. } => 8,
        Instruction::Li { .. } => 10,
    }
}

/// Error returned when a byte sequence cannot be decoded as an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not assigned to any instruction.
    UnknownOpcode(u8),
    /// A register field held an out-of-range index.
    InvalidRegister(u8),
    /// The byte stream ended before the instruction's operands.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode byte {op:#04x}"),
            DecodeError::InvalidRegister(r) => write!(f, "invalid register index {r}"),
            DecodeError::Truncated => write!(f, "instruction truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one instruction from the start of `bytes`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode is unknown, a register index is out
/// of range, or `bytes` is shorter than the instruction's encoding.
pub fn decode(bytes: &[u8]) -> Result<(Instruction, usize), DecodeError> {
    let op = *bytes.first().ok_or(DecodeError::Truncated)?;
    let reg = |i: usize| -> Result<Reg, DecodeError> {
        let b = *bytes.get(i).ok_or(DecodeError::Truncated)?;
        Reg::from_index(b).ok_or(DecodeError::InvalidRegister(b))
    };
    let freg = |i: usize| -> Result<FReg, DecodeError> {
        let b = *bytes.get(i).ok_or(DecodeError::Truncated)?;
        FReg::from_index(b).ok_or(DecodeError::InvalidRegister(b))
    };
    let i32_at = |i: usize| -> Result<i32, DecodeError> {
        let s = bytes.get(i..i + 4).ok_or(DecodeError::Truncated)?;
        Ok(i32::from_le_bytes(s.try_into().expect("4-byte slice")))
    };

    let (insn, len) = match op {
        OP_NOP => (Instruction::Nop, 1),
        OP_HALT => (Instruction::Halt, 1),
        OP_RET => (Instruction::Ret, 1),
        o if (OP_ALU_BASE..OP_ALU_BASE + 9).contains(&o) => {
            let aop = AluOp::from_code(o - OP_ALU_BASE).expect("range checked");
            (Instruction::Alu { op: aop, rd: reg(1)?, rs1: reg(2)?, rs2: reg(3)? }, 4)
        }
        OP_ADDI => (Instruction::AddI { rd: reg(1)?, rs: reg(2)?, imm: i32_at(3)? }, 7),
        OP_ANDI => (Instruction::AndI { rd: reg(1)?, rs: reg(2)?, imm: i32_at(3)? }, 7),
        OP_XORI => (Instruction::XorI { rd: reg(1)?, rs: reg(2)?, imm: i32_at(3)? }, 7),
        OP_MULI => (Instruction::MulI { rd: reg(1)?, rs: reg(2)?, imm: i32_at(3)? }, 7),
        OP_LI => {
            let s = bytes.get(2..10).ok_or(DecodeError::Truncated)?;
            (Instruction::Li { rd: reg(1)?, imm: u64::from_le_bytes(s.try_into().expect("8")) }, 10)
        }
        OP_MOV => (Instruction::Mov { rd: reg(1)?, rs: reg(2)? }, 3),
        o if (OP_FPU_BASE..OP_FPU_BASE + 4).contains(&o) => {
            let fop = FpuOp::from_code(o - OP_FPU_BASE).expect("range checked");
            (Instruction::Fpu { op: fop, fd: freg(1)?, fs1: freg(2)?, fs2: freg(3)? }, 4)
        }
        OP_FMOV => (Instruction::FMov { fd: freg(1)?, fs: freg(2)? }, 3),
        OP_CVTIF => (Instruction::CvtIF { fd: freg(1)?, rs: reg(2)? }, 3),
        OP_CVTFI => (Instruction::CvtFI { rd: reg(1)?, fs: freg(2)? }, 3),
        OP_LOAD => (Instruction::Load { rd: reg(1)?, rbase: reg(2)?, off: i32_at(3)? }, 7),
        OP_STORE => (Instruction::Store { rs: reg(1)?, rbase: reg(2)?, off: i32_at(3)? }, 7),
        OP_LOADF => (Instruction::LoadF { fd: freg(1)?, rbase: reg(2)?, off: i32_at(3)? }, 7),
        OP_STOREF => (Instruction::StoreF { fs: freg(1)?, rbase: reg(2)?, off: i32_at(3)? }, 7),
        o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => {
            let cond = BranchCond::from_code(o - OP_BRANCH_BASE).expect("range checked");
            if bytes.len() < 8 {
                return Err(DecodeError::Truncated);
            }
            (Instruction::Branch { cond, rs1: reg(1)?, rs2: reg(2)?, disp: i32_at(3)? }, 8)
        }
        OP_JMP => {
            if bytes.len() < 6 {
                return Err(DecodeError::Truncated);
            }
            (Instruction::Jmp { disp: i32_at(1)? }, 6)
        }
        OP_CALL => {
            if bytes.len() < 6 {
                return Err(DecodeError::Truncated);
            }
            (Instruction::Call { disp: i32_at(1)? }, 6)
        }
        OP_JMPIND => (Instruction::JmpInd { rt: reg(1)? }, 2),
        OP_CALLIND => (Instruction::CallInd { rt: reg(1)? }, 2),
        OP_SYSCALL => {
            let s = bytes.get(1..3).ok_or(DecodeError::Truncated)?;
            (Instruction::Syscall { num: u16::from_le_bytes(s.try_into().expect("2")) }, 3)
        }
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    Ok((insn, len))
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::Halt => write!(f, "halt"),
            Instruction::Ret => write!(f, "ret"),
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
            }
            Instruction::AddI { rd, rs, imm } => write!(f, "addi {rd}, {rs}, {imm}"),
            Instruction::AndI { rd, rs, imm } => write!(f, "andi {rd}, {rs}, {imm:#x}"),
            Instruction::XorI { rd, rs, imm } => write!(f, "xori {rd}, {rs}, {imm:#x}"),
            Instruction::MulI { rd, rs, imm } => write!(f, "muli {rd}, {rs}, {imm}"),
            Instruction::Li { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Instruction::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instruction::Fpu { op, fd, fs1, fs2 } => {
                write!(f, "f{} {fd}, {fs1}, {fs2}", format!("{op:?}").to_lowercase())
            }
            Instruction::FMov { fd, fs } => write!(f, "fmov {fd}, {fs}"),
            Instruction::CvtIF { fd, rs } => write!(f, "cvtif {fd}, {rs}"),
            Instruction::CvtFI { rd, fs } => write!(f, "cvtfi {rd}, {fs}"),
            Instruction::Load { rd, rbase, off } => write!(f, "ld {rd}, {off}({rbase})"),
            Instruction::Store { rs, rbase, off } => write!(f, "st {rs}, {off}({rbase})"),
            Instruction::LoadF { fd, rbase, off } => write!(f, "fld {fd}, {off}({rbase})"),
            Instruction::StoreF { fs, rbase, off } => write!(f, "fst {fs}, {off}({rbase})"),
            Instruction::Branch { cond, rs1, rs2, disp } => {
                write!(f, "b{} {rs1}, {rs2}, {disp:+}", format!("{cond:?}").to_lowercase())
            }
            Instruction::Jmp { disp } => write!(f, "jmp {disp:+}"),
            Instruction::Call { disp } => write!(f, "call {disp:+}"),
            Instruction::JmpInd { rt } => write!(f, "jmp *{rt}"),
            Instruction::CallInd { rt } => write!(f, "call *{rt}"),
            Instruction::Syscall { num } => write!(f, "syscall {num}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Reg, REG_SP};

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Nop,
            Instruction::Halt,
            Instruction::Ret,
            Instruction::Alu { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 },
            Instruction::Alu { op: AluOp::Slt, rd: Reg::R31, rs1: Reg::R0, rs2: Reg::R15 },
            Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: -8 },
            Instruction::AndI { rd: Reg::R5, rs: Reg::R27, imm: 0xff },
            Instruction::XorI { rd: Reg::R6, rs: Reg::R6, imm: i32::MIN },
            Instruction::MulI { rd: Reg::R7, rs: Reg::R7, imm: 6364136 },
            Instruction::Li { rd: Reg::R8, imm: u64::MAX },
            Instruction::Mov { rd: Reg::R9, rs: Reg::R10 },
            Instruction::Fpu { op: FpuOp::Div, fd: FReg::F1, fs1: FReg::F2, fs2: FReg::F3 },
            Instruction::FMov { fd: FReg::F4, fs: FReg::F5 },
            Instruction::CvtIF { fd: FReg::F6, rs: Reg::R11 },
            Instruction::CvtFI { rd: Reg::R12, fs: FReg::F7 },
            Instruction::Load { rd: Reg::R13, rbase: REG_SP, off: 16 },
            Instruction::Store { rs: Reg::R14, rbase: REG_SP, off: -24 },
            Instruction::LoadF { fd: FReg::F8, rbase: Reg::R15, off: 0 },
            Instruction::StoreF { fs: FReg::F9, rbase: Reg::R16, off: 8 },
            Instruction::Branch { cond: BranchCond::Ne, rs1: Reg::R1, rs2: Reg::R0, disp: -128 },
            Instruction::Jmp { disp: 1024 },
            Instruction::Call { disp: -4096 },
            Instruction::JmpInd { rt: Reg::R17 },
            Instruction::CallInd { rt: Reg::R18 },
            Instruction::Syscall { num: 60 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for insn in sample_instructions() {
            let bytes = insn.encode();
            assert_eq!(bytes.len(), encoded_len(&insn), "length mismatch for {insn}");
            let (back, len) = decode(&bytes).expect("decodes");
            assert_eq!(back, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn decode_with_trailing_bytes_uses_only_prefix() {
        let insn = Instruction::Mov { rd: Reg::R1, rs: Reg::R2 };
        let mut bytes = insn.encode();
        bytes.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        let (back, len) = decode(&bytes).unwrap();
        assert_eq!(back, insn);
        assert_eq!(len, 3);
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(&[0xff, 0, 0, 0]), Err(DecodeError::UnknownOpcode(0xff)));
        assert_eq!(decode(&[0x80]), Err(DecodeError::UnknownOpcode(0x80)));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        let insn = Instruction::Li { rd: Reg::R1, imm: 7 };
        let bytes = insn.encode();
        for cut in 1..bytes.len() {
            assert_eq!(decode(&bytes[..cut]), Err(DecodeError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn invalid_register_rejected() {
        // Mov with register index 99.
        assert_eq!(decode(&[0x25, 99, 0]), Err(DecodeError::InvalidRegister(99)));
    }

    #[test]
    fn terminator_classification() {
        assert!(Instruction::Ret.is_bb_terminator());
        assert!(Instruction::Halt.is_bb_terminator());
        assert!(Instruction::Syscall { num: 0 }.is_bb_terminator());
        assert!(Instruction::Jmp { disp: 0 }.is_bb_terminator());
        assert!(Instruction::Branch { cond: BranchCond::Eq, rs1: Reg::R0, rs2: Reg::R0, disp: 0 }
            .is_bb_terminator());
        assert!(!Instruction::Nop.is_bb_terminator());
        assert!(!Instruction::Load { rd: Reg::R1, rbase: Reg::R2, off: 0 }.is_bb_terminator());
    }

    #[test]
    fn computed_target_classification() {
        assert!(Instruction::Ret.has_computed_target());
        assert!(Instruction::JmpInd { rt: Reg::R1 }.has_computed_target());
        assert!(Instruction::CallInd { rt: Reg::R1 }.has_computed_target());
        assert!(!Instruction::Jmp { disp: 4 }.has_computed_target());
        assert!(!Instruction::Call { disp: 4 }.has_computed_target());
    }

    #[test]
    fn memory_effects() {
        assert!(Instruction::Call { disp: 0 }.writes_memory());
        assert!(Instruction::CallInd { rt: Reg::R1 }.writes_memory());
        assert!(Instruction::Ret.reads_memory());
        assert!(Instruction::Store { rs: Reg::R1, rbase: Reg::R2, off: 0 }.writes_memory());
        assert!(!Instruction::Store { rs: Reg::R1, rbase: Reg::R2, off: 0 }.reads_memory());
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(!BranchCond::Ne.eval(5, 5));
        assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
        assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX)); // 0 >= -1 signed
    }

    #[test]
    fn alu_eval() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::Shl.eval(1, 65), 2); // shift masked to 6 bits
        assert_eq!(AluOp::Shr.eval(0x80, 4), 8);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1);
        assert_eq!(AluOp::Slt.eval(0, u64::MAX), 0);
        assert_eq!(AluOp::Mul.eval(3, 5), 15);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn classes_are_stable() {
        assert_eq!(
            Instruction::MulI { rd: Reg::R1, rs: Reg::R1, imm: 3 }.class(),
            InstrClass::IntMul
        );
        assert_eq!(
            Instruction::Fpu { op: FpuOp::Div, fd: FReg::F0, fs1: FReg::F0, fs2: FReg::F0 }.class(),
            InstrClass::FpDiv
        );
        assert_eq!(Instruction::Ret.class(), InstrClass::Return);
    }

    #[test]
    fn opcode_space_is_dense_and_total() {
        // Every byte either decodes (with a fully valid payload) or is a
        // clean UnknownOpcode — no panics, no aliasing surprises.
        let mut known = 0;
        for op in 0u8..=255 {
            // Payload: all register fields 1, immediates small positive.
            let bytes = [op, 1, 1, 1, 1, 0, 0, 0, 0, 0];
            match decode(&bytes) {
                Ok((insn, len)) => {
                    known += 1;
                    assert!(len <= MAX_INSTR_LEN);
                    // Re-encoding must produce the same opcode byte.
                    assert_eq!(insn.encode()[0], op, "opcode {op:#04x} not stable");
                }
                Err(DecodeError::UnknownOpcode(b)) => assert_eq!(b, op),
                Err(other) => panic!("opcode {op:#04x}: unexpected error {other:?}"),
            }
        }
        // 3 singles + 9 ALU + 4 RI + li + mov + 4 FPU + 3 FP-moves
        // + 4 mem + 6 branches + 4 jumps/calls + syscall = 40.
        assert_eq!(known, 40, "opcode population changed — update the ISA docs");
    }

    #[test]
    fn display_formats() {
        let insn =
            Instruction::Branch { cond: BranchCond::Lt, rs1: Reg::R1, rs2: Reg::R2, disp: -4 };
        assert_eq!(insn.to_string(), "blt r1, r2, -4");
        assert_eq!(Instruction::JmpInd { rt: Reg::R5 }.to_string(), "jmp *r5");
    }
}
