//! Property-based round-trip tests for the ISA encoder/decoder.

use proptest::prelude::*;
use rev_isa::{decode, encoded_len, BranchCond, FReg, Instruction, Reg};
use rev_isa::{AluOp, FpuOp};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(|i| FReg::from_index(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
        Just(AluOp::Slt),
    ]
}

fn arb_fpu_op() -> impl Strategy<Value = FpuOp> {
    prop_oneof![Just(FpuOp::Add), Just(FpuOp::Sub), Just(FpuOp::Mul), Just(FpuOp::Div)]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Halt),
        Just(Instruction::Ret),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, imm)| Instruction::AddI {
            rd,
            rs,
            imm
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, imm)| Instruction::AndI {
            rd,
            rs,
            imm
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, imm)| Instruction::XorI {
            rd,
            rs,
            imm
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, imm)| Instruction::MulI {
            rd,
            rs,
            imm
        }),
        (arb_reg(), any::<u64>()).prop_map(|(rd, imm)| Instruction::Li { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instruction::Mov { rd, rs }),
        (arb_fpu_op(), arb_freg(), arb_freg(), arb_freg())
            .prop_map(|(op, fd, fs1, fs2)| Instruction::Fpu { op, fd, fs1, fs2 }),
        (arb_freg(), arb_freg()).prop_map(|(fd, fs)| Instruction::FMov { fd, fs }),
        (arb_freg(), arb_reg()).prop_map(|(fd, rs)| Instruction::CvtIF { fd, rs }),
        (arb_reg(), arb_freg()).prop_map(|(rd, fs)| Instruction::CvtFI { rd, fs }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rbase, off)| Instruction::Load {
            rd,
            rbase,
            off
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rs, rbase, off)| Instruction::Store {
            rs,
            rbase,
            off
        }),
        (arb_freg(), arb_reg(), any::<i32>()).prop_map(|(fd, rbase, off)| Instruction::LoadF {
            fd,
            rbase,
            off
        }),
        (arb_freg(), arb_reg(), any::<i32>()).prop_map(|(fs, rbase, off)| Instruction::StoreF {
            fs,
            rbase,
            off
        }),
        (arb_cond(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(cond, rs1, rs2, disp)| Instruction::Branch { cond, rs1, rs2, disp }),
        any::<i32>().prop_map(|disp| Instruction::Jmp { disp }),
        any::<i32>().prop_map(|disp| Instruction::Call { disp }),
        arb_reg().prop_map(|rt| Instruction::JmpInd { rt }),
        arb_reg().prop_map(|rt| Instruction::CallInd { rt }),
        any::<u16>().prop_map(|num| Instruction::Syscall { num }),
    ]
}

proptest! {
    /// Every instruction encodes and decodes back to itself, and the
    /// declared length matches the encoded byte count.
    #[test]
    fn round_trip(insn in arb_instruction()) {
        let bytes = insn.encode();
        prop_assert_eq!(bytes.len(), encoded_len(&insn));
        let (decoded, len) = decode(&bytes).unwrap();
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, bytes.len());
    }

    /// A sequence of instructions decodes back instruction-by-instruction —
    /// the property REV's front end relies on when walking the fetched byte
    /// stream.
    #[test]
    fn stream_round_trip(insns in proptest::collection::vec(arb_instruction(), 1..64)) {
        let mut bytes = Vec::new();
        for insn in &insns {
            insn.encode_into(&mut bytes);
        }
        let mut offset = 0;
        for insn in &insns {
            let (decoded, len) = decode(&bytes[offset..]).unwrap();
            prop_assert_eq!(&decoded, insn);
            offset += len;
        }
        prop_assert_eq!(offset, bytes.len());
    }

    /// Decoding never panics on arbitrary bytes (it may error).
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = decode(&bytes);
    }
}
