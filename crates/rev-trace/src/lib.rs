//! `rev-trace` — the observability layer of the REV simulator.
//!
//! The paper's whole evaluation (Figs. 8–12) is a story told in
//! counters: SC hit rates, CHG latency hiding, deferred-store occupancy,
//! validation stall cycles. This crate gives those counters one home and
//! three faces:
//!
//! * [`event`] — a zero-overhead-when-disabled **trace event bus**. Tap
//!   sites across `rev-cpu`, `rev-core`, and `rev-mem` emit cycle-stamped
//!   events ([`TraceEvent`]) into a shared ring buffer; when tracing is
//!   off (the default) each tap is a single branch and the payload is
//!   never constructed.
//! * [`metrics`] — a typed **metrics registry** ([`MetricRegistry`]:
//!   counters, gauges, log2-bucket histograms). Component stats structs
//!   implement [`MetricSink`] to project their hot-path fields into the
//!   registry under the names documented in `docs/METRICS.md`.
//! * [`snapshot`] — schema-versioned, deterministic **JSON baselines**
//!   ([`Snapshot`], rendered as `BENCH_rev.json`) and a regression
//!   [`compare`] used by the `rev-trace compare` subcommand and
//!   `scripts/check.sh`.
//! * [`ckpt`] — the **`rev-ckpt/1` binary checkpoint codec**
//!   ([`CkptWriter`] / [`CkptReader`]): a checksummed, schema-versioned
//!   envelope the simulator crates use to serialize suspended sessions
//!   (see `docs/CHECKPOINT.md`). Corruption is detected before a single
//!   field is parsed; a corrupt checkpoint can never be silently
//!   restored.
//! * [`fault`] — a deterministic, seeded **fault-injection substrate**
//!   ([`FaultInjector`]): the same null-handle pattern as the event bus,
//!   consulted at injection sites across the simulator layers and driven
//!   by `rev-chaos` campaigns (see `docs/FAULTS.md`).
//!
//! This crate is a dependency *leaf*: it knows nothing about the
//! simulator crates, which all depend on it. Event payload enums
//! ([`Verdict`], [`ProbeOutcome`]) therefore mirror — rather than
//! import — the simulator's types.

#![warn(missing_docs)]

pub mod ckpt;
pub mod event;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod snapshot;

pub use ckpt::{fnv1a64, CkptError, CkptReader, CkptWriter, CKPT_MAGIC, CKPT_SCHEMA, CKPT_VERSION};
pub use event::{EventKind, ProbeOutcome, TraceBus, TraceEvent, Verdict};
pub use fault::{FaultInjector, FaultKind, FaultLayer, FaultSpec, FAULT_LAYERS};
pub use json::Json;
pub use metrics::{Histogram, MetricRegistry, MetricSink, MetricValue, HISTOGRAM_BUCKETS};
pub use pool::parallel_map;
pub use snapshot::{compare, AttackRecord, CompareReport, Snapshot, SCHEMA};
