//! Schema-versioned baseline snapshots (`BENCH_rev.json`) and the
//! regression comparator behind `rev-trace compare`.
//!
//! A [`Snapshot`] is the machine-readable output of one benchmark run:
//! a `meta` object (run parameters and wall-clock timings — informative,
//! **excluded from comparison**), an `attacks` array (detection results
//! for the tampering demos), and a `profiles` map of
//! `profile → config → MetricRegistry`. Because the simulator is fully
//! deterministic, two runs of the same binary at the same scale produce
//! byte-identical snapshots, which makes [`compare`] a meaningful CI
//! gate: any metric drift is a real behaviour change, and drops in the
//! gate metrics (`cpu.ipc` down, `cpu.cycles` up) beyond the threshold
//! are flagged as regressions.

use crate::json::{self, Json, ParseError};
use crate::metrics::MetricRegistry;
use std::collections::BTreeMap;

/// The snapshot schema identifier. Bump the suffix when the layout
/// changes incompatibly; `compare` refuses mixed-schema pairs.
pub const SCHEMA: &str = "rev-trace/1";

/// Outcome of one tampering demo run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackRecord {
    /// Attack kind (e.g. `patch-branch`, `flip-bit`).
    pub kind: String,
    /// Whether the monitor flagged a violation.
    pub detected: bool,
    /// The violation class reported, if any.
    pub violation: Option<String>,
}

/// One benchmark run's complete machine-readable output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Run parameters and timings, in producer insertion order. Never
    /// compared — wall clock lives here so cross-machine diffs stay clean.
    pub meta: Vec<(String, Json)>,
    /// Tampering-demo outcomes.
    pub attacks: Vec<AttackRecord>,
    /// `profile name → config name → metrics`.
    pub profiles: BTreeMap<String, BTreeMap<String, MetricRegistry>>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Appends a meta entry (order preserved in the rendering).
    pub fn meta_entry(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Inserts one config's metrics under a profile.
    pub fn add_metrics(&mut self, profile: &str, config: &str, metrics: MetricRegistry) {
        self.profiles.entry(profile.to_string()).or_default().insert(config.to_string(), metrics);
    }

    /// Serializes to the `rev-trace/1` JSON layout.
    pub fn to_json(&self) -> Json {
        let attacks = Json::Arr(
            self.attacks
                .iter()
                .map(|a| {
                    Json::obj(vec![
                        ("kind", Json::Str(a.kind.clone())),
                        ("detected", Json::Bool(a.detected)),
                        ("violation", a.violation.clone().map(Json::Str).unwrap_or(Json::Null)),
                    ])
                })
                .collect(),
        );
        let profiles = Json::Obj(
            self.profiles
                .iter()
                .map(|(name, configs)| {
                    let cfgs = Json::Obj(
                        configs.iter().map(|(cfg, reg)| (cfg.clone(), reg.to_json())).collect(),
                    );
                    (name.clone(), cfgs)
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("meta", Json::Obj(self.meta.iter().map(|(k, v)| (k.clone(), v.clone())).collect())),
            ("attacks", attacks),
            ("profiles", profiles),
        ])
    }

    /// Renders the snapshot as pretty-printed JSON (2-space indent) —
    /// the on-disk `BENCH_rev.json` format.
    pub fn render(&self) -> String {
        self.to_json().render_pretty(2)
    }

    /// Reconstructs a snapshot from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message if the schema tag is missing/unknown or a
    /// section is malformed.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let schema = v.get("schema").and_then(Json::as_str).ok_or("missing \"schema\" tag")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {SCHEMA:?})"));
        }
        let mut snap = Snapshot::new();
        if let Some(Json::Obj(pairs)) = v.get("meta") {
            snap.meta = pairs.clone();
        }
        if let Some(Json::Arr(items)) = v.get("attacks") {
            for a in items {
                snap.attacks.push(AttackRecord {
                    kind: a
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("attack without \"kind\"")?
                        .to_string(),
                    detected: a
                        .get("detected")
                        .and_then(Json::as_bool)
                        .ok_or("attack without \"detected\"")?,
                    violation: a.get("violation").and_then(Json::as_str).map(str::to_string),
                });
            }
        }
        if let Some(Json::Obj(profiles)) = v.get("profiles") {
            for (name, configs) in profiles {
                let Json::Obj(cfgs) = configs else {
                    return Err(format!("profile {name:?} is not an object"));
                };
                for (cfg, reg) in cfgs {
                    let reg = MetricRegistry::from_json(reg)
                        .ok_or_else(|| format!("bad metrics in {name:?}/{cfg:?}"))?;
                    snap.add_metrics(name, cfg, reg);
                }
            }
        }
        Ok(snap)
    }

    /// Parses a snapshot from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or an unsupported layout.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e: ParseError| e.to_string())?;
        Snapshot::from_json(&v)
    }
}

/// Gate metrics: the comparator treats movement in the "worse" direction
/// beyond the threshold as a regression. Everything else is info-only.
const GATES: &[(&str, Direction)] =
    &[("cpu.ipc", Direction::HigherIsBetter), ("cpu.cycles", Direction::LowerIsBetter)];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One metric that moved between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Profile name.
    pub profile: String,
    /// Config name within the profile.
    pub config: String,
    /// Metric name.
    pub metric: String,
    /// Magnitude in the baseline (histograms compare by mean).
    pub before: f64,
    /// Magnitude in the candidate.
    pub after: f64,
    /// `(after - before) / |before|`; `after` as-is when `before == 0`.
    pub rel_change: f64,
    /// Whether this is a gate metric moving the wrong way past the
    /// threshold.
    pub regression: bool,
}

/// The result of diffing two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Metrics whose magnitude changed, sorted by (profile, config, name).
    pub deltas: Vec<Delta>,
    /// `profile/config/metric` paths present only in the baseline.
    pub missing: Vec<String>,
    /// Paths present only in the candidate.
    pub added: Vec<String>,
    /// Attack demos whose detection outcome changed (`kind` values).
    pub attack_changes: Vec<String>,
}

impl CompareReport {
    /// Whether any gate metric regressed or a detection outcome flipped.
    pub fn has_regressions(&self) -> bool {
        !self.attack_changes.is_empty() || self.deltas.iter().any(|d| d.regression)
    }
}

fn rel_change(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        after
    } else {
        (after - before) / before.abs()
    }
}

/// Diffs `candidate` against `baseline`. `threshold` is the relative
/// change past which a gate metric counts as a regression (e.g. `0.02`
/// for 2%). The `meta` sections are ignored.
pub fn compare(baseline: &Snapshot, candidate: &Snapshot, threshold: f64) -> CompareReport {
    let mut report = CompareReport::default();

    let base_attacks: BTreeMap<&str, bool> =
        baseline.attacks.iter().map(|a| (a.kind.as_str(), a.detected)).collect();
    for a in &candidate.attacks {
        if let Some(&was) = base_attacks.get(a.kind.as_str()) {
            if was != a.detected {
                report.attack_changes.push(a.kind.clone());
            }
        }
    }

    for (profile, configs) in &baseline.profiles {
        for (config, base_reg) in configs {
            let cand_reg = candidate.profiles.get(profile).and_then(|c| c.get(config));
            let Some(cand_reg) = cand_reg else {
                report.missing.push(format!("{profile}/{config}"));
                continue;
            };
            for (name, base_val) in base_reg.iter() {
                let Some(cand_val) = cand_reg.get(name) else {
                    report.missing.push(format!("{profile}/{config}/{name}"));
                    continue;
                };
                let (before, after) = (base_val.magnitude(), cand_val.magnitude());
                if before == after {
                    continue;
                }
                let rel = rel_change(before, after);
                let regression = GATES.iter().any(|&(gate, dir)| {
                    name == gate
                        && match dir {
                            Direction::HigherIsBetter => rel < -threshold,
                            Direction::LowerIsBetter => rel > threshold,
                        }
                });
                report.deltas.push(Delta {
                    profile: profile.clone(),
                    config: config.clone(),
                    metric: name.to_string(),
                    before,
                    after,
                    rel_change: rel,
                    regression,
                });
            }
            for (name, _) in cand_reg.iter() {
                if base_reg.get(name).is_none() {
                    report.added.push(format!("{profile}/{config}/{name}"));
                }
            }
        }
    }
    for (profile, configs) in &candidate.profiles {
        for config in configs.keys() {
            if baseline.profiles.get(profile).is_none_or(|c| !c.contains_key(config)) {
                report.added.push(format!("{profile}/{config}"));
            }
        }
    }
    report
}

/// Renders a human-readable comparison summary.
pub fn format_report(report: &CompareReport, threshold: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if report.deltas.is_empty()
        && report.missing.is_empty()
        && report.added.is_empty()
        && report.attack_changes.is_empty()
    {
        out.push_str("snapshots are metric-identical\n");
        return out;
    }
    for d in &report.deltas {
        let flag = if d.regression { " REGRESSION" } else { "" };
        let _ = writeln!(
            out,
            "{:+8.3}%  {}/{} {}: {} -> {}{}",
            d.rel_change * 100.0,
            d.profile,
            d.config,
            d.metric,
            trim_float(d.before),
            trim_float(d.after),
            flag
        );
    }
    for m in &report.missing {
        let _ = writeln!(out, "missing in candidate: {m}");
    }
    for a in &report.added {
        let _ = writeln!(out, "only in candidate: {a}");
    }
    for k in &report.attack_changes {
        let _ = writeln!(out, "attack detection changed: {k} REGRESSION");
    }
    let n_reg = report.deltas.iter().filter(|d| d.regression).count() + report.attack_changes.len();
    let _ = writeln!(
        out,
        "{} metric(s) changed, {} regression(s) at threshold {:.1}%",
        report.deltas.len(),
        n_reg,
        threshold * 100.0
    );
    out
}

fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricValue};

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.meta_entry("instructions", Json::Int(100_000));
        s.meta_entry("wall_clock_ms", Json::Float(12.5));
        s.attacks.push(AttackRecord {
            kind: "patch-branch".into(),
            detected: true,
            violation: Some("HashMismatch".into()),
        });
        let mut reg = MetricRegistry::new();
        reg.counter("cpu.cycles", 50_000);
        reg.gauge("cpu.ipc", 2.0);
        let mut h = Histogram::new();
        h.record(3);
        h.record(9);
        reg.histogram("rev.defer.occupancy", h);
        s.add_metrics("qsort", "REV-32K", reg);
        s
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        let text = s.render();
        assert!(text.starts_with("{\n  \"schema\": \"rev-trace/1\""));
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back, s);
        // Deterministic: re-render is byte-identical.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn rejects_unknown_schema() {
        let err = Snapshot::parse(r#"{"schema":"rev-trace/999"}"#).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn identical_snapshots_compare_clean() {
        let s = sample();
        let report = compare(&s, &s.clone(), 0.02);
        assert!(!report.has_regressions());
        assert!(report.deltas.is_empty());
    }

    #[test]
    fn ipc_drop_past_threshold_is_a_regression() {
        let base = sample();
        let mut cand = sample();
        let reg = cand.profiles.get_mut("qsort").unwrap().get_mut("REV-32K").unwrap();
        reg.set("cpu.ipc", MetricValue::Gauge(1.8)); // -10%
        let report = compare(&base, &cand, 0.02);
        assert!(report.has_regressions());
        let d = report.deltas.iter().find(|d| d.metric == "cpu.ipc").unwrap();
        assert!(d.regression);
        assert!((d.rel_change + 0.10).abs() < 1e-9);
        // An IPC *gain* is not a regression.
        let mut faster = sample();
        let reg = faster.profiles.get_mut("qsort").unwrap().get_mut("REV-32K").unwrap();
        reg.set("cpu.ipc", MetricValue::Gauge(2.5));
        assert!(!compare(&base, &faster, 0.02).has_regressions());
    }

    #[test]
    fn small_drift_within_threshold_is_not_a_regression() {
        let base = sample();
        let mut cand = sample();
        let reg = cand.profiles.get_mut("qsort").unwrap().get_mut("REV-32K").unwrap();
        reg.set("cpu.ipc", MetricValue::Gauge(1.99)); // -0.5%
        let report = compare(&base, &cand, 0.02);
        assert!(!report.has_regressions());
        assert_eq!(report.deltas.len(), 1, "still reported as info");
    }

    #[test]
    fn flipped_attack_detection_is_a_regression() {
        let base = sample();
        let mut cand = sample();
        cand.attacks[0].detected = false;
        let report = compare(&base, &cand, 0.02);
        assert!(report.has_regressions());
        assert_eq!(report.attack_changes, vec!["patch-branch".to_string()]);
    }

    #[test]
    fn missing_and_added_paths_are_reported() {
        let base = sample();
        let mut cand = sample();
        let reg = cand.profiles.get_mut("qsort").unwrap().get_mut("REV-32K").unwrap();
        reg.set("new.metric", MetricValue::Counter(1));
        cand.add_metrics("qsort", "REV-64K", MetricRegistry::new());
        let report = compare(&base, &cand, 0.02);
        assert!(report.added.contains(&"qsort/REV-32K/new.metric".to_string()));
        assert!(report.added.contains(&"qsort/REV-64K".to_string()));
        assert!(!report.has_regressions(), "additions alone are not regressions");
    }
}
