//! The typed metrics registry: counters, gauges, and log2-bucket
//! histograms behind one [`MetricSink`] export trait.
//!
//! Every component that used to keep an ad-hoc `stats.rs` struct
//! (`rev-cpu`'s `CpuStats`, `rev-core`'s `RevStats`, `rev-mem`'s
//! `MemStats`, ...) still accumulates its counters in plain fields — that
//! is the cheapest possible hot path — but now exports them through
//! `MetricSink::export_metrics` into a single [`MetricRegistry`] under
//! the documented names of `docs/METRICS.md`. The registry is what gets
//! serialized into baseline snapshots, so the schema is enforced in one
//! place (and a test fails if a registered metric is missing from the
//! doc).
//!
//! Naming convention: dot-separated lowercase path, `<layer>.<unit>` or
//! `<layer>.<component>.<counter>` (e.g. `cpu.ipc`, `rev.sc.hits`,
//! `mem.dram.accesses.sigfetch`). Registry iteration order is the sorted
//! name order (`BTreeMap`), which makes JSON export deterministic.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i` (1 ≤ i < 33) holds values in `[2^(i-1), 2^i)`, and the last
/// bucket also absorbs everything ≥ 2^31.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A fixed-geometry log2 histogram (plus count/sum/max), cheap enough to
/// update from a simulator hot path: one shift-class computation and two
/// adds per `record`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts (see [`HISTOGRAM_BUCKETS`] for the geometry).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The half-open value range `[lo, hi)` of bucket `i` (the last bucket
    /// is unbounded above and reports `hi == u64::MAX`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ if i == HISTOGRAM_BUCKETS - 1 => (1 << (i - 1), u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Arithmetic mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        // Trailing empty buckets are trimmed; the geometry is fixed, so
        // the reader re-derives indices.
        let last = self.buckets.iter().rposition(|&b| b != 0).map(|i| i + 1).unwrap_or(0);
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("max", Json::Int(self.max as i64)),
            (
                "buckets",
                Json::Arr(self.buckets[..last].iter().map(|&b| Json::Int(b as i64)).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        let mut h = Histogram::new();
        h.count = v.get("count")?.as_u64()?;
        h.sum = v.get("sum")?.as_u64()?;
        h.max = v.get("max")?.as_u64()?;
        if let Some(Json::Arr(items)) = v.get("buckets") {
            for (i, b) in items.iter().enumerate() {
                if i >= HISTOGRAM_BUCKETS {
                    return None;
                }
                h.buckets[i] = b.as_u64()?;
            }
        }
        Some(h)
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone event count (renders as a JSON integer).
    Counter(u64),
    /// A point-in-time or derived measurement (renders as a JSON float).
    Gauge(f64),
    /// A log2-bucket distribution (boxed: a `Histogram` is ~280 bytes,
    /// far larger than the scalar variants).
    Histogram(Box<Histogram>),
}

impl MetricValue {
    /// The scalar magnitude used for snapshot comparison (histograms
    /// compare by mean).
    pub fn magnitude(&self) -> f64 {
        match self {
            MetricValue::Counter(c) => *c as f64,
            MetricValue::Gauge(g) => *g,
            MetricValue::Histogram(h) => h.mean(),
        }
    }
}

/// A sorted name → value map of everything one run measured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.insert(name, MetricValue::Counter(value));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.insert(name, MetricValue::Gauge(value));
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &str, value: Histogram) {
        self.insert(name, MetricValue::Histogram(Box::new(value)));
    }

    fn insert(&mut self, name: &str, value: MetricValue) {
        debug_assert!(
            !self.metrics.contains_key(name),
            "metric '{name}' registered twice — two sinks collide"
        );
        self.metrics.insert(name.to_string(), value);
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Replaces a metric's value (snapshot-editing tools and tests).
    pub fn set(&mut self, name: &str, value: MetricValue) {
        self.metrics.insert(name.to_string(), value);
    }

    /// All metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All metric names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(String::as_str)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Serializes to a JSON object (sorted key order — deterministic).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| {
                    let jv = match v {
                        MetricValue::Counter(c) => Json::Int(*c as i64),
                        MetricValue::Gauge(g) => Json::Float(*g),
                        MetricValue::Histogram(h) => h.to_json(),
                    };
                    (k.clone(), jv)
                })
                .collect(),
        )
    }

    /// Reconstructs a registry from [`MetricRegistry::to_json`] output.
    /// Integer values become counters, floats gauges, objects histograms.
    pub fn from_json(v: &Json) -> Option<Self> {
        let Json::Obj(pairs) = v else { return None };
        let mut reg = MetricRegistry::new();
        for (k, v) in pairs {
            let mv = match v {
                Json::Int(i) => MetricValue::Counter((*i).max(0) as u64),
                Json::Float(f) => MetricValue::Gauge(*f),
                Json::Obj(_) => MetricValue::Histogram(Box::new(Histogram::from_json(v)?)),
                _ => return None,
            };
            reg.metrics.insert(k.clone(), mv);
        }
        Some(reg)
    }
}

/// Anything that can export its counters into a registry under the
/// documented schema. Implemented by every layer's stats struct
/// (`CpuStats`, `RevStats`, `MemStats`, `TableStats`, `CfgStats`).
pub trait MetricSink {
    /// Exports this component's metrics into `reg`. Implementations must
    /// use names listed in `docs/METRICS.md`.
    fn export_metrics(&self, reg: &mut MetricRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The log2 bucket boundaries, exactly: 0 is its own bucket; each
    /// power of two starts a new bucket; the top bucket absorbs the tail.
    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_of(lo), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi - 1), i, "high edge of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi), i + 1, "first value of bucket {}", i + 1);
        }
        // The top bucket is open above.
        let (top_lo, _) = Histogram::bucket_range(HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(top_lo), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 105);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[Histogram::bucket_of(100)], 1);
        assert!((h.mean() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut reg = MetricRegistry::new();
        reg.counter("cpu.cycles", 1234);
        reg.gauge("cpu.ipc", 1.5);
        let mut h = Histogram::new();
        h.record(7);
        h.record(0);
        reg.histogram("rev.defer.occupancy", h);
        let j = reg.to_json();
        let back = MetricRegistry::from_json(&j).unwrap();
        assert_eq!(back, reg);
        // Sorted key order in the rendering.
        let text = j.render();
        let ci = text.find("cpu.cycles").unwrap();
        let ip = text.find("cpu.ipc").unwrap();
        let de = text.find("rev.defer.occupancy").unwrap();
        assert!(ci < ip && ip < de, "sorted metric order: {text}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_is_a_bug() {
        let mut reg = MetricRegistry::new();
        reg.counter("x", 1);
        reg.counter("x", 2);
    }
}
