//! The `rev-trace` CLI: inspect and diff `BENCH_rev.json` baseline
//! snapshots.
//!
//! ```text
//! rev-trace compare <baseline.json> <candidate.json> [--threshold PCT]
//! rev-trace show <snapshot.json>
//! ```
//!
//! `compare` exits 0 when clean, **1 when a gate metric regressed**
//! beyond the threshold (default 2%) or an attack-detection outcome
//! flipped, and 2 on usage or I/O errors — `scripts/check.sh` consumes
//! the exit code as a soft gate.

use rev_trace::snapshot::{compare, format_report, Snapshot};
use rev_trace::MetricValue;
use std::process::ExitCode;

const USAGE: &str = "usage:
  rev-trace compare <baseline.json> <candidate.json> [--threshold PCT]
  rev-trace show <snapshot.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => cmd_compare(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Snapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 0.02;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a percentage, e.g. --threshold 2.0");
                    return ExitCode::from(2);
                };
                threshold = pct / 100.0;
            }
            _ => paths.push(a.as_str()),
        }
    }
    let [baseline, candidate] = paths[..] else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (base, cand) = match (load(baseline), load(candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("rev-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let report = compare(&base, &cand, threshold);
    print!("{}", format_report(&report, threshold));
    if report.has_regressions() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_show(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let snap = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rev-trace: {e}");
            return ExitCode::from(2);
        }
    };
    for (k, v) in &snap.meta {
        println!("meta {k} = {}", v.render());
    }
    for a in &snap.attacks {
        println!(
            "attack {} detected={} violation={}",
            a.kind,
            a.detected,
            a.violation.as_deref().unwrap_or("-")
        );
    }
    for (profile, configs) in &snap.profiles {
        for (config, reg) in configs {
            for (name, value) in reg.iter() {
                let shown = match value {
                    MetricValue::Counter(c) => format!("{c}"),
                    MetricValue::Gauge(g) => format!("{g:?}"),
                    MetricValue::Histogram(h) => {
                        format!("hist(count={} mean={:.2} max={})", h.count, h.mean(), h.max)
                    }
                };
                println!("{profile}/{config} {name} = {shown}");
            }
        }
    }
    ExitCode::SUCCESS
}
