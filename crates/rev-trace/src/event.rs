//! The trace event bus: cycle-stamped events from every simulation layer
//! into one bounded ring buffer.
//!
//! The bus is **zero-overhead when disabled**: a disabled [`TraceBus`] is
//! a `None` handle, so every tap site costs one pointer test and the
//! event payload is never even constructed (tap sites go through
//! [`TraceBus::emit_with`], which takes a closure). When enabled, events
//! land in a fixed-capacity ring that overwrites its oldest entries —
//! tracing a 10⁶-instruction run never allocates beyond the ring.
//!
//! Components hold cheap clones of the same bus (`Arc` internally):
//! `RevSimulator::enable_tracing` wires one ring through the pipeline
//! (fetch/commit), the REV monitor (CHG issue, validation verdicts), the
//! signature cache (probes), the deferred-store buffer (releases) and the
//! memory hierarchy (DRAM accesses).

use std::sync::{Arc, Mutex};

/// SC probe outcome, as seen by the event bus (mirrors
/// `rev_core::sc::ScProbe` without the dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Entry present and ready.
    Hit,
    /// Entry present but still filling.
    Filling,
    /// No entry.
    Miss,
}

/// Validation verdict classes (mirrors `rev_cpu::ViolationKind` plus the
/// success case, without the dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The block validated.
    Validated,
    /// Basic-block hash mismatch.
    HashMismatch,
    /// Illegal computed-branch target.
    IllegalTarget,
    /// Return-address validation failed.
    ReturnMismatch,
    /// No signature table covers the address.
    NoTable,
    /// The signature table failed to parse (tampering).
    TableCorrupt,
    /// A deferred store failed its parity check at release
    /// (`rev-core/defer.rs` buffer corruption).
    ParityError,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction was fetched (`rev-cpu/pipeline.rs`).
    Fetch {
        /// Fetch sequence number.
        seq: u64,
        /// Instruction address.
        addr: u64,
        /// Whether the fetch was beyond an unresolved misprediction.
        wrong_path: bool,
    },
    /// A correct-path instruction committed (`rev-cpu/pipeline.rs`).
    Commit {
        /// Fetch sequence number.
        seq: u64,
        /// Instruction address.
        addr: u64,
    },
    /// The signature cache was probed (`rev-core/sc.rs`).
    ScProbe {
        /// The probing BB (terminator) address.
        bb_addr: u64,
        /// What the probe found.
        outcome: ProbeOutcome,
    },
    /// A basic block's bytes entered the CHG hash pipeline
    /// (`rev-core/rev_monitor.rs`).
    ChgIssue {
        /// Fetch sequence of the block's terminator.
        seq: u64,
        /// Cycle the hash will be ready.
        ready_at: u64,
    },
    /// A deferred store was released to committed memory after its block
    /// validated (`rev-core/defer.rs`).
    DeferRelease {
        /// Fetch sequence of the store.
        seq: u64,
        /// Store address.
        addr: u64,
    },
    /// A terminator finished validation (`rev-core/rev_monitor.rs`).
    ValidationVerdict {
        /// BB (terminator) address.
        bb_addr: u64,
        /// Outcome.
        verdict: Verdict,
    },
    /// An access reached DRAM (`rev-mem/hier.rs`).
    DramAccess {
        /// Line address.
        addr: u64,
        /// Requester class index (`rev_mem::Requester::idx`).
        requester: u8,
    },
    /// An armed fault struck (`rev-trace/fault.rs`). The cycle stamp is 0:
    /// injection sites don't know the clock; ring *order* places the
    /// strike relative to commits.
    FaultFired {
        /// Layer index (`crate::FaultLayer::idx`).
        layer: u8,
    },
    /// The REV monitor re-fetched a signature line after a failed
    /// integrity check, modeling transient-fault recovery
    /// (`rev-core/rev_monitor.rs`).
    SigRetry {
        /// BB (terminator) address whose reference line is re-read.
        bb_addr: u64,
        /// 1-based retry attempt for this fill.
        attempt: u32,
    },
}

/// One cycle-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    head: usize, // next write position once full
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.dropped += 1;
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        out
    }
}

/// A handle to the (shared) event ring. `Clone` is cheap; a disabled bus
/// is a null handle and every emit through it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct TraceBus {
    /// Cached `ring.is_some()`: the disabled-path test at every tap site
    /// is a plain bool load with no `Option`/`Arc` inspection. The two
    /// fields are only ever set together at construction.
    enabled: bool,
    ring: Option<Arc<Mutex<Ring>>>,
}

impl TraceBus {
    /// A disabled bus — the default everywhere; emits are no-ops.
    pub fn disabled() -> Self {
        TraceBus { enabled: false, ring: None }
    }

    /// An enabled bus with a ring of `capacity` events (oldest events are
    /// overwritten once full).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceBus {
            enabled: true,
            ring: Some(Arc::new(Mutex::new(Ring {
                buf: Vec::with_capacity(capacity.min(4096)),
                capacity,
                head: 0,
                dropped: 0,
            }))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits an event, constructing it only if the bus is enabled — the
    /// tap-site pattern that keeps the disabled path free:
    ///
    /// ```
    /// # use rev_trace::{TraceBus, TraceEvent, EventKind};
    /// # let bus = TraceBus::disabled();
    /// # let (cycle, seq, addr) = (1, 2, 3);
    /// bus.emit_with(|| TraceEvent { cycle, kind: EventKind::Commit { seq, addr } });
    /// ```
    #[inline]
    pub fn emit_with<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = &self.ring {
            ring.lock().expect("trace ring poisoned").push(f());
        }
    }

    /// Takes all buffered events in arrival order, emptying the ring.
    /// Returns an empty vec on a disabled bus.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.ring {
            Some(ring) => ring.lock().expect("trace ring poisoned").drain(),
            None => Vec::new(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match &self.ring {
            Some(ring) => ring.lock().expect("trace ring poisoned").buf.len(),
            None => 0,
        }
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.ring {
            Some(ring) => ring.lock().expect("trace ring poisoned").dropped,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { cycle, kind: EventKind::Commit { seq: cycle, addr: 0x1000 + cycle } }
    }

    #[test]
    fn disabled_bus_is_inert() {
        let bus = TraceBus::disabled();
        let mut constructed = false;
        bus.emit_with(|| {
            constructed = true;
            ev(1)
        });
        assert!(!constructed, "payload must not be constructed when disabled");
        assert!(bus.drain().is_empty());
        assert!(!bus.is_enabled());
    }

    #[test]
    fn clones_share_one_ring() {
        let bus = TraceBus::with_capacity(16);
        let tap_a = bus.clone();
        let tap_b = bus.clone();
        tap_a.emit_with(|| ev(1));
        tap_b.emit_with(|| ev(2));
        let events: Vec<u64> = bus.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(events, vec![1, 2]);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let bus = TraceBus::with_capacity(3);
        for c in 1..=5 {
            bus.emit_with(|| ev(c));
        }
        assert_eq!(bus.dropped(), 2);
        let cycles: Vec<u64> = bus.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4, 5], "oldest overwritten, order kept");
        assert_eq!(bus.len(), 0, "drain empties the ring");
    }
}
