//! The `rev-ckpt/1` binary checkpoint codec.
//!
//! A checkpoint is a self-delimiting byte envelope:
//!
//! ```text
//! +----------+---------+----------------+-----------+------------+
//! | magic 8B | ver u32 | recipe (bytes) | state ... | fnv64  8B  |
//! +----------+---------+----------------+-----------+------------+
//! ```
//!
//! * **magic** — the literal bytes `REVCKPT1`.
//! * **version** — [`CKPT_VERSION`], little-endian. Any layout change to
//!   the state body bumps it; readers reject unknown versions.
//! * **recipe** — an opaque, caller-owned section (length-prefixed).
//!   `rev-serve` stores the job spec JSON here so a checkpoint file is
//!   self-describing; the codec never interprets it.
//! * **state** — the serialized mutable simulator state, written through
//!   [`CkptWriter`]'s primitive encoders and tagged section markers.
//! * **checksum** — FNV-1a 64 over every preceding byte. Verified
//!   *before* any field is parsed, so a corrupted checkpoint (any single
//!   bit flip, anywhere) is rejected with
//!   [`CkptError::ChecksumMismatch`] and can never be silently restored.
//!
//! Reading is panic-free: every accessor bounds-checks and returns a
//! structured [`CkptError`]. Canonical encoding is the writer's job —
//! container state is serialized as sorted logical content, so
//! `serialize → deserialize → serialize` is byte-identical (pinned by
//! the round-trip suite in `rev-core`).
//!
//! `docs/CHECKPOINT.md` is the normative schema reference.

use std::fmt;

/// The 8-byte envelope magic.
pub const CKPT_MAGIC: [u8; 8] = *b"REVCKPT1";

/// The current state-body layout version.
pub const CKPT_VERSION: u32 = 1;

/// The schema identifier advertised in docs and service handshakes.
pub const CKPT_SCHEMA: &str = "rev-ckpt/1";

/// FNV-1a 64 over `bytes` — the envelope's trailing checksum function.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A structured checkpoint decode failure. Restores never panic and never
/// partially apply: any error leaves the target untouched by contract
/// (callers restore into a freshly built simulator and discard it on
/// error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The envelope is shorter than the fixed header + checksum.
    Truncated {
        /// Byte offset at which data ran out.
        at: usize,
    },
    /// The first eight bytes are not [`CKPT_MAGIC`].
    BadMagic,
    /// The version field names a layout this reader does not speak.
    BadVersion(u32),
    /// The trailing FNV-1a 64 does not match the envelope bytes.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u64,
        /// Checksum computed over the envelope bytes.
        computed: u64,
    },
    /// A section marker byte differed from the expected tag.
    BadTag {
        /// Tag the reader expected.
        expected: u8,
        /// Tag actually present.
        found: u8,
        /// Byte offset of the marker.
        offset: usize,
    },
    /// A semantic invariant failed (fingerprint mismatch, impossible
    /// length, out-of-range enum discriminant).
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { at } => write!(f, "checkpoint truncated at byte {at}"),
            CkptError::BadMagic => write!(f, "not a rev-ckpt envelope (bad magic)"),
            CkptError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build speaks {CKPT_VERSION})")
            }
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CkptError::BadTag { expected, found, offset } => write!(
                f,
                "checkpoint section tag mismatch at byte {offset}: expected {expected:#04x}, \
                 found {found:#04x}"
            ),
            CkptError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Appends the envelope header and primitive encodings to a byte buffer.
///
/// All integers are little-endian; variable-length payloads carry a u64
/// length prefix. [`CkptWriter::finish`] seals the envelope with the
/// trailing checksum.
#[derive(Debug)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl Default for CkptWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl CkptWriter {
    /// Starts an envelope: magic + version are written immediately.
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&CKPT_MAGIC);
        buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        CkptWriter { buf }
    }

    /// Writes a section marker byte (checked by the reader).
    pub fn tag(&mut self, t: u8) {
        self.buf.push(t);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a usize as a little-endian u64.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an f64 by bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an optional u64 (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes raw bytes with no length prefix (fixed-size payloads).
    pub fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed slice of u64s.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.len(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Bytes written so far (header included, checksum not yet).
    #[must_use]
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Seals the envelope: appends FNV-1a 64 over everything written.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked reader over a sealed envelope.
///
/// [`CkptReader::new`] verifies length, checksum, magic and version
/// before handing out a single field, so every later accessor operates
/// on an integrity-checked byte range and can only fail on structural
/// mismatches ([`CkptError::Truncated`] / [`CkptError::BadTag`] /
/// [`CkptError::Malformed`]).
#[derive(Debug)]
pub struct CkptReader<'a> {
    /// Envelope body (magic through last state byte; checksum stripped).
    data: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// Opens an envelope: checks length, checksum, magic, version.
    ///
    /// # Errors
    ///
    /// Returns a [`CkptError`] describing the first integrity failure.
    pub fn new(data: &'a [u8]) -> Result<Self, CkptError> {
        let min = CKPT_MAGIC.len() + 4 + 8;
        if data.len() < min {
            return Err(CkptError::Truncated { at: data.len() });
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("split at 8"));
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(CkptError::ChecksumMismatch { stored, computed });
        }
        if body[..8] != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        if version != CKPT_VERSION {
            return Err(CkptError::BadVersion(version));
        }
        Ok(CkptReader { data: body, pos: 12 })
    }

    /// Current byte offset into the envelope.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated { at: self.pos })?;
        if end > self.data.len() {
            return Err(CkptError::Truncated { at: self.pos });
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads and checks a section marker.
    ///
    /// # Errors
    ///
    /// [`CkptError::BadTag`] if the marker differs from `expected`.
    pub fn tag(&mut self, expected: u8) -> Result<(), CkptError> {
        let offset = self.pos;
        let found = self.u8()?;
        if found != expected {
            return Err(CkptError::BadTag { expected, found, offset });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end of the envelope.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting anything but 0/1.
    ///
    /// # Errors
    ///
    /// [`CkptError::Malformed`] on a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Malformed(format!("bool byte {b:#04x}"))),
        }
    }

    /// Reads a little-endian u16.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end of the envelope.
    pub fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end of the envelope.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end of the envelope.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length prefix, sanity-bounded by the remaining envelope
    /// size (`per_item` bytes per element) so a corrupt length can never
    /// drive an allocation larger than the checkpoint itself.
    ///
    /// # Errors
    ///
    /// [`CkptError::Malformed`] if the announced length cannot fit.
    pub fn len(&mut self, per_item: usize) -> Result<usize, CkptError> {
        let raw = self.u64()?;
        let n = usize::try_from(raw)
            .map_err(|_| CkptError::Malformed(format!("length {raw} overflows usize")))?;
        let remaining = self.data.len() - self.pos;
        if n.checked_mul(per_item.max(1)).is_none_or(|need| need > remaining) {
            return Err(CkptError::Malformed(format!(
                "length {n} x {per_item}B exceeds remaining {remaining}B"
            )));
        }
        Ok(n)
    }

    /// Reads an f64 by bit pattern.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end of the envelope.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional u64.
    ///
    /// # Errors
    ///
    /// Propagates the underlying bool/u64 decode failure.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte slice (borrowed from the envelope).
    ///
    /// # Errors
    ///
    /// Propagates length/bounds failures.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Reads `n` raw bytes (fixed-size payloads, no length prefix).
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end of the envelope.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        self.take(n)
    }

    /// Reads a length-prefixed u64 slice.
    ///
    /// # Errors
    ///
    /// Propagates length/bounds failures.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Asserts the whole envelope was consumed (trailing garbage in a
    /// checksummed envelope means a writer/reader layout skew).
    ///
    /// # Errors
    ///
    /// [`CkptError::Malformed`] when bytes remain.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.pos != self.data.len() {
            return Err(CkptError::Malformed(format!(
                "{} unread bytes after the last field",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = CkptWriter::new();
        w.tag(0x10);
        w.u8(7);
        w.bool(true);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(-0.5);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.bytes(b"hello");
        w.u64_slice(&[1, 2, 3]);
        let data = w.finish();

        let mut r = CkptReader::new(&data).unwrap();
        r.tag(0x10).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.u64_slice().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let mut w = CkptWriter::new();
        w.u64(0x0123_4567_89ab_cdef);
        w.bytes(b"payload");
        let data = w.finish();
        for bit in 0..data.len() * 8 {
            let mut bad = data.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let err = match CkptReader::new(&bad) {
                Err(e) => e,
                Ok(_) => panic!("bit flip {bit} accepted"),
            };
            assert!(
                matches!(err, CkptError::ChecksumMismatch { .. }),
                "bit {bit}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let data = CkptWriter::new().finish();
        for cut in 0..data.len() {
            assert!(CkptReader::new(&data[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        // A syntactically valid envelope with version 2: flip the version
        // field and re-seal the checksum.
        let mut data = CkptWriter::new().finish();
        data.truncate(data.len() - 8);
        data[8] = 2;
        let sum = fnv1a64(&data);
        data.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(CkptReader::new(&data).unwrap_err(), CkptError::BadVersion(2));
    }

    #[test]
    fn corrupt_length_cannot_overallocate() {
        let mut w = CkptWriter::new();
        w.u64(u64::MAX); // an absurd length prefix, correctly checksummed
        let data = w.finish();
        let mut r = CkptReader::new(&data).unwrap();
        assert!(matches!(r.u64_slice(), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn tag_mismatch_is_structured() {
        let mut w = CkptWriter::new();
        w.tag(0x20);
        let data = w.finish();
        let mut r = CkptReader::new(&data).unwrap();
        let err = r.tag(0x30).unwrap_err();
        assert_eq!(err, CkptError::BadTag { expected: 0x30, found: 0x20, offset: 12 });
    }
}
