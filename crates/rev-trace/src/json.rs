//! A minimal JSON value with **deterministic rendering**.
//!
//! The workspace is built offline (no serde), so the observability layer
//! carries its own JSON support, like `rev-lint`'s diagnostic renderer.
//! Two properties matter for baseline snapshots and are guaranteed here:
//!
//! * **Deterministic key order** — objects preserve insertion order, and
//!   every snapshot producer inserts keys in a fixed order (metric
//!   registries iterate a `BTreeMap`), so the same measurements always
//!   produce byte-identical files, diffable in version control.
//! * **Round-trip fidelity** — integers render without a decimal point
//!   and floats always with one (`3.0`, not `3`), so a parsed file
//!   reconstructs counter-vs-gauge typing exactly.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that renders without a decimal point.
    Int(i64),
    /// A number that renders with a decimal point or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `u64`, if an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders compactly (single line, no spaces).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with `indent`-space indentation, one key per line.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(n) => ("\n", " ".repeat(n * (depth + 1)), " ".repeat(n * depth), ": "),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` always renders a '.' or exponent, preserving
                    // the float/integer distinction on re-parse.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (the subset this crate renders, which is the
/// subset snapshots use: no unicode escapes beyond `\uXXXX`, no comments).
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>().map(Json::Int).map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_types_and_order() {
        let v = Json::obj(vec![
            ("z_first", Json::Int(3)),
            ("a_second", Json::Float(3.0)),
            ("s", Json::Str("he\"llo\n".into())),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = v.render();
        assert_eq!(text, r#"{"z_first":3,"a_second":3.0,"s":"he\"llo\n","arr":[true,null]}"#);
        let back = parse(&text).unwrap();
        assert_eq!(back, v, "insertion order and int/float typing survive");
    }

    #[test]
    fn pretty_renders_and_reparses() {
        let v = Json::obj(vec![("k", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        let text = v.render_pretty(2);
        assert!(text.contains("\n  \"k\""));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn float_rendering_is_distinguishable() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Int(2).render(), "2");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(parse("2").unwrap(), Json::Int(2));
    }
}
