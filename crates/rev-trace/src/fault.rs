//! Deterministic single-fault injection: the substrate `rev-chaos`
//! campaigns arm and the simulator layers consult.
//!
//! Mirrors the [`crate::event::TraceBus`] design: a [`FaultInjector`] is a
//! cheap-to-clone handle that is `None` when disabled, so every injection
//! site in the hot path costs one pointer test. Components receive a clone
//! of the same handle (`RevSimulator::set_fault_injector` threads one
//! through committed memory, the SC, the SAG, the deferred-store buffer
//! and the REV monitor) and call the `corrupt_*` filters at their
//! fault-site; the injector counts every visit per [`FaultLayer`] and
//! flips the armed bit exactly when the site's visit count reaches the
//! spec's `trigger`.
//!
//! Visit counting is keyed to *architectural* site visits (table-line
//! reads, SC installs, CHG digests, latch updates, store pushes, SAG
//! resolves), none of which depend on cycle timing or on whether tracing
//! is enabled — so a `(seed, trigger)` pair lands on the same dynamic
//! event in every run. A calibration pass with [`FaultInjector::counter`]
//! measures how many times each site is visited; campaign schedulers draw
//! triggers from `1..=visits` so an armed fault always fires.

use crate::event::{EventKind, TraceBus, TraceEvent};
use std::sync::{Arc, Mutex};

/// Number of fault layers (size of per-layer count arrays).
pub const FAULT_LAYERS: usize = 6;

/// Where a fault strikes (the hardware structure being corrupted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultLayer {
    /// A bit flip in an encrypted signature-table line while it crosses
    /// the DRAM interface (`rev-mem/memory.rs` read path, window-gated
    /// to the table region).
    SigLine,
    /// Corruption of a resident signature-cache entry's stored digest
    /// (`rev-core/sc.rs` install path).
    ScEntry,
    /// A bit flip in a CHG output digest (`rev-core/rev_monitor.rs`,
    /// applied via `rev-crypto`'s fault helper).
    ChgDigest,
    /// A flip of the delayed return-address latch (`rev-core/rev_monitor.rs`).
    RetLatch,
    /// Corruption of a deferred-store-buffer entry (`rev-core/defer.rs`).
    DeferStore,
    /// A stuck-at fault in a resident SAG base/limit register pair
    /// (`rev-core/sag.rs` resolve path).
    SagRegister,
}

impl FaultLayer {
    /// Every layer, in index order.
    pub const ALL: [FaultLayer; FAULT_LAYERS] = [
        FaultLayer::SigLine,
        FaultLayer::ScEntry,
        FaultLayer::ChgDigest,
        FaultLayer::RetLatch,
        FaultLayer::DeferStore,
        FaultLayer::SagRegister,
    ];

    /// Index into per-layer arrays.
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Lowercase label used in metric names and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            FaultLayer::SigLine => "sigline",
            FaultLayer::ScEntry => "sc_entry",
            FaultLayer::ChgDigest => "chg_digest",
            FaultLayer::RetLatch => "ret_latch",
            FaultLayer::DeferStore => "defer_store",
            FaultLayer::SagRegister => "sag_register",
        }
    }

    /// Parses a label back into a layer (CLI `--layer` flag).
    pub fn parse(s: &str) -> Option<Self> {
        FaultLayer::ALL.into_iter().find(|l| l.label() == s)
    }
}

/// How a fault behaves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One-shot bit flip: strikes once, the underlying storage is intact
    /// afterwards (a transient DRAM/SEU event — recoverable by re-read).
    Transient,
    /// The flipped bit stays wrong on every later access (a stuck DRAM
    /// cell — re-reads see the same corruption).
    Persistent,
    /// Register bit forced to 0 from the trigger onwards.
    StuckAt0,
    /// Register bit forced to 1 from the trigger onwards.
    StuckAt1,
}

impl FaultKind {
    /// Lowercase label for JSON output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Persistent => "persistent",
            FaultKind::StuckAt0 => "stuck_at_0",
            FaultKind::StuckAt1 => "stuck_at_1",
        }
    }
}

/// One armed fault: strike `layer` on its `trigger`-th site visit
/// (1-based), flipping/forcing `bit` (interpreted modulo the site's
/// natural width), with `kind` persistence semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Target structure.
    pub layer: FaultLayer,
    /// Persistence model.
    pub kind: FaultKind,
    /// 1-based site-visit count at which the fault strikes.
    pub trigger: u64,
    /// Bit position (reduced modulo the site's width at strike time).
    pub bit: u32,
}

#[derive(Debug)]
struct InjectorState {
    spec: Option<FaultSpec>,
    /// Table-region byte window `[lo, hi)` gating [`FaultLayer::SigLine`]
    /// visits; reads outside it are not signature-line transfers.
    window: Option<(u64, u64)>,
    visits: [u64; FAULT_LAYERS],
    fired: u64,
    /// Persistent sig-line overlay: (absolute byte address, xor mask)
    /// re-applied to every later read covering it.
    sticky: Option<(u64, u8)>,
    trace: TraceBus,
}

impl InjectorState {
    /// Counts a visit at a scalar corrupt site; `true` when this visit is
    /// the armed trigger for `layer`.
    fn scalar_trigger(&mut self, layer: FaultLayer) -> bool {
        self.visits[layer.idx()] += 1;
        match self.spec {
            Some(s) => {
                s.layer == layer
                    && matches!(s.kind, FaultKind::Transient | FaultKind::Persistent)
                    && self.visits[layer.idx()] == s.trigger
            }
            None => false,
        }
    }

    fn record_fire(&mut self, layer: FaultLayer) {
        self.fired += 1;
        self.trace.emit_with(|| TraceEvent {
            cycle: 0,
            kind: EventKind::FaultFired { layer: layer.idx() as u8 },
        });
    }
}

/// A handle to the (shared) fault state. `Clone` is cheap; a disabled
/// injector is a null handle and every site check through it is a single
/// branch.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Mutex<InjectorState>>>,
}

impl FaultInjector {
    /// A disabled injector — the default everywhere; all filters are
    /// no-ops.
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    /// A counting-only injector: visits are tallied per layer but nothing
    /// ever fires. Campaigns run one of these first to calibrate trigger
    /// ranges.
    pub fn counter() -> Self {
        Self::with_spec(None)
    }

    /// An injector armed with one fault.
    pub fn armed(spec: FaultSpec) -> Self {
        Self::with_spec(Some(spec))
    }

    fn with_spec(spec: Option<FaultSpec>) -> Self {
        FaultInjector {
            inner: Some(Arc::new(Mutex::new(InjectorState {
                spec,
                window: None,
                visits: [0; FAULT_LAYERS],
                fired: 0,
                sticky: None,
                trace: TraceBus::disabled(),
            }))),
        }
    }

    /// Whether any state is attached (armed or counting).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, InjectorState>> {
        self.inner.as_ref().map(|m| m.lock().expect("fault injector poisoned"))
    }

    /// Attaches a trace bus; fires emit [`EventKind::FaultFired`].
    pub fn set_trace(&self, trace: TraceBus) {
        if let Some(mut st) = self.lock() {
            st.trace = trace;
        }
    }

    /// Declares the signature-table byte window `[lo, hi)`; only reads
    /// overlapping it count as [`FaultLayer::SigLine`] site visits.
    pub fn set_window(&self, lo: u64, hi: u64) {
        if let Some(mut st) = self.lock() {
            st.window = Some((lo, hi));
        }
    }

    /// The armed spec, if any.
    pub fn spec(&self) -> Option<FaultSpec> {
        self.lock().and_then(|st| st.spec)
    }

    /// Per-layer site-visit counts (index by [`FaultLayer::idx`]).
    pub fn visits(&self) -> [u64; FAULT_LAYERS] {
        self.lock().map(|st| st.visits).unwrap_or([0; FAULT_LAYERS])
    }

    /// Number of times the armed fault struck (0 or 1 for every kind —
    /// persistent overlays count their first strike only).
    pub fn fired(&self) -> u64 {
        self.lock().map(|st| st.fired).unwrap_or(0)
    }

    /// Signature-line transfer filter: call on every table-region read.
    /// Applies the persistent overlay (if set) and, on the trigger visit,
    /// flips `bit mod (8·len)` of `buf`. Returns `true` when `buf` was
    /// altered.
    pub fn filter_read(&self, addr: u64, buf: &mut [u8]) -> bool {
        let Some(mut st) = self.lock() else { return false };
        let Some((lo, hi)) = st.window else { return false };
        let len = buf.len() as u64;
        if len == 0 || addr >= hi || addr.saturating_add(len) <= lo {
            return false;
        }
        st.visits[FaultLayer::SigLine.idx()] += 1;
        let mut altered = false;
        if let Some((sa, mask)) = st.sticky {
            if sa >= addr && sa < addr + len {
                buf[(sa - addr) as usize] ^= mask;
                altered = true;
            }
        }
        if let Some(s) = st.spec {
            if s.layer == FaultLayer::SigLine
                && matches!(s.kind, FaultKind::Transient | FaultKind::Persistent)
                && st.visits[FaultLayer::SigLine.idx()] == s.trigger
            {
                let bitpos = s.bit as usize % (buf.len() * 8);
                let mask = 1u8 << (bitpos % 8);
                buf[bitpos / 8] ^= mask;
                if s.kind == FaultKind::Persistent {
                    st.sticky = Some((addr + (bitpos / 8) as u64, mask));
                }
                st.record_fire(FaultLayer::SigLine);
                altered = true;
            }
        }
        altered
    }

    /// Scalar 64-bit corrupt site (return-address latch). Flips
    /// `bit mod 64` on the trigger visit.
    pub fn corrupt_u64(&self, layer: FaultLayer, value: &mut u64) -> bool {
        let Some(mut st) = self.lock() else { return false };
        if !st.scalar_trigger(layer) {
            return false;
        }
        let bit = st.spec.map(|s| s.bit).unwrap_or(0) % 64;
        *value ^= 1u64 << bit;
        st.record_fire(layer);
        true
    }

    /// Scalar 32-bit corrupt site (SC entry digest). Flips `bit mod 32`
    /// on the trigger visit.
    pub fn corrupt_u32(&self, layer: FaultLayer, value: &mut u32) -> bool {
        let Some(mut st) = self.lock() else { return false };
        if !st.scalar_trigger(layer) {
            return false;
        }
        let bit = st.spec.map(|s| s.bit).unwrap_or(0) % 32;
        *value ^= 1u32 << bit;
        st.record_fire(layer);
        true
    }

    /// Byte-buffer corrupt site (CHG digest). Flips `bit mod (8·len)` on
    /// the trigger visit.
    pub fn corrupt_bytes(&self, layer: FaultLayer, bytes: &mut [u8]) -> bool {
        let Some(mut st) = self.lock() else { return false };
        if !st.scalar_trigger(layer) || bytes.is_empty() {
            return false;
        }
        let bitpos = st.spec.map(|s| s.bit).unwrap_or(0) as usize % (bytes.len() * 8);
        bytes[bitpos / 8] ^= 1u8 << (bitpos % 8);
        st.record_fire(layer);
        true
    }

    /// Deferred-store corrupt site: `bit < 64` flips the value, `64..128`
    /// flips the address.
    pub fn corrupt_store(&self, addr: &mut u64, value: &mut u64) -> bool {
        let Some(mut st) = self.lock() else { return false };
        if !st.scalar_trigger(FaultLayer::DeferStore) {
            return false;
        }
        let bit = st.spec.map(|s| s.bit).unwrap_or(0) % 128;
        if bit < 64 {
            *value ^= 1u64 << bit;
        } else {
            *addr ^= 1u64 << (bit - 64);
        }
        st.record_fire(FaultLayer::DeferStore);
        true
    }

    /// Stuck-at register site (SAG base/limit pair): counts a visit and,
    /// once the trigger is reached, returns `Some((bit, forced_value))`
    /// for the caller to apply (`bit < 64` → base/lo register, `64..128`
    /// → limit/hi register). The first activation is recorded as the
    /// fire.
    pub fn stuck_at(&self, layer: FaultLayer) -> Option<(u32, bool)> {
        let mut st = self.lock()?;
        st.visits[layer.idx()] += 1;
        let s = st.spec?;
        if s.layer != layer || st.visits[layer.idx()] < s.trigger {
            return None;
        }
        let forced = match s.kind {
            FaultKind::StuckAt0 => false,
            FaultKind::StuckAt1 => true,
            _ => return None,
        };
        if st.fired == 0 {
            st.record_fire(layer);
        }
        Some((s.bit % 128, forced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(layer: FaultLayer, kind: FaultKind, trigger: u64, bit: u32) -> FaultSpec {
        FaultSpec { layer, kind, trigger, bit }
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::disabled();
        let mut v = 7u64;
        assert!(!inj.corrupt_u64(FaultLayer::RetLatch, &mut v));
        assert_eq!(v, 7);
        assert_eq!(inj.fired(), 0);
        assert_eq!(inj.visits(), [0; FAULT_LAYERS]);
        assert!(!inj.is_enabled());
    }

    #[test]
    fn counter_tallies_without_firing() {
        let inj = FaultInjector::counter();
        inj.set_window(0x1000, 0x2000);
        let mut buf = [0u8; 16];
        for i in 0..3 {
            assert!(!inj.filter_read(0x1000 + i * 16, &mut buf));
        }
        let mut v = 0u64;
        inj.corrupt_u64(FaultLayer::RetLatch, &mut v);
        assert_eq!(inj.visits()[FaultLayer::SigLine.idx()], 3);
        assert_eq!(inj.visits()[FaultLayer::RetLatch.idx()], 1);
        assert_eq!(inj.fired(), 0);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn transient_sigline_flips_exactly_once() {
        let inj = FaultInjector::armed(spec(FaultLayer::SigLine, FaultKind::Transient, 2, 9));
        inj.set_window(0x1000, 0x2000);
        let mut buf = [0u8; 4];
        assert!(!inj.filter_read(0x1000, &mut buf), "visit 1: below trigger");
        assert!(inj.filter_read(0x1000, &mut buf), "visit 2: fires");
        assert_eq!(buf, [0, 1 << 1, 0, 0], "bit 9 = byte 1, bit 1");
        buf = [0u8; 4];
        assert!(!inj.filter_read(0x1000, &mut buf), "transient: gone on re-read");
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn persistent_sigline_sticks_to_the_address() {
        let inj = FaultInjector::armed(spec(FaultLayer::SigLine, FaultKind::Persistent, 1, 0));
        inj.set_window(0x1000, 0x2000);
        let mut buf = [0u8; 4];
        assert!(inj.filter_read(0x1010, &mut buf));
        assert_eq!(buf[0], 1);
        let mut again = [0u8; 8];
        assert!(inj.filter_read(0x1010, &mut again), "overlay re-applies");
        assert_eq!(again[0], 1);
        let mut elsewhere = [0u8; 8];
        assert!(!inj.filter_read(0x1800, &mut elsewhere), "other lines untouched");
        assert_eq!(inj.fired(), 1, "persistent overlay counts one fire");
    }

    #[test]
    fn reads_outside_window_are_not_sigline_visits() {
        let inj = FaultInjector::armed(spec(FaultLayer::SigLine, FaultKind::Transient, 1, 0));
        inj.set_window(0x1000, 0x2000);
        let mut buf = [0u8; 4];
        assert!(!inj.filter_read(0x4000, &mut buf));
        assert_eq!(inj.visits()[FaultLayer::SigLine.idx()], 0);
        assert_eq!(inj.fired(), 0);
    }

    #[test]
    fn stuck_at_activates_and_stays() {
        let inj = FaultInjector::armed(spec(FaultLayer::SagRegister, FaultKind::StuckAt1, 2, 70));
        assert_eq!(inj.stuck_at(FaultLayer::SagRegister), None, "visit 1");
        assert_eq!(inj.stuck_at(FaultLayer::SagRegister), Some((70, true)), "visit 2");
        assert_eq!(inj.stuck_at(FaultLayer::SagRegister), Some((70, true)), "sticks");
        assert_eq!(inj.fired(), 1, "activation recorded once");
    }

    #[test]
    fn store_corruption_routes_bit_to_value_or_addr() {
        let inj = FaultInjector::armed(spec(FaultLayer::DeferStore, FaultKind::Transient, 1, 3));
        let (mut a, mut v) = (0u64, 0u64);
        assert!(inj.corrupt_store(&mut a, &mut v));
        assert_eq!((a, v), (0, 8));
        let inj = FaultInjector::armed(spec(FaultLayer::DeferStore, FaultKind::Transient, 1, 64));
        let (mut a, mut v) = (0u64, 0u64);
        assert!(inj.corrupt_store(&mut a, &mut v));
        assert_eq!((a, v), (1, 0));
    }

    #[test]
    fn fires_emit_trace_events() {
        let inj = FaultInjector::armed(spec(FaultLayer::RetLatch, FaultKind::Transient, 1, 0));
        let bus = TraceBus::with_capacity(8);
        inj.set_trace(bus.clone());
        let mut v = 0u64;
        inj.corrupt_u64(FaultLayer::RetLatch, &mut v);
        let events = bus.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            EventKind::FaultFired { layer: FaultLayer::RetLatch.idx() as u8 }
        );
    }

    #[test]
    fn clones_share_state() {
        let inj = FaultInjector::armed(spec(FaultLayer::ScEntry, FaultKind::Transient, 2, 0));
        let tap = inj.clone();
        let mut d = 0u32;
        tap.corrupt_u32(FaultLayer::ScEntry, &mut d);
        assert!(inj.corrupt_u32(FaultLayer::ScEntry, &mut d), "trigger seen across clones");
        assert_eq!(inj.fired(), 1);
    }
}
