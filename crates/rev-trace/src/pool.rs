//! A minimal scoped work-stealing pool: the fan-out primitive behind
//! the sweep harness (`rev-bench`), chaos campaigns (`rev-chaos`) and
//! the profile linter (`rev-lint --jobs`).
//!
//! It lives in this dependency-leaf crate so that every layer of the
//! workspace can share one pool implementation: `rev-bench` depends on
//! `rev-lint` (the `--preflight` gate), so `rev-lint` could not reuse a
//! pool defined up in `rev-bench` without a dependency cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on a scoped pool of `jobs` worker threads,
/// returning results in **input order** regardless of which worker ran
/// which item or in what order items finished. Workers pull items off a
/// shared atomic cursor (work stealing by index), so long and short items
/// mix freely. `f` receives `(worker_id, item)`.
///
/// With `jobs <= 1` (or a single item) the map runs inline on the calling
/// thread — the serial path used by `--jobs 1`, byte-for-byte equivalent.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(|item| f(0, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let cursor = &cursor;
            let collected = &collected;
            let f = &f;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(worker, &items[i])));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut merged = collected.into_inner().unwrap();
    merged.sort_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 4, 13] {
            let got = parallel_map(jobs, &items, |_w, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = parallel_map(8, &[] as &[u32], |_w, &x| x);
        assert!(got.is_empty());
    }
}
