//! Exit-code contract of the `rev-trace` binary: 0 clean, 1 regression,
//! 2 usage/IO error.

use std::process::Command;

fn snapshot_with_ipc(ipc: f64) -> String {
    format!(
        r#"{{
  "schema": "rev-trace/1",
  "meta": {{}},
  "attacks": [],
  "profiles": {{ "mcf": {{ "REV-32K": {{ "cpu.cycles": 1000, "cpu.ipc": {ipc:?} }} }} }}
}}"#
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rev-trace-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp snapshot written");
    path
}

#[test]
fn compare_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_rev-trace");
    let base = write_temp("base.json", &snapshot_with_ipc(2.0));
    let same = write_temp("same.json", &snapshot_with_ipc(2.0));
    let worse = write_temp("worse.json", &snapshot_with_ipc(1.8));

    let clean = Command::new(bin).args(["compare"]).arg(&base).arg(&same).output().unwrap();
    assert_eq!(clean.status.code(), Some(0), "identical snapshots: exit 0");

    let regressed = Command::new(bin).args(["compare"]).arg(&base).arg(&worse).output().unwrap();
    assert_eq!(regressed.status.code(), Some(1), "10% IPC drop: exit 1");
    let report = String::from_utf8_lossy(&regressed.stdout);
    assert!(report.contains("REGRESSION"), "report names the regression: {report}");

    let loose = Command::new(bin)
        .args(["compare", "--threshold", "15"])
        .arg(&base)
        .arg(&worse)
        .output()
        .unwrap();
    assert_eq!(loose.status.code(), Some(0), "10% drop under a 15% threshold: exit 0");

    let usage = Command::new(bin).args(["compare"]).arg(&base).output().unwrap();
    assert_eq!(usage.status.code(), Some(2), "missing operand: exit 2");

    let missing = Command::new(bin)
        .args(["compare", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2), "unreadable input: exit 2");

    for p in [base, same, worse] {
        let _ = std::fs::remove_file(p);
    }
}
