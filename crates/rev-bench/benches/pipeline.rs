//! Criterion benchmarks for end-to-end simulation throughput: simulated
//! instructions per wall-clock second, base vs REV (the simulator's own
//! performance, not the simulated machine's).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rev_core::{RevConfig, RevSimulator};
use rev_workloads::{generate, SpecProfile};
use std::hint::black_box;

const INSTRS: u64 = 50_000;

fn bench_baseline_sim(c: &mut Criterion) {
    let profile = SpecProfile::by_name("hmmer").expect("profile").scaled(0.05);
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTRS));
    g.bench_function("baseline", |b| {
        b.iter(|| {
            let sim =
                RevSimulator::new(generate(&profile), RevConfig::paper_default()).expect("builds");
            black_box(sim.run_baseline(INSTRS))
        });
    });
    g.bench_function("rev_standard", |b| {
        b.iter(|| {
            let mut sim =
                RevSimulator::new(generate(&profile), RevConfig::paper_default()).expect("builds");
            black_box(sim.run(INSTRS))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_baseline_sim);
criterion_main!(benches);
