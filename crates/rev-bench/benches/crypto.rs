//! Criterion microbenchmarks for the crypto primitives: CubeHash block
//! hashing (the CHG's work) and AES-128 entry decryption (the SC fill
//! path's work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rev_crypto::{bb_body_hash, entry_digest, Aes128, SignatureKey};
use std::hint::black_box;

fn bench_cubehash(c: &mut Criterion) {
    let mut g = c.benchmark_group("cubehash");
    for size in [16usize, 48, 128, 512] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("bb_body_hash", size), &data, |b, d| {
            b.iter(|| bb_body_hash(black_box(d)));
        });
    }
    g.finish();
}

fn bench_entry_digest(c: &mut Criterion) {
    let key = SignatureKey::from_seed(7);
    let body = bb_body_hash(b"example basic block bytes");
    c.bench_function("entry_digest", |b| {
        b.iter(|| entry_digest(black_box(&key), 0x1000, black_box(&body), 0x2000, 0x3000));
    });
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new([0x42; 16]);
    let block = [0x5au8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)));
    });
    c.bench_function("aes128_decrypt_block", |b| {
        let ct = aes.encrypt_block(&block);
        b.iter(|| aes.decrypt_block(black_box(&ct)));
    });
    c.bench_function("aes128_entry_decrypt_tweaked", |b| {
        let mut entry = [0x77u8; 16];
        aes.encrypt_tweaked(9, &mut entry);
        b.iter(|| {
            let mut e = entry;
            aes.decrypt_tweaked(black_box(9), &mut e);
            e
        });
    });
}

criterion_group!(benches, bench_cubehash, bench_entry_digest, bench_aes);
criterion_main!(benches);
