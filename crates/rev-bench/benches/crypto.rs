//! Criterion microbenchmarks for the crypto primitives: CubeHash block
//! hashing (the CHG's work) and AES-128 entry decryption (the SC fill
//! path's work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rev_crypto::{
    bb_body_hash, bb_body_hash_with, entry_digest, entry_digest_with, Aes128, CubeHash,
    SignatureKey,
};
use std::hint::black_box;

fn bench_cubehash(c: &mut Criterion) {
    let mut g = c.benchmark_group("cubehash");
    for size in [16usize, 48, 128, 512] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("bb_body_hash", size), &data, |b, d| {
            b.iter(|| bb_body_hash(black_box(d)));
        });
    }
    g.finish();
}

/// Fresh-construction vs reusable-hasher (`reset` + `update` +
/// `finalize_reset`) paths, per BB-sized input. The reusable path is what
/// `RevMonitor` runs per validated basic block; the delta here is the cost
/// of re-running CubeHash's 10·r initialization rounds plus hasher
/// construction on every hash, which `reset()` replaces with a copy of the
/// precomputed IV.
fn bench_reusable_hasher(c: &mut Criterion) {
    let mut g = c.benchmark_group("cubehash_reuse");
    for size in [16usize, 48, 128] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("fresh_construction", size), &data, |b, d| {
            b.iter(|| {
                let mut h = CubeHash::new();
                h.update(black_box(d));
                h.finalize()
            });
        });
        g.bench_with_input(BenchmarkId::new("reset_reuse", size), &data, |b, d| {
            let mut h = CubeHash::new();
            b.iter(|| bb_body_hash_with(&mut h, black_box(d)));
        });
    }
    g.finish();

    // The monitor's full per-BB sequence: body hash + entry digest.
    let key = SignatureKey::from_seed(7);
    let bytes = b"example basic block bytes";
    c.bench_function("per_bb_oneshot", |b| {
        b.iter(|| {
            let body = bb_body_hash(black_box(&bytes[..]));
            entry_digest(&key, 0x1000, &body, 0x2000, 0x3000)
        });
    });
    c.bench_function("per_bb_reused_hasher", |b| {
        let mut h = CubeHash::new();
        b.iter(|| {
            let body = bb_body_hash_with(&mut h, black_box(&bytes[..]));
            entry_digest_with(&mut h, &key, 0x1000, &body, 0x2000, 0x3000)
        });
    });
}

fn bench_entry_digest(c: &mut Criterion) {
    let key = SignatureKey::from_seed(7);
    let body = bb_body_hash(b"example basic block bytes");
    c.bench_function("entry_digest", |b| {
        b.iter(|| entry_digest(black_box(&key), 0x1000, black_box(&body), 0x2000, 0x3000));
    });
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new([0x42; 16]);
    let block = [0x5au8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)));
    });
    c.bench_function("aes128_decrypt_block", |b| {
        let ct = aes.encrypt_block(&block);
        b.iter(|| aes.decrypt_block(black_box(&ct)));
    });
    c.bench_function("aes128_entry_decrypt_tweaked", |b| {
        let mut entry = [0x77u8; 16];
        aes.encrypt_tweaked(9, &mut entry);
        b.iter(|| {
            let mut e = entry;
            aes.decrypt_tweaked(black_box(9), &mut e);
            e
        });
    });
}

criterion_group!(benches, bench_cubehash, bench_reusable_hasher, bench_entry_digest, bench_aes);
criterion_main!(benches);
