//! Criterion microbenchmarks for signature-table construction and lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rev_crypto::{Aes128, SignatureKey};
use rev_prog::{BbLimits, Cfg};
use rev_sigtable::{build_table, ValidationMode};
use rev_workloads::{generate, SpecProfile};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let profile = SpecProfile::by_name("mcf").expect("profile").scaled(0.05);
    let program = generate(&profile);
    let module = program.modules()[0].clone();
    let cfg = Cfg::analyze(&module, BbLimits::default()).expect("analyzes");
    let key = SignatureKey::from_seed(1);
    let cpu = Aes128::new([3; 16]);
    let mut g = c.benchmark_group("table_build");
    g.sample_size(10);
    for mode in [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly] {
        g.bench_with_input(BenchmarkId::new("mode", mode.to_string()), &mode, |b, &mode| {
            b.iter(|| build_table(black_box(&module), &cfg, &key, mode, &cpu).expect("builds"));
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let profile = SpecProfile::by_name("mcf").expect("profile").scaled(0.05);
    let program = generate(&profile);
    let module = program.modules()[0].clone();
    let cfg = Cfg::analyze(&module, BbLimits::default()).expect("analyzes");
    let key = SignatureKey::from_seed(1);
    let cpu = Aes128::new([3; 16]);
    let table = build_table(&module, &cfg, &key, ValidationMode::Standard, &cpu).expect("builds");
    let addrs: Vec<u64> = cfg.blocks().iter().map(|b| b.bb_addr).take(256).collect();
    c.bench_function("table_lookup_chain_walk", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let addr = addrs[i % addrs.len()];
            i += 1;
            black_box(table.lookup(addr))
        });
    });
}

criterion_group!(benches, bench_build, bench_lookup);
criterion_main!(benches);
