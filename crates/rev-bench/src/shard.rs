//! Sweep scale-out: `--shard i/N` partitioning and sealed work items.
//!
//! A sharded sweep partitions the (profile × slot) work-item list
//! round-robin across N independent processes; each process simulates
//! only its own items and *seals* every result into `--shard-dir` as a
//! `rev-ckpt/1` envelope. A final merge run (`--resume`, no `--shard`)
//! loads every sealed item and renders output byte-identical to a
//! monolithic run — the same contract `rev-bench/tests/equivalence.rs`
//! pins for `--jobs` and pooling, extended across process boundaries.
//!
//! A sealed item is self-describing: its recipe section is the exact
//! item recipe string (profile, slot, every result-affecting option and
//! the full configuration grid), so a resume can never splice a stale
//! or mismatched result into a sweep — recipe mismatch, checksum
//! failure, truncation, or trailing garbage all read as "not sealed"
//! and the item is recomputed fail-open.

use crate::{SweepItemOut, UsageError};
use rev_core::{BaselineReport, RevReport};
use rev_cpu::{CpuStats, RunOutcome, Violation, ViolationKind};
use rev_mem::MemStats;
use rev_prog::CfgStats;
use rev_sigtable::TableStats;
use rev_trace::{fnv1a64, CkptError, CkptReader, CkptWriter, MetricRegistry};

/// One shard of a partitioned sweep: `--shard i/N` (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's 1-based shard index.
    pub index: usize,
    /// Total shard count.
    pub total: usize,
}

impl ShardSpec {
    /// Parses `"i/N"` with `1 <= i <= N`.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError`] on any other form.
    pub fn parse(s: &str) -> Result<Self, UsageError> {
        let err = || UsageError::new(format!("--shard must be i/N with 1 <= i <= N, got '{s}'"));
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        let index: usize = i.parse().map_err(|_| err())?;
        let total: usize = n.parse().map_err(|_| err())?;
        if index == 0 || total == 0 || index > total {
            return Err(err());
        }
        Ok(ShardSpec { index, total })
    }

    /// Whether this shard owns the `item_index`-th work item
    /// (round-robin, so profiles spread evenly across shards).
    pub fn owns(&self, item_index: usize) -> bool {
        item_index % self.total == self.index - 1
    }
}

/// Tags distinguishing the two sealed item kinds.
const TAG_BASE: u8 = 0xB0;
const TAG_REV: u8 = 0xB1;

fn save_outcome(w: &mut CkptWriter, outcome: &RunOutcome) {
    match outcome {
        RunOutcome::BudgetReached => w.u8(0),
        RunOutcome::Halted => w.u8(1),
        RunOutcome::Violation(v) => {
            w.u8(2);
            save_violation(w, v);
        }
        RunOutcome::OracleFault { pc } => {
            w.u8(3);
            w.u64(*pc);
        }
    }
}

fn restore_outcome(r: &mut CkptReader<'_>) -> Result<RunOutcome, CkptError> {
    Ok(match r.u8()? {
        0 => RunOutcome::BudgetReached,
        1 => RunOutcome::Halted,
        2 => RunOutcome::Violation(restore_violation(r)?),
        3 => RunOutcome::OracleFault { pc: r.u64()? },
        other => return Err(CkptError::Malformed(format!("unknown outcome tag {other}"))),
    })
}

fn save_violation(w: &mut CkptWriter, v: &Violation) {
    w.u8(match v.kind {
        ViolationKind::HashMismatch => 0,
        ViolationKind::IllegalTarget => 1,
        ViolationKind::ReturnMismatch => 2,
        ViolationKind::NoTable => 3,
        ViolationKind::TableCorrupt => 4,
        ViolationKind::ParityError => 5,
    });
    w.u64(v.bb_addr);
    w.u64(v.actual_target);
    w.u64(v.cycle);
}

fn restore_violation(r: &mut CkptReader<'_>) -> Result<Violation, CkptError> {
    let kind = match r.u8()? {
        0 => ViolationKind::HashMismatch,
        1 => ViolationKind::IllegalTarget,
        2 => ViolationKind::ReturnMismatch,
        3 => ViolationKind::NoTable,
        4 => ViolationKind::TableCorrupt,
        5 => ViolationKind::ParityError,
        other => return Err(CkptError::Malformed(format!("unknown violation kind {other}"))),
    };
    Ok(Violation { kind, bb_addr: r.u64()?, actual_target: r.u64()?, cycle: r.u64()? })
}

fn save_mem(w: &mut CkptWriter, m: &MemStats) {
    for arr in
        [&m.l1_accesses, &m.l1_misses, &m.l2_accesses, &m.l2_misses, &m.dram_accesses, &m.tlb_walks]
    {
        w.u64_slice(arr);
    }
}

fn restore_mem(r: &mut CkptReader<'_>) -> Result<MemStats, CkptError> {
    let mut m = MemStats::default();
    for arr in [
        &mut m.l1_accesses,
        &mut m.l1_misses,
        &mut m.l2_accesses,
        &mut m.l2_misses,
        &mut m.dram_accesses,
        &mut m.tlb_walks,
    ] {
        let v = r.u64_slice()?;
        if v.len() != arr.len() {
            return Err(CkptError::Malformed(format!(
                "memory stats arity {} != {}",
                v.len(),
                arr.len()
            )));
        }
        arr.copy_from_slice(&v);
    }
    Ok(m)
}

fn save_cfg(w: &mut CkptWriter, c: &CfgStats) {
    w.u64(c.blocks as u64);
    w.f64(c.avg_instrs);
    w.f64(c.avg_successors);
    w.u64(c.computed_terminators as u64);
    w.u64(c.code_bytes as u64);
}

fn restore_cfg(r: &mut CkptReader<'_>) -> Result<CfgStats, CkptError> {
    Ok(CfgStats {
        blocks: r.u64()? as usize,
        avg_instrs: r.f64()?,
        avg_successors: r.f64()?,
        computed_terminators: r.u64()? as usize,
        code_bytes: r.u64()? as usize,
    })
}

fn save_table(w: &mut CkptWriter, t: &TableStats) {
    w.u64(t.primaries as u64);
    w.u64(t.spills as u64);
    w.u64(t.slots as u64);
    w.u64(t.image_bytes as u64);
    w.u64(t.code_bytes as u64);
}

fn restore_table(r: &mut CkptReader<'_>) -> Result<TableStats, CkptError> {
    Ok(TableStats {
        primaries: r.u64()? as usize,
        spills: r.u64()? as usize,
        slots: r.u64()? as usize,
        image_bytes: r.u64()? as usize,
        code_bytes: r.u64()? as usize,
    })
}

/// The deterministic sealed-item file name: profile, slot, and a digest
/// of the full recipe — two option sets can never collide on a file.
pub(crate) fn item_file_name(profile_name: &str, slot: usize, recipe: &str) -> String {
    format!("{profile_name}-s{slot}-{:016x}.item", fnv1a64(recipe.as_bytes()))
}

/// Seals one sweep work-item result into a self-describing envelope.
pub(crate) fn seal_item(recipe: &str, out: &SweepItemOut) -> Vec<u8> {
    let mut w = CkptWriter::new();
    w.bytes(recipe.as_bytes());
    match out {
        SweepItemOut::Base(b) => {
            let (base, cfg, table, audit) = &**b;
            w.tag(TAG_BASE);
            save_outcome(&mut w, &base.outcome);
            base.cpu.save_state(&mut w);
            save_mem(&mut w, &base.mem);
            save_cfg(&mut w, cfg);
            save_table(&mut w, table);
            // The audit registry round-trips through its deterministic
            // JSON form: `MetricRegistry::to_json` renders sorted keys
            // and `from_json` reconstructs them losslessly, so a merged
            // snapshot is byte-identical to a monolithic one.
            w.bytes(audit.to_json().render().as_bytes());
        }
        SweepItemOut::Rev(rev) => {
            w.tag(TAG_REV);
            save_outcome(&mut w, &rev.outcome);
            rev.cpu.save_state(&mut w);
            rev.rev.save_state(&mut w);
            // `RevStats::save_state` deliberately omits the terminal
            // violation (live-session checkpoints never carry one); a
            // sealed *finished* run can, so it rides alongside.
            match &rev.rev.violation {
                Some(v) => {
                    w.bool(true);
                    save_violation(&mut w, v);
                }
                None => w.bool(false),
            }
            save_mem(&mut w, &rev.mem);
        }
    }
    w.finish()
}

/// Opens a sealed item, verifying the checksum and that the stored
/// recipe matches `recipe` exactly.
///
/// # Errors
///
/// Returns [`CkptError`] on any integrity failure or recipe mismatch —
/// resume paths treat every error as "not sealed" and recompute.
pub(crate) fn unseal_item(data: &[u8], recipe: &str) -> Result<SweepItemOut, CkptError> {
    let mut r = CkptReader::new(data)?;
    let stored = r.bytes()?;
    if stored != recipe.as_bytes() {
        return Err(CkptError::Malformed("sealed item recipe mismatch".to_string()));
    }
    let tag = r.u8()?;
    let out = match tag {
        TAG_BASE => {
            let outcome = restore_outcome(&mut r)?;
            let mut cpu = CpuStats::default();
            cpu.restore_state(&mut r)?;
            let mem = restore_mem(&mut r)?;
            let cfg = restore_cfg(&mut r)?;
            let table = restore_table(&mut r)?;
            let audit_text = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| CkptError::Malformed("audit registry is not UTF-8".to_string()))?;
            let audit_json = rev_trace::json::parse(&audit_text)
                .map_err(|e| CkptError::Malformed(format!("audit registry: {e}")))?;
            let audit = MetricRegistry::from_json(&audit_json)
                .ok_or_else(|| CkptError::Malformed("audit registry shape mismatch".to_string()))?;
            SweepItemOut::Base(Box::new((BaselineReport { outcome, cpu, mem }, cfg, table, audit)))
        }
        TAG_REV => {
            let outcome = restore_outcome(&mut r)?;
            let mut cpu = CpuStats::default();
            cpu.restore_state(&mut r)?;
            let mut rev = rev_core::RevStats::default();
            rev.restore_state(&mut r)?;
            if r.bool()? {
                rev.violation = Some(restore_violation(&mut r)?);
            }
            let mem = restore_mem(&mut r)?;
            SweepItemOut::Rev(Box::new(RevReport { outcome, cpu, rev, mem }))
        }
        other => return Err(CkptError::Malformed(format!("unknown item tag {other:#x}"))),
    };
    r.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_partitions() {
        assert_eq!(ShardSpec::parse("1/1").unwrap(), ShardSpec { index: 1, total: 1 });
        assert_eq!(ShardSpec::parse("2/3").unwrap(), ShardSpec { index: 2, total: 3 });
        for bad in ["", "0/2", "3/2", "1/0", "a/b", "1", "1/2/3", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "'{bad}' must be rejected");
        }
        // Every item is owned by exactly one of N shards.
        let shards: Vec<ShardSpec> = (1..=3).map(|i| ShardSpec { index: i, total: 3 }).collect();
        for item in 0..20 {
            assert_eq!(shards.iter().filter(|s| s.owns(item)).count(), 1, "item {item}");
        }
    }

    #[test]
    fn outcome_and_violation_round_trip() {
        let outcomes = [
            RunOutcome::BudgetReached,
            RunOutcome::Halted,
            RunOutcome::Violation(Violation {
                kind: ViolationKind::ReturnMismatch,
                bb_addr: 0x1234,
                actual_target: 0x5678,
                cycle: 99,
            }),
            RunOutcome::OracleFault { pc: 0xdead },
        ];
        for outcome in outcomes {
            let mut w = CkptWriter::new();
            save_outcome(&mut w, &outcome);
            let sealed = w.finish();
            let mut r = CkptReader::new(&sealed).unwrap();
            let back = restore_outcome(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(format!("{outcome:?}"), format!("{back:?}"));
        }
    }
}
