//! # rev-bench — regenerating the paper's tables and figures
//!
//! Shared machinery for the harness binaries (one per table/figure; see
//! `DESIGN.md` for the experiment index). Every binary accepts:
//!
//! * `--instructions N` — committed-instruction budget per run (default
//!   2 000 000; the paper used 2 000 000 000 on its testbed),
//! * `--scale F` — workload size scale factor (default 1.0 = the paper's
//!   static BB counts),
//! * `--quick` — shorthand for `--scale 0.05 --instructions 200000`,
//! * `--bench NAME` (repeatable) — restrict to specific benchmarks,
//! * `--csv` — machine-readable output.

use rev_core::{BaselineReport, RevConfig, RevReport, RevSimulator};
use rev_prog::{BbLimits, Cfg, CfgStats, Program};
use rev_sigtable::TableStats;
use rev_workloads::{generate, SpecProfile, ALL_PROFILES};

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Committed-instruction budget per simulated run.
    pub instructions: u64,
    /// Warmup instructions before the measurement window (stats reset).
    pub warmup: u64,
    /// Workload scale factor (1.0 = paper-sized static footprints).
    pub scale: f64,
    /// Benchmark-name filter (empty = all 18).
    pub only: Vec<String>,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { instructions: 2_000_000, warmup: 400_000, scale: 1.0, only: Vec::new(), csv: false }
    }
}

impl BenchOptions {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = BenchOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--instructions" => {
                    let v = args.next().expect("--instructions needs a value");
                    opts.instructions = v.parse().expect("--instructions must be an integer");
                }
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale must be a float");
                }
                "--quick" => {
                    opts.scale = 0.05;
                    opts.instructions = 200_000;
                    opts.warmup = 50_000;
                }
                "--warmup" => {
                    let v = args.next().expect("--warmup needs a value");
                    opts.warmup = v.parse().expect("--warmup must be an integer");
                }
                "--bench" => {
                    opts.only.push(args.next().expect("--bench needs a name"));
                }
                "--csv" => opts.csv = true,
                other => panic!(
                    "unknown argument '{other}' (expected --instructions, --scale, --quick, --bench, --csv)"
                ),
            }
        }
        opts
    }

    /// The selected, scale-adjusted profiles.
    pub fn profiles(&self) -> Vec<SpecProfile> {
        ALL_PROFILES
            .iter()
            .filter(|p| self.only.is_empty() || self.only.iter().any(|n| n == p.name))
            .map(|p| if (self.scale - 1.0).abs() < 1e-9 { p.clone() } else { p.scaled(self.scale) })
            .collect()
    }
}

/// Everything measured for one benchmark at one REV configuration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Baseline (no REV) run.
    pub base: BaselineReport,
    /// REV run.
    pub rev: RevReport,
    /// Signature-table size statistics (first module).
    pub table: TableStats,
    /// Static CFG statistics.
    pub cfg: CfgStats,
}

impl BenchResult {
    /// IPC overhead of REV vs base, in percent (the paper's Figs. 7/12).
    pub fn overhead_pct(&self) -> f64 {
        overhead_pct(self.base.cpu.ipc(), self.rev.cpu.ipc())
    }
}

/// IPC overhead in percent.
pub fn overhead_pct(base_ipc: f64, rev_ipc: f64) -> f64 {
    if base_ipc <= 0.0 {
        0.0
    } else {
        (base_ipc - rev_ipc) / base_ipc * 100.0
    }
}

/// Generates a profile's program (cached per-call; generation is fast
/// relative to simulation).
pub fn program_for(profile: &SpecProfile) -> Program {
    generate(profile)
}

/// Static CFG statistics for a generated program's first module.
pub fn cfg_stats_for(program: &Program) -> CfgStats {
    let module = &program.modules()[0];
    Cfg::analyze(module, BbLimits::default())
        .expect("generated programs analyze")
        .stats()
}

/// Runs one benchmark under `config` and its matching baseline.
pub fn run_benchmark(profile: &SpecProfile, opts: &BenchOptions, config: RevConfig) -> BenchResult {
    let program = program_for(profile);
    let cfg = cfg_stats_for(&program);
    let mut sim = RevSimulator::new(program, config).expect("workload builds");
    let base = sim.run_baseline_with_warmup(opts.warmup, opts.instructions);
    sim.warmup(opts.warmup);
    let rev = sim.run(opts.instructions);
    let table = sim.table_stats()[0];
    BenchResult { name: profile.name.to_string(), base, rev, table, cfg }
}

/// Runs one benchmark under REV only (reusing an externally supplied
/// baseline when the caller sweeps configurations).
pub fn run_rev_only(profile: &SpecProfile, opts: &BenchOptions, config: RevConfig) -> RevReport {
    let program = program_for(profile);
    let mut sim = RevSimulator::new(program, config).expect("workload builds");
    sim.warmup(opts.warmup);
    sim.run(opts.instructions)
}

/// One benchmark measured at base, REV-32K and REV-64K (the sweep behind
/// Figures 6–11).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline run.
    pub base: BaselineReport,
    /// REV with the 32 KiB SC.
    pub rev32: RevReport,
    /// REV with the 64 KiB SC.
    pub rev64: RevReport,
    /// Table stats (standard mode, first module).
    pub table: TableStats,
    /// Static CFG stats.
    pub cfg: CfgStats,
}

impl SweepRow {
    /// Overhead of the 32 KiB configuration, percent.
    pub fn overhead32(&self) -> f64 {
        overhead_pct(self.base.cpu.ipc(), self.rev32.cpu.ipc())
    }

    /// Overhead of the 64 KiB configuration, percent.
    pub fn overhead64(&self) -> f64 {
        overhead_pct(self.base.cpu.ipc(), self.rev64.cpu.ipc())
    }
}

/// Runs the full base/32K/64K sweep for the selected profiles.
pub fn sweep(opts: &BenchOptions) -> Vec<SweepRow> {
    opts.profiles()
        .iter()
        .map(|p| {
            eprintln!("[sweep] {} ...", p.name);
            let r32 = run_benchmark(p, opts, RevConfig::paper_default());
            let rev64 = run_rev_only(p, opts, RevConfig::paper_64k());
            SweepRow {
                name: p.name.to_string(),
                base: r32.base,
                rev32: r32.rev,
                rev64,
                table: r32.table,
                cfg: r32.cfg,
            }
        })
        .collect()
}

/// A simple fixed-width table printer (or CSV when `csv` is set).
#[derive(Debug)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>, csv: bool) -> Self {
        TablePrinter {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints to stdout.
    pub fn print(&self) {
        if self.csv {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    out.push_str(&format!("  {:>w$}", cell, w = widths[i]));
                }
            }
            out
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Harmonic mean (the paper reports per-benchmark harmonic means over
/// runs; across benchmarks it reports arithmetic averages of overheads).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| 1.0 / v.max(1e-12)).sum();
    values.len() as f64 / s
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        assert!((overhead_pct(2.0, 1.9) - 5.0).abs() < 1e-9);
        assert_eq!(overhead_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn means() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn printer_formats() {
        let mut t = TablePrinter::new(vec!["name", "value"], false);
        t.row(vec!["a", "1"]);
        t.print(); // must not panic
        let mut c = TablePrinter::new(vec!["name", "value"], true);
        c.row(vec!["a", "1"]);
        c.print();
    }

    #[test]
    fn options_profiles_filter() {
        let mut o = BenchOptions::default();
        assert_eq!(o.profiles().len(), 18);
        o.only = vec!["gcc".into(), "mcf".into()];
        assert_eq!(o.profiles().len(), 2);
        o.scale = 0.05;
        assert!(o.profiles()[0].static_bbs < 10_000);
    }
}
