//! # rev-bench — regenerating the paper's tables and figures
//!
//! Shared machinery for the harness binaries (one per table/figure; see
//! `DESIGN.md` for the experiment index). Every binary accepts:
//!
//! * `--instructions N` — committed-instruction budget per run (default
//!   2 000 000; the paper used 2 000 000 000 on its testbed),
//! * `--scale F` — workload size scale factor (default 1.0 = the paper's
//!   static BB counts),
//! * `--quick` — shorthand for `--scale 0.05 --instructions 200000`,
//! * `--bench NAME` (repeatable) — restrict to specific benchmarks,
//! * `--csv` — CSV tables on stdout instead of aligned text,
//! * `--json PATH` — write the schema-versioned measurement snapshot
//!   (`rev-trace` format; see `docs/METRICS.md`) to `PATH`,
//! * `--quiet` — suppress worker progress and timing narration on stderr,
//! * `--pool=on|off` — the warm-start checkpoint pool (default on; `off`
//!   rebuilds every work item from scratch — output is byte-identical
//!   either way, the equivalence suite enforces it),
//! * `--ckpt-pool DIR` — persist warm checkpoints to `DIR` across runs,
//! * `--shard i/N`, `--shard-dir DIR`, `--resume` — partition a sweep
//!   across processes, seal per-item results, and merge them back into a
//!   byte-identical monolithic output (see `docs/CHECKPOINT.md`).

pub mod pool;
pub mod shard;

use rev_core::{BaselineReport, RevConfig, RevReport, RevSimulator};
use rev_prog::{BbLimits, Cfg, CfgStats, Program};
use rev_sigtable::TableStats;
use rev_trace::{AttackRecord, Json, MetricRegistry, MetricSink, MetricValue, Snapshot};
use rev_workloads::{generate, SpecProfile, ALL_PROFILES};
use std::io::Write;
use std::sync::Mutex;

pub use pool::{PoolFetch, PoolStats, WarmPool};
pub use shard::ShardSpec;

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Committed-instruction budget per simulated run.
    pub instructions: u64,
    /// Warmup instructions before the measurement window (stats reset).
    pub warmup: u64,
    /// Workload scale factor (1.0 = paper-sized static footprints).
    pub scale: f64,
    /// Benchmark-name filter (empty = all 18).
    pub only: Vec<String>,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Worker threads for the sweep fan-out (defaults to the host's
    /// available parallelism; `--jobs 1` forces the serial path).
    pub jobs: usize,
    /// Run the static lint gate (`rev-lint`) over every table before
    /// simulating; refuse to run anything that fails at error severity.
    pub preflight: bool,
    /// Where to write the JSON measurement snapshot (`BENCH_rev.json`);
    /// `None` keeps a binary's default.
    pub json: Option<String>,
    /// Suppress worker progress and timing narration on stderr.
    pub quiet: bool,
    /// Superblock memo replay in the monitor (`--superblocks=off` is the
    /// escape hatch; every measurement snapshot is byte-identical either
    /// way — the equivalence suite enforces it).
    pub superblocks: bool,
    /// Warm-start checkpoint pool (`--pool=off` rebuilds every work item
    /// from scratch; output is byte-identical either way — the
    /// equivalence suite and `scripts/check.sh` enforce it).
    pub pool: bool,
    /// On-disk warm-checkpoint cache directory (`--ckpt-pool DIR`),
    /// shared across processes and runs.
    pub ckpt_pool: Option<String>,
    /// Simulate only this shard of the (profile × slot) work-item list
    /// (`--shard i/N`; requires `--shard-dir` to seal the results).
    pub shard: Option<ShardSpec>,
    /// Directory where computed work items are sealed (`--shard-dir`).
    pub shard_dir: Option<String>,
    /// Load valid sealed items from `--shard-dir` instead of recomputing
    /// them (`--resume`; invalid or missing entries recompute fail-open).
    pub resume: bool,
}

/// A malformed command line. [`BenchOptions::from_args`] reports it on
/// stderr with the usage summary and exits with status 2 — bad input is
/// a usage error, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    /// What was wrong, naming the offending flag and value.
    pub message: String,
}

impl UsageError {
    /// Creates a usage error.
    pub fn new<S: Into<String>>(message: S) -> Self {
        UsageError { message: message.into() }
    }
}

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for UsageError {}

/// The flag summary printed under a usage error.
pub const USAGE: &str = "usage: [--instructions N] [--warmup N] [--scale F] [--quick] \
[--bench NAME]... [--csv] [--jobs N] [--preflight] [--json PATH] [--quiet] \
[--superblocks=on|off] [--pool=on|off] [--ckpt-pool DIR] \
[--shard i/N --shard-dir DIR] [--resume]";

/// The host's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            instructions: 2_000_000,
            warmup: 400_000,
            scale: 1.0,
            only: Vec::new(),
            csv: false,
            jobs: default_jobs(),
            preflight: false,
            json: None,
            quiet: false,
            superblocks: true,
            pool: true,
            ckpt_pool: None,
            shard: None,
            shard_dir: None,
            resume: false,
        }
    }
}

impl BenchOptions {
    /// Parses an argument list (everything after the binary name).
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] naming the offending flag and value on
    /// any malformed input.
    pub fn parse<I>(args: I) -> Result<Self, UsageError>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        fn value(
            args: &mut impl Iterator<Item = String>,
            flag: &str,
        ) -> Result<String, UsageError> {
            args.next().ok_or_else(|| UsageError::new(format!("{flag} needs a value")))
        }
        fn parsed<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, UsageError> {
            v.parse().map_err(|_| UsageError::new(format!("{what}, got '{v}'")))
        }
        let mut opts = BenchOptions::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--instructions" => {
                    let v = value(&mut args, "--instructions")?;
                    opts.instructions = parsed(&v, "--instructions must be an integer")?;
                }
                "--scale" => {
                    let v = value(&mut args, "--scale")?;
                    opts.scale = parsed(&v, "--scale must be a float")?;
                }
                "--quick" => {
                    opts.scale = 0.05;
                    opts.instructions = 200_000;
                    opts.warmup = 50_000;
                }
                "--warmup" => {
                    let v = value(&mut args, "--warmup")?;
                    opts.warmup = parsed(&v, "--warmup must be an integer")?;
                }
                "--bench" => opts.only.push(value(&mut args, "--bench")?),
                "--csv" => opts.csv = true,
                "--preflight" => opts.preflight = true,
                "--json" => opts.json = Some(value(&mut args, "--json")?),
                "--quiet" => opts.quiet = true,
                "--superblocks=on" => opts.superblocks = true,
                "--superblocks=off" => opts.superblocks = false,
                "--pool=on" => opts.pool = true,
                "--pool=off" => opts.pool = false,
                "--ckpt-pool" => opts.ckpt_pool = Some(value(&mut args, "--ckpt-pool")?),
                "--shard" => {
                    let v = value(&mut args, "--shard")?;
                    opts.shard = Some(ShardSpec::parse(&v)?);
                }
                "--shard-dir" => opts.shard_dir = Some(value(&mut args, "--shard-dir")?),
                "--resume" => opts.resume = true,
                "--jobs" => {
                    let v = value(&mut args, "--jobs")?;
                    let n: usize = parsed(&v, "--jobs must be an integer")?;
                    opts.jobs = if n == 0 { default_jobs() } else { n };
                }
                other => return Err(UsageError::new(format!("unknown argument '{other}'"))),
            }
        }
        if opts.shard.is_some() && opts.shard_dir.is_none() {
            return Err(UsageError::new("--shard requires --shard-dir"));
        }
        Ok(opts)
    }

    /// Parses `std::env::args`, printing the error and usage summary to
    /// stderr and exiting with status 2 on malformed input.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }

    /// The selected, scale-adjusted profiles.
    pub fn profiles(&self) -> Vec<SpecProfile> {
        ALL_PROFILES
            .iter()
            .filter(|p| self.only.is_empty() || self.only.iter().any(|n| n == p.name))
            .map(|p| if (self.scale - 1.0).abs() < 1e-9 { p.clone() } else { p.scaled(self.scale) })
            .collect()
    }
}

/// Everything measured for one benchmark at one REV configuration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Baseline (no REV) run.
    pub base: BaselineReport,
    /// REV run.
    pub rev: RevReport,
    /// Signature-table size statistics (first module).
    pub table: TableStats,
    /// Static CFG statistics.
    pub cfg: CfgStats,
}

impl BenchResult {
    /// IPC overhead of REV vs base, in percent (the paper's Figs. 7/12).
    pub fn overhead_pct(&self) -> f64 {
        overhead_pct(self.base.cpu.ipc(), self.rev.cpu.ipc())
    }
}

/// IPC overhead in percent.
pub fn overhead_pct(base_ipc: f64, rev_ipc: f64) -> f64 {
    if base_ipc <= 0.0 {
        0.0
    } else {
        (base_ipc - rev_ipc) / base_ipc * 100.0
    }
}

/// Generates a profile's program (cached per-call; generation is fast
/// relative to simulation).
pub fn program_for(profile: &SpecProfile) -> Program {
    generate(profile)
}

/// Static CFG statistics for a generated program's first module.
pub fn cfg_stats_for(program: &Program) -> CfgStats {
    let module = &program.modules()[0];
    Cfg::analyze(module, BbLimits::default()).expect("generated programs analyze").stats()
}

/// The `--preflight` gate: statically lints the tables a built simulator
/// is about to consume, runs the `rev-audit` security analyses
/// (protection coverage, collision classes, latency bounds), and refuses
/// to run anything failing at error severity.
///
/// # Panics
///
/// Panics with the rendered diagnostics when the gate fails.
pub fn preflight(sim: &RevSimulator) {
    let mut report =
        rev_lint::lint_tables(sim.program(), sim.monitor().sag().tables(), sim.config().bb_limits);
    report.merge(rev_lint::audit_program(sim.program(), sim.config()).report);
    assert!(
        report.passes_gate(),
        "preflight: static lint found {} error(s); refusing to simulate:\n{}",
        report.error_count(),
        report.render_text()
    );
}

/// Runs one benchmark under `config` and its matching baseline.
pub fn run_benchmark(profile: &SpecProfile, opts: &BenchOptions, config: RevConfig) -> BenchResult {
    let program = program_for(profile);
    let cfg = cfg_stats_for(&program);
    let config = config.with_superblocks(opts.superblocks);
    let mut sim = RevSimulator::new(program, config).expect("workload builds");
    if opts.preflight {
        preflight(&sim);
    }
    let base = sim.run_baseline_with_warmup(opts.warmup, opts.instructions);
    sim.warmup(opts.warmup);
    let rev = sim.run(opts.instructions);
    let table = sim.table_stats()[0];
    BenchResult { name: profile.name.to_string(), base, rev, table, cfg }
}

/// Runs one benchmark under REV only (reusing an externally supplied
/// baseline when the caller sweeps configurations).
pub fn run_rev_only(profile: &SpecProfile, opts: &BenchOptions, config: RevConfig) -> RevReport {
    let program = program_for(profile);
    let config = config.with_superblocks(opts.superblocks);
    let mut sim = RevSimulator::new(program, config).expect("workload builds");
    if opts.preflight {
        preflight(&sim);
    }
    sim.warmup(opts.warmup);
    sim.run(opts.instructions)
}

/// Builds a simulator for one ablation variant: through `pool`'s memo
/// shelves when `opts.pool` is set — every variant of a profile shares
/// one program generation, and all variants that agree on validation
/// mode and BB limits share one table build — and from scratch
/// otherwise. Warm forking is deliberately not used here: ablations run
/// without warmup, where a fork would save nothing.
pub fn sim_for(
    pool: &WarmPool,
    opts: &BenchOptions,
    profile: &SpecProfile,
    config: RevConfig,
) -> RevSimulator {
    if opts.pool {
        pool.cold_sim(profile, &config)
    } else {
        RevSimulator::new(program_for(profile), config).expect("workload builds")
    }
}

/// One benchmark measured at base, REV-32K and REV-64K (the sweep behind
/// Figures 6–11).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline run.
    pub base: BaselineReport,
    /// REV with the 32 KiB SC.
    pub rev32: RevReport,
    /// REV with the 64 KiB SC.
    pub rev64: RevReport,
    /// Table stats (standard mode, first module).
    pub table: TableStats,
    /// Static CFG stats.
    pub cfg: CfgStats,
}

impl SweepRow {
    /// Overhead of the 32 KiB configuration, percent.
    pub fn overhead32(&self) -> f64 {
        overhead_pct(self.base.cpu.ipc(), self.rev32.cpu.ipc())
    }

    /// Overhead of the 64 KiB configuration, percent.
    pub fn overhead64(&self) -> f64 {
        overhead_pct(self.base.cpu.ipc(), self.rev64.cpu.ipc())
    }
}

/// The sweep fan-out primitive, now hosted in the dependency-leaf
/// `rev-trace` crate (so `rev-lint --jobs` can share it without a
/// dependency cycle) and re-exported here for existing call sites.
pub use rev_trace::parallel_map;

/// Serialized progress narration on stderr.
///
/// Worker threads announce what they are about to simulate; routing every
/// line through one locked writer keeps lines whole under any `--jobs`
/// count and gives `--quiet` a single switch. Measurement output never
/// goes through here — stdout stays byte-identical across job counts and
/// hosts, narration is the "modulo timing" channel.
#[derive(Debug)]
pub struct Narrator {
    quiet: bool,
    out: Mutex<()>,
}

impl Narrator {
    /// Creates a narrator; `quiet` swallows every line.
    pub fn new(quiet: bool) -> Self {
        Narrator { quiet, out: Mutex::new(()) }
    }

    /// Writes one progress line to stderr (no-op when quiet).
    pub fn note(&self, line: &str) {
        if self.quiet {
            return;
        }
        let _guard = self.out.lock().unwrap();
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// One labelled REV configuration inside a [`sweep_configs`] fan-out.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Short label used in progress lines (e.g. `REV-32K`).
    pub label: String,
    /// The configuration to simulate.
    pub config: RevConfig,
}

impl SweepConfig {
    /// Convenience constructor.
    pub fn new<S: Into<String>>(label: S, config: RevConfig) -> Self {
        SweepConfig { label: label.into(), config }
    }
}

/// One benchmark measured at base plus every requested REV configuration.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// Benchmark name.
    pub name: String,
    /// Baseline run (computed **once** and shared by every configuration).
    pub base: BaselineReport,
    /// One REV report per requested configuration, in request order.
    pub revs: Vec<RevReport>,
    /// Table stats for the first configuration's table (first module).
    pub table: TableStats,
    /// Static CFG statistics.
    pub cfg: CfgStats,
    /// `rev-audit` metrics (`audit.*`): per-mode protection coverage,
    /// collision classes, and detection-latency bounds.
    pub audit: MetricRegistry,
}

pub(crate) enum SweepItemOut {
    Base(Box<(BaselineReport, CfgStats, TableStats, MetricRegistry)>),
    Rev(Box<RevReport>),
}

/// One worker's verdict on a sweep work item.
enum SweepItem {
    /// Simulated here (or loaded from a sealed file under `--resume`).
    Done { out: SweepItemOut, resumed: bool },
    /// Owned by another shard — not simulated, not loaded.
    Skipped,
}

/// Result of [`sweep_configs_pooled`].
#[derive(Debug)]
pub enum SweepOutcome {
    /// Every work item is present (a monolithic or merge run).
    Complete(Vec<ProfileRun>),
    /// A `--shard i/N` run: this process sealed its own items into
    /// `--shard-dir` and left the rest to the other shards, so no
    /// result set can be assembled. Callers print nothing to stdout.
    Partial {
        /// Items this process simulated (and sealed).
        computed: usize,
        /// Items satisfied by existing sealed files (`--resume`).
        resumed: usize,
        /// Items left to other shards.
        skipped: usize,
    },
}

/// The content address of one sweep work item: every option that can
/// change the item's measurements is in here, so a sealed result can
/// never be spliced into a sweep it doesn't belong to.
fn item_recipe(
    opts: &BenchOptions,
    configs: &[SweepConfig],
    profile: &SpecProfile,
    slot: usize,
) -> String {
    let label = if slot == 0 { "base" } else { configs[slot - 1].label.as_str() };
    format!(
        "sweep-item/1|{}|{profile:?}|slot={slot}|label={label}|instrs={}|warmup={}|scale={}|superblocks={}|preflight={}|configs={configs:?}",
        rev_trace::CKPT_SCHEMA,
        opts.instructions,
        opts.warmup,
        opts.scale,
        opts.superblocks,
        opts.preflight,
    )
}

/// Atomically writes a sealed item (temp file + rename, like the warm
/// pool's disk store). I/O failure is silently ignored: a missing seal
/// costs a recompute on resume, never correctness.
fn write_sealed(path: &std::path::Path, data: &[u8]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let tmp = path.with_extension(format!("item.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, data).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Simulates one (profile, slot) work item, through the warm pool when
/// `opts.pool` is set and from scratch otherwise. Both paths produce
/// byte-identical measurements (`rev-bench/tests/equivalence.rs`).
fn compute_item(
    opts: &BenchOptions,
    configs: &[SweepConfig],
    pool: &WarmPool,
    profile: &SpecProfile,
    slot: usize,
) -> SweepItemOut {
    if slot == 0 {
        let (base, cfg, table, audit) = if opts.pool {
            let bundle = pool.program(profile);
            let audit = rev_lint::audit_program(&bundle.0, &configs[0].config).metrics();
            let sim = pool.cold_sim(profile, &configs[0].config);
            let base = sim.run_baseline_with_warmup(opts.warmup, opts.instructions);
            (base, bundle.1, sim.table_stats()[0], audit)
        } else {
            let program = program_for(profile);
            let cfg = cfg_stats_for(&program);
            let audit = rev_lint::audit_program(&program, &configs[0].config).metrics();
            let sim = RevSimulator::new(program, configs[0].config).expect("workload builds");
            let base = sim.run_baseline_with_warmup(opts.warmup, opts.instructions);
            (base, cfg, sim.table_stats()[0], audit)
        };
        SweepItemOut::Base(Box::new((base, cfg, table, audit)))
    } else if opts.pool {
        let config = configs[slot - 1].config.with_superblocks(opts.superblocks);
        let (mut sim, _fetch) = pool.warm_fork(profile, &config, opts.warmup);
        // The fresh path preflights before warmup; forked simulators are
        // already warmed, but preflight is read-only so the order cannot
        // change a single counter.
        if opts.preflight {
            preflight(&sim);
        }
        SweepItemOut::Rev(Box::new(sim.run(opts.instructions)))
    } else {
        SweepItemOut::Rev(Box::new(run_rev_only(profile, opts, configs[slot - 1].config)))
    }
}

/// [`sweep_configs`] with an explicit warm pool and `--shard`/`--resume`
/// support — the full-control entry point shared by `reproduce_all` and
/// the equivalence suite.
///
/// Work items are (profile, slot) pairs: slot 0 is the baseline run
/// (plus static CFG / table statistics and the audit registry), slot
/// k ≥ 1 is `configs[k - 1]`. Under `--shard i/N` only every N-th item
/// is simulated (and sealed into `--shard-dir`); under `--resume` valid
/// sealed items are loaded instead of recomputed. Results are ordered
/// by profile then configuration — identical output for any `--jobs`
/// value, any shard split, and with the pool on or off.
pub fn sweep_configs_pooled(
    opts: &BenchOptions,
    configs: &[SweepConfig],
    pool: &WarmPool,
) -> SweepOutcome {
    assert!(!configs.is_empty(), "sweep_configs needs at least one configuration");
    let profiles = opts.profiles();
    let slots = configs.len() + 1;
    let items: Vec<(usize, usize)> =
        (0..profiles.len()).flat_map(|p| (0..slots).map(move |s| (p, s))).collect();
    let narrator = Narrator::new(opts.quiet);
    let shard_dir = opts.shard_dir.as_ref().map(std::path::Path::new);
    let outs = parallel_map(opts.jobs, &items, |worker, &(p, s)| {
        let profile = &profiles[p];
        let label = if s == 0 { "base" } else { configs[s - 1].label.as_str() };
        let recipe = item_recipe(opts, configs, profile, s);
        let sealed_path =
            shard_dir.map(|d| d.join(shard::item_file_name(profile.name, s, &recipe)));
        if opts.resume {
            if let Some(path) = &sealed_path {
                if let Ok(data) = std::fs::read(path) {
                    match shard::unseal_item(&data, &recipe) {
                        Ok(out) => {
                            narrator.note(&format!(
                                "[sweep w{worker:02}] {} {} (sealed)",
                                profile.name, label
                            ));
                            return SweepItem::Done { out, resumed: true };
                        }
                        Err(e) => narrator.note(&format!(
                            "[sweep w{worker:02}] {} {} sealed entry rejected ({e}); recomputing",
                            profile.name, label
                        )),
                    }
                }
            }
        }
        if let Some(spec) = opts.shard {
            if !spec.owns(p * slots + s) {
                return SweepItem::Skipped;
            }
        }
        narrator.note(&format!("[sweep w{worker:02}] {} {} ...", profile.name, label));
        let out = compute_item(opts, configs, pool, profile, s);
        if let Some(path) = &sealed_path {
            write_sealed(path, &shard::seal_item(&recipe, &out));
        }
        SweepItem::Done { out, resumed: false }
    });
    let (mut computed, mut resumed, mut skipped) = (0, 0, 0);
    let mut assembled: Vec<SweepItemOut> = Vec::new();
    for item in outs {
        match item {
            SweepItem::Done { out, resumed: was_resumed } => {
                if was_resumed {
                    resumed += 1;
                } else {
                    computed += 1;
                }
                assembled.push(out);
            }
            SweepItem::Skipped => skipped += 1,
        }
    }
    if skipped > 0 {
        return SweepOutcome::Partial { computed, resumed, skipped };
    }
    let mut outs = assembled.into_iter();
    let runs = profiles
        .iter()
        .map(|profile| {
            let Some(SweepItemOut::Base(base_out)) = outs.next() else {
                unreachable!("slot 0 is always the baseline item");
            };
            let (base, cfg, table, audit) = *base_out;
            let revs: Vec<RevReport> = (0..configs.len())
                .map(|_| {
                    let Some(SweepItemOut::Rev(rev)) = outs.next() else {
                        unreachable!("slots 1.. are always REV items");
                    };
                    *rev
                })
                .collect();
            ProfileRun { name: profile.name.to_string(), base, revs, table, cfg, audit }
        })
        .collect();
    SweepOutcome::Complete(runs)
}

/// Runs base + every configuration for every selected profile, fanning the
/// per-(profile, config) work items across `opts.jobs` worker threads.
///
/// The baseline simulation runs **once per profile** and is shared across
/// all configurations (the seed harness re-ran it per config pair), and
/// the config-independent prefix (program, CFG stats, table build, warmup
/// per recipe) is shared through a per-call [`WarmPool`] when `opts.pool`
/// is set. Results are deterministic and ordered by profile then
/// configuration — identical output for any `--jobs` value.
///
/// # Panics
///
/// Panics when `opts.shard` is set — sharded runs cannot assemble a
/// result set; drive them through [`sweep_configs_pooled`].
pub fn sweep_configs(opts: &BenchOptions, configs: &[SweepConfig]) -> Vec<ProfileRun> {
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    match sweep_configs_pooled(opts, configs, &pool) {
        SweepOutcome::Complete(runs) => runs,
        SweepOutcome::Partial { .. } => {
            panic!("sweep_configs cannot assemble a --shard run; use sweep_configs_pooled")
        }
    }
}

/// Runs the full base/32K/64K sweep for the selected profiles, fanned out
/// across `opts.jobs` workers (Figures 6–11 share these runs).
pub fn sweep(opts: &BenchOptions) -> Vec<SweepRow> {
    let configs = [
        SweepConfig::new("REV-32K", RevConfig::paper_default()),
        SweepConfig::new("REV-64K", RevConfig::paper_64k()),
    ];
    sweep_configs(opts, &configs)
        .into_iter()
        .map(|run| {
            let mut revs = run.revs.into_iter();
            SweepRow {
                name: run.name,
                base: run.base,
                rev32: revs.next().expect("two configs"),
                rev64: revs.next().expect("two configs"),
                table: run.table,
                cfg: run.cfg,
            }
        })
        .collect()
}

/// Builds the schema-versioned measurement snapshot (`BENCH_rev.json`)
/// from a [`sweep_configs`] fan-out.
///
/// Per profile the snapshot carries one registry per simulated
/// configuration — `base` (cpu + mem), each [`SweepConfig`] label
/// (cpu + rev + mem) — plus a `static` registry (table + cfg metrics,
/// which depend only on the workload and the standard-mode table build)
/// and an `audit` registry (the `rev-audit` coverage/collision/latency
/// matrices, see `docs/METRICS.md`).
/// Registries serialize with sorted keys and meta in insertion order, so
/// the rendered file is byte-identical for any `--jobs` value.
pub fn snapshot_from_runs(
    snap: &mut Snapshot,
    opts: &BenchOptions,
    configs: &[SweepConfig],
    runs: &[ProfileRun],
) {
    snap.meta_entry("instructions", Json::Int(opts.instructions as i64));
    snap.meta_entry("warmup", Json::Int(opts.warmup as i64));
    snap.meta_entry("scale", Json::Float(opts.scale));
    snap.meta_entry(
        "configs",
        Json::Arr(configs.iter().map(|c| Json::Str(c.label.clone())).collect()),
    );
    for run in runs {
        let mut base = MetricRegistry::new();
        run.base.cpu.export_metrics(&mut base);
        run.base.mem.export_metrics(&mut base);
        snap.add_metrics(&run.name, "base", base);
        for (cfg, rev) in configs.iter().zip(&run.revs) {
            let mut reg = MetricRegistry::new();
            rev.cpu.export_metrics(&mut reg);
            rev.rev.export_metrics(&mut reg);
            rev.mem.export_metrics(&mut reg);
            snap.add_metrics(&run.name, &cfg.label, reg);
        }
        let mut st = MetricRegistry::new();
        run.table.export_metrics(&mut st);
        run.cfg.export_metrics(&mut st);
        snap.add_metrics(&run.name, "static", st);
        snap.add_metrics(&run.name, "audit", run.audit.clone());
    }
}

/// Mounts every attack from `rev-attacks` under the paper-default
/// configuration and records the outcomes into `snap` (Table 1's data;
/// `rev-trace compare` flags any detection flip as a regression).
pub fn record_attacks(
    snap: &mut Snapshot,
) -> Vec<(rev_attacks::AttackKind, rev_attacks::AttackOutcome)> {
    let mut outs = Vec::new();
    for kind in rev_attacks::AttackKind::ALL {
        let out = rev_attacks::mount(kind, RevConfig::paper_default())
            .unwrap_or_else(|e| panic!("attack scenario {kind} failed to mount: {e}"));
        snap.attacks.push(AttackRecord {
            kind: kind.to_string(),
            detected: out.detected,
            violation: out.violation.map(|v| v.kind.to_string()),
        });
        outs.push((kind, out));
    }
    outs
}

/// Writes a rendered snapshot to `path`, narrating the destination.
pub fn write_snapshot(snap: &Snapshot, path: &str, narrator: &Narrator) {
    std::fs::write(path, snap.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    narrator.note(&format!("[snapshot] wrote {path}"));
}

/// A simple fixed-width table printer (or CSV when `csv` is set).
#[derive(Debug)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>, csv: bool) -> Self {
        TablePrinter {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints to stdout.
    pub fn print(&self) {
        if self.csv {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    out.push_str(&format!("  {:>w$}", cell, w = widths[i]));
                }
            }
            out
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Harmonic mean (the paper reports per-benchmark harmonic means over
/// runs; across benchmarks it reports arithmetic averages of overheads).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| 1.0 / v.max(1e-12)).sum();
    values.len() as f64 / s
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// One profile's simulator-throughput measurement (the `perf` binary's
/// unit of work): host wall-clock around a timed REV run plus the
/// deterministic decoded-BB-cache counters from the same run.
#[derive(Debug, Clone)]
pub struct PerfSample {
    /// Profile name.
    pub name: String,
    /// Correct-path instructions committed during the timed run.
    pub committed_instrs: u64,
    /// Host wall-clock of the timed run, nanoseconds.
    pub wall_ns: u64,
    /// Decoded-BB cache hits (see `perf.bbcache.*` in docs/METRICS.md).
    pub bb_cache_hits: u64,
    /// Decoded-BB cache misses.
    pub bb_cache_misses: u64,
    /// Decoded-BB cache invalidations (code-generation bumps).
    pub bb_cache_invalidations: u64,
    /// Superblocks formed (see `perf.superblock.*` in docs/METRICS.md).
    pub sb_formed: u64,
    /// Commits validated by superblock replay.
    pub sb_hits: u64,
    /// Superblock memos discarded as stale.
    pub sb_flushes: u64,
    /// Body hashes computed through the multi-lane CubeHash.
    pub chg_lanes: u64,
    /// Host nanoseconds materializing the program + CFG statistics
    /// (`perf.phase.gen_ns`; ~0 on a warm-pool hit).
    pub gen_ns: u64,
    /// Host nanoseconds building tables + assembling the simulator
    /// (`perf.phase.table_ns`; ~0 on a warm-pool hit).
    pub table_ns: u64,
    /// Host nanoseconds warming up (or restoring a disk checkpoint on a
    /// disk hit; `perf.phase.warm_ns`).
    pub warm_ns: u64,
    /// Warm-pool hits contributing to this sample (`pool.hits`).
    pub pool_hits: u64,
    /// Warm-pool misses contributing to this sample (`pool.misses`).
    pub pool_misses: u64,
    /// Disk pool entries rejected and rebuilt (`pool.corrupt`).
    pub pool_corrupt: u64,
}

impl PerfSample {
    /// Committed instructions per host second.
    pub fn instrs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Host nanoseconds per committed instruction.
    pub fn ns_per_instr(&self) -> f64 {
        if self.committed_instrs == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.committed_instrs as f64
        }
    }
}

/// Builds the `perf` registry for one profile: simulator throughput
/// gauges (host-dependent, compared against `baselines/perf_quick.json`
/// with a tolerance band, never byte-diffed) plus the deterministic
/// decoded-BB-cache counters.
pub fn perf_registry(sample: &PerfSample) -> MetricRegistry {
    let mut reg = MetricRegistry::new();
    reg.gauge("perf.instrs_per_sec", sample.instrs_per_sec());
    reg.gauge("perf.ns_per_instr", sample.ns_per_instr());
    reg.gauge("perf.wall_ms", sample.wall_ns as f64 / 1e6);
    reg.counter("perf.committed_instrs", sample.committed_instrs);
    reg.counter("perf.bbcache.hits", sample.bb_cache_hits);
    reg.counter("perf.bbcache.misses", sample.bb_cache_misses);
    reg.counter("perf.bbcache.invalidations", sample.bb_cache_invalidations);
    reg.counter("perf.superblock.formed", sample.sb_formed);
    reg.counter("perf.superblock.hits", sample.sb_hits);
    reg.counter("perf.superblock.flushes", sample.sb_flushes);
    reg.counter("rev.chg.lanes", sample.chg_lanes);
    reg.counter("perf.phase.gen_ns", sample.gen_ns);
    reg.counter("perf.phase.table_ns", sample.table_ns);
    reg.counter("perf.phase.warm_ns", sample.warm_ns);
    reg.counter("perf.phase.measure_ns", sample.wall_ns);
    reg.counter("pool.hits", sample.pool_hits);
    reg.counter("pool.misses", sample.pool_misses);
    reg.counter("pool.corrupt", sample.pool_corrupt);
    reg
}

/// The counters every perf path shares; phase/pool fields start at zero
/// and are filled in by the caller.
fn perf_sample_body(profile: &SpecProfile, rev: &RevReport, wall_ns: u64) -> PerfSample {
    PerfSample {
        name: profile.name.to_string(),
        committed_instrs: rev.cpu.committed_instrs,
        wall_ns,
        bb_cache_hits: rev.rev.bb_cache_hits,
        bb_cache_misses: rev.rev.bb_cache_misses,
        bb_cache_invalidations: rev.rev.bb_cache_invalidations,
        sb_formed: rev.rev.sb_formed,
        sb_hits: rev.rev.sb_hits,
        sb_flushes: rev.rev.sb_flushes,
        chg_lanes: rev.rev.chg_lanes,
        gen_ns: 0,
        table_ns: 0,
        warm_ns: 0,
        pool_hits: 0,
        pool_misses: 0,
        pool_corrupt: 0,
    }
}

/// Measures one profile: a warmed-up REV run under `config` with the
/// wall clock taken around the measurement window only (workload
/// generation, table build, and warmup are timed separately as
/// `perf.phase.*`; the `pool.*` counters stay zero on this fresh path).
pub fn perf_sample(profile: &SpecProfile, opts: &BenchOptions, config: RevConfig) -> PerfSample {
    let t = std::time::Instant::now();
    let program = program_for(profile);
    let gen_ns = t.elapsed().as_nanos() as u64;
    let config = config.with_superblocks(opts.superblocks);
    let t = std::time::Instant::now();
    let mut sim = RevSimulator::new(program, config).expect("workload builds");
    let table_ns = t.elapsed().as_nanos() as u64;
    let t = std::time::Instant::now();
    sim.warmup(opts.warmup);
    let warm_ns = t.elapsed().as_nanos() as u64;
    let start = std::time::Instant::now();
    let rev = sim.run(opts.instructions);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let mut sample = perf_sample_body(profile, &rev, wall_ns);
    sample.gen_ns = gen_ns;
    sample.table_ns = table_ns;
    sample.warm_ns = warm_ns;
    sample
}

/// [`perf_sample`] through the warm pool: the prefix phases come from
/// the pool fetch — collapsing to ~0 on a hit — and the hit/miss/corrupt
/// outcome lands in the sample's `pool.*` counters.
pub fn perf_sample_pooled(
    profile: &SpecProfile,
    opts: &BenchOptions,
    config: RevConfig,
    pool: &WarmPool,
) -> PerfSample {
    let config = config.with_superblocks(opts.superblocks);
    let (mut sim, fetch) = pool.warm_fork(profile, &config, opts.warmup);
    let start = std::time::Instant::now();
    let rev = sim.run(opts.instructions);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let mut sample = perf_sample_body(profile, &rev, wall_ns);
    sample.gen_ns = fetch.gen_ns;
    sample.table_ns = fetch.table_ns;
    sample.warm_ns = fetch.warm_ns;
    sample.pool_hits = u64::from(fetch.hit);
    sample.pool_misses = u64::from(!fetch.hit);
    sample.pool_corrupt = u64::from(fetch.corrupt);
    sample
}

/// Result of [`perf_soft_check`]: per-profile verdict lines plus whether
/// any profile fell outside the band.
#[derive(Debug, Clone, Default)]
pub struct PerfCheckReport {
    /// Human-readable per-profile comparison lines.
    pub lines: Vec<String>,
    /// `true` when at least one profile's throughput left the band.
    pub drifted: bool,
}

/// Compares measured `perf.instrs_per_sec` gauges against a committed
/// baseline snapshot with a symmetric ±`band_pct` tolerance. Missing
/// profiles (either side) are reported as information, never as drift —
/// matching `rev-trace compare`'s treatment of added/removed metrics.
pub fn perf_soft_check(
    baseline: &Snapshot,
    candidate: &Snapshot,
    band_pct: f64,
) -> PerfCheckReport {
    let mut report = PerfCheckReport::default();
    let gauge = |snap: &Snapshot, profile: &str| -> Option<f64> {
        match snap.profiles.get(profile)?.get("perf")?.get("perf.instrs_per_sec") {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    };
    for profile in candidate.profiles.keys() {
        let Some(new) = gauge(candidate, profile) else { continue };
        match gauge(baseline, profile) {
            None => report.lines.push(format!("{profile}: no baseline (informational)")),
            Some(old) if old <= 0.0 => {
                report.lines.push(format!("{profile}: zero baseline (informational)"));
            }
            Some(old) => {
                let rel = (new - old) / old * 100.0;
                let out_of_band = rel.abs() > band_pct;
                if out_of_band {
                    report.drifted = true;
                }
                report.lines.push(format!(
                    "{profile}: {new:.0} instrs/s vs baseline {old:.0} ({rel:+.1}%{})",
                    if out_of_band { " — OUT OF BAND" } else { "" }
                ));
            }
        }
    }
    for profile in baseline.profiles.keys() {
        if gauge(baseline, profile).is_some() && gauge(candidate, profile).is_none() {
            report.lines.push(format!("{profile}: present in baseline only (informational)"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        assert!((overhead_pct(2.0, 1.9) - 5.0).abs() < 1e-9);
        assert_eq!(overhead_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn means() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn printer_formats() {
        let mut t = TablePrinter::new(vec!["name", "value"], false);
        t.row(vec!["a", "1"]);
        t.print(); // must not panic
        let mut c = TablePrinter::new(vec!["name", "value"], true);
        c.row(vec!["a", "1"]);
        c.print();
    }

    #[test]
    fn parse_accepts_every_flag() {
        let opts = BenchOptions::parse([
            "--instructions",
            "1234",
            "--warmup",
            "99",
            "--scale",
            "0.5",
            "--bench",
            "mcf",
            "--csv",
            "--jobs",
            "3",
            "--preflight",
            "--json",
            "out.json",
            "--quiet",
            "--superblocks=off",
            "--pool=off",
            "--ckpt-pool",
            "/tmp/pool",
            "--shard",
            "2/3",
            "--shard-dir",
            "/tmp/shards",
            "--resume",
        ])
        .expect("well-formed command line");
        assert_eq!(opts.instructions, 1234);
        assert_eq!(opts.warmup, 99);
        assert!((opts.scale - 0.5).abs() < 1e-12);
        assert_eq!(opts.only, vec!["mcf".to_string()]);
        assert!(opts.csv && opts.preflight && opts.quiet && opts.resume);
        assert_eq!(opts.jobs, 3);
        assert_eq!(opts.json.as_deref(), Some("out.json"));
        assert!(!opts.superblocks && !opts.pool);
        assert_eq!(opts.ckpt_pool.as_deref(), Some("/tmp/pool"));
        assert_eq!(opts.shard, Some(ShardSpec { index: 2, total: 3 }));
        assert_eq!(opts.shard_dir.as_deref(), Some("/tmp/shards"));
    }

    #[test]
    fn parse_rejects_malformed_input_with_structured_errors() {
        let err = |args: &[&str]| BenchOptions::parse(args.iter().copied()).unwrap_err();
        assert!(err(&["--warmup", "soon"]).message.contains("--warmup"));
        assert!(err(&["--instructions", "-5"]).message.contains("--instructions"));
        assert!(err(&["--instructions"]).message.contains("needs a value"));
        assert!(err(&["--jobs", "many"]).message.contains("--jobs"));
        assert!(err(&["--scale", "x"]).message.contains("--scale"));
        assert!(err(&["--shard", "3/2"]).message.contains("--shard"));
        assert!(err(&["--shard", "1/2"]).message.contains("--shard-dir"));
        assert!(err(&["--superblocks"]).message.contains("unknown argument"));
        assert!(err(&["--frobnicate"]).message.contains("unknown argument"));
    }

    #[test]
    fn options_profiles_filter() {
        let mut o = BenchOptions::default();
        assert_eq!(o.profiles().len(), 18);
        assert!(o.jobs >= 1, "default jobs must be at least 1");
        o.only = vec!["gcc".into(), "mcf".into()];
        assert_eq!(o.profiles().len(), 2);
        o.scale = 0.05;
        assert!(o.profiles()[0].static_bbs < 10_000);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = parallel_map(1, &items, |_, &x| x * 3 + 1);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(parallel_map(jobs, &items, |_, &x| x * 3 + 1), serial, "jobs={jobs}");
        }
        let empty: Vec<u64> = parallel_map(4, &[] as &[u64], |_, &x| x);
        assert!(empty.is_empty());
    }

    /// The headline determinism guarantee: a sweep produces identical
    /// measurements no matter how many worker threads ran it.
    #[test]
    fn sweep_deterministic_across_job_counts() {
        let mut opts = BenchOptions {
            instructions: 20_000,
            warmup: 4_000,
            scale: 0.05,
            only: vec!["mcf".into()],
            quiet: true,
            jobs: 1,
            preflight: true,
            ..BenchOptions::default()
        };
        let serial = sweep(&opts);
        opts.jobs = 4;
        let parallel = sweep(&opts);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.base.cpu.ipc(), p.base.cpu.ipc(), "base IPC must not depend on jobs");
            assert_eq!(s.rev32.cpu.ipc(), p.rev32.cpu.ipc(), "REV-32K IPC must not depend on jobs");
            assert_eq!(s.rev64.cpu.ipc(), p.rev64.cpu.ipc(), "REV-64K IPC must not depend on jobs");
            assert_eq!(s.table.image_bytes, p.table.image_bytes);
        }
    }
}
