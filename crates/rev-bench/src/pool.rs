//! The warm-start checkpoint pool: build once, fork per slot.
//!
//! Every (profile × configuration) work item in a sweep pays the same
//! config-independent prefix — program materialization, CFG statistics,
//! the AES-heavy signature-table build — and, per full recipe, the same
//! warmup run. [`WarmPool`] memoizes all three layers behind
//! content-addressed keys so the prefix is computed once per process and
//! every further item starts from a cheap [`RevSimulator::fork`] of the
//! warmed simulator. Fork is proven byte-equivalent to a
//! checkpoint → restore round-trip (`rev-core/tests/ckpt.rs`), so a
//! pooled sweep renders measurement snapshots byte-identical to a fresh
//! one — `rev-bench/tests/equivalence.rs` pins that across all 18
//! profiles, and `scripts/check.sh` hard-gates it.
//!
//! ## Keying and invalidation (DESIGN.md §13)
//!
//! Three shelves, each keyed by an FNV-1a-64 digest of a versioned
//! recipe string:
//!
//! * **program** — `prog/1 | SpecProfile` → generated [`Program`] +
//!   [`CfgStats`]. Workload generation is deterministic in the profile.
//! * **tables** — `tables/1 | SpecProfile | mode | BbLimits` → built
//!   (unplaced) [`SignatureTable`]s + [`TableStats`]. Table content
//!   depends only on the program, the validation mode and the BB limits;
//!   SC size, deferral depth etc. never reach the builder, so e.g.
//!   standard-mode 32K and 64K slots share one AES schedule expansion.
//! * **warm** — `rev-bench-pool/1 | rev-ckpt/1 | SpecProfile |
//!   RevConfig | warmup` → a warmed [`RevSimulator`]. The full
//!   `RevConfig` debug form (which includes the superblocks flag) and
//!   the warmup budget are part of the key; the `rev-ckpt/1` schema
//!   version is included so any codec bump invalidates disk entries.
//!
//! Warm entries optionally persist under `--ckpt-pool DIR` as sealed
//! `rev-ckpt/1` envelopes (`Session::checkpoint` with the recipe string
//! as the envelope's recipe section). A disk entry is trusted only if
//! the trailing checksum verifies, the stored recipe string matches the
//! requested one byte-for-byte (a digest collision or stale schema shows
//! up here), and the structural fingerprint matches the freshly rebuilt
//! simulator. Any failure counts as `pool.corrupt` and the entry is
//! rebuilt fail-open — a corrupt cache can cost time, never correctness.

use crate::cfg_stats_for;
use rev_core::{linked_tables, RevConfig, RevSimulator, Session};
use rev_prog::CfgStats;
use rev_prog::Program;
use rev_sigtable::{SignatureTable, TableStats};
use rev_trace::{fnv1a64, CKPT_SCHEMA};
use rev_workloads::{generate, SpecProfile};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A point-in-time copy of the pool's counters (`pool.*` in
/// `docs/METRICS.md`, surfaced per profile by the `perf` binary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Warm fetches served from the pool (memory or a valid disk entry).
    pub hits: u64,
    /// Warm fetches that had to build (no entry anywhere).
    pub misses: u64,
    /// Disk entries rejected (checksum, recipe, or fingerprint) and
    /// rebuilt fail-open.
    pub corrupt: u64,
}

/// What one [`WarmPool::warm_fork`] call did, with host-side phase
/// timings for the config-independent prefix. On a pool hit all three
/// phase costs collapse to ~0 — the `perf.phase.*` rows make the win
/// visible in `BENCH_rev.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolFetch {
    /// Served from the pool (memory or disk) rather than built.
    pub hit: bool,
    /// A disk entry existed but failed validation and was rebuilt.
    pub corrupt: bool,
    /// Program materialization + CFG statistics, nanoseconds.
    pub gen_ns: u64,
    /// Signature-table build (AES schedule expansion) + simulator
    /// assembly, nanoseconds.
    pub table_ns: u64,
    /// Warmup run (or disk-checkpoint restore on a disk hit), nanoseconds.
    pub warm_ns: u64,
}

/// One single-flight memo shelf: key → slot, where the slot's inner
/// mutex is held across the build so concurrent requesters for the same
/// key block until the first build lands (requesters for other keys
/// proceed — the outer map lock is only held for the slot lookup).
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

#[derive(Debug)]
struct Shelf<V> {
    slots: Mutex<HashMap<u64, Slot<V>>>,
}

impl<V> Default for Shelf<V> {
    fn default() -> Self {
        Shelf { slots: Mutex::new(HashMap::new()) }
    }
}

impl<V> Shelf<V> {
    fn slot(&self, key: u64) -> Arc<Mutex<Option<Arc<V>>>> {
        self.slots.lock().unwrap().entry(key).or_default().clone()
    }

    fn get_or_build(&self, key: u64, build: impl FnOnce() -> V) -> Arc<V> {
        let slot = self.slot(key);
        let mut guard = slot.lock().unwrap();
        if let Some(v) = guard.as_ref() {
            return Arc::clone(v);
        }
        let v = Arc::new(build());
        *guard = Some(Arc::clone(&v));
        v
    }
}

/// The warm-start pool: per-process memo shelves for the sweep's
/// config-independent prefix plus an optional on-disk warm-checkpoint
/// cache. Shared by reference across `parallel_map` workers.
#[derive(Debug)]
pub struct WarmPool {
    disk: Option<PathBuf>,
    programs: Shelf<(Program, CfgStats)>,
    tables: Shelf<(Vec<SignatureTable>, Vec<TableStats>)>,
    /// Warmed simulators live *inside* their slot mutex (not behind a
    /// shared `Arc<RevSimulator>`): a simulator is `Send` but not `Sync`
    /// (the memory model keeps an interior-mutable segment-lookup
    /// cache), so every fork happens under the slot lock.
    warm: Mutex<HashMap<u64, Arc<Mutex<Option<RevSimulator>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

impl WarmPool {
    /// Creates a pool; `disk_dir` (the `--ckpt-pool DIR` flag) enables
    /// the on-disk warm-checkpoint cache, created on first use.
    pub fn new(disk_dir: Option<&str>) -> Self {
        WarmPool {
            disk: disk_dir.map(PathBuf::from),
            programs: Shelf::default(),
            tables: Shelf::default(),
            warm: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// The pool counters so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// The profile's generated program and CFG statistics, built once
    /// per process.
    pub fn program(&self, profile: &SpecProfile) -> Arc<(Program, CfgStats)> {
        let key = fnv1a64(format!("prog/1|{profile:?}").as_bytes());
        self.programs.get_or_build(key, || {
            let program = generate(profile);
            let cfg = cfg_stats_for(&program);
            (program, cfg)
        })
    }

    /// The built (unplaced) signature tables for `(profile, mode,
    /// bb_limits)` — everything [`RevConfig`] contributes to table
    /// content — built once per process.
    fn table_bundle(
        &self,
        profile: &SpecProfile,
        config: &RevConfig,
    ) -> Arc<(Vec<SignatureTable>, Vec<TableStats>)> {
        let key = fnv1a64(
            format!("tables/1|{profile:?}|mode={:?}|limits={:?}", config.mode, config.bb_limits)
                .as_bytes(),
        );
        self.tables.get_or_build(key, || {
            let program = self.program(profile);
            linked_tables(&program.0, config).expect("workload builds")
        })
    }

    /// Per-module table statistics for `(profile, config)` without
    /// assembling a simulator — what the table-sizes phase needs.
    pub fn table_stats(&self, profile: &SpecProfile, config: &RevConfig) -> Vec<TableStats> {
        self.table_bundle(profile, config).1.clone()
    }

    /// Assembles a cold (unwarmed) simulator from the memoized program
    /// and tables — indistinguishable from `RevSimulator::new` on the
    /// same inputs, minus the repeated analysis and AES work.
    pub fn cold_sim(&self, profile: &SpecProfile, config: &RevConfig) -> RevSimulator {
        let program = self.program(profile);
        let bundle = self.table_bundle(profile, config);
        RevSimulator::with_prebuilt(program.0.clone(), *config, bundle.0.clone(), bundle.1.clone())
            .expect("workload builds")
    }

    /// The warm recipe string — the full content address of a pooled
    /// simulator. Anything that could change a single counter of a
    /// warmed run is in here.
    fn warm_recipe(profile: &SpecProfile, config: &RevConfig, warmup: u64) -> String {
        format!("rev-bench-pool/1|{CKPT_SCHEMA}|{profile:?}|{config:?}|warmup={warmup}")
    }

    /// A warmed simulator for `(profile, config, warmup)`, forked from
    /// the pool: the first request per key builds (or restores from the
    /// disk cache) and every request returns an independent fork. The
    /// returned [`PoolFetch`] carries the phase timings and hit/miss
    /// outcome for the `perf.phase.*` / `pool.*` metrics.
    pub fn warm_fork(
        &self,
        profile: &SpecProfile,
        config: &RevConfig,
        warmup: u64,
    ) -> (RevSimulator, PoolFetch) {
        let recipe = Self::warm_recipe(profile, config, warmup);
        let key = fnv1a64(recipe.as_bytes());
        let mut fetch = PoolFetch::default();
        let slot = self.warm.lock().unwrap().entry(key).or_default().clone();
        let mut guard = slot.lock().unwrap();
        if let Some(sim) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            fetch.hit = true;
            let fork = sim.fork().expect("pooled simulators never arm injectors or traces");
            return (fork, fetch);
        }
        let sim = match self.disk_load(&recipe, key, profile, config, &mut fetch) {
            Some(sim) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                fetch.hit = true;
                sim
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let t = Instant::now();
                self.program(profile);
                fetch.gen_ns = t.elapsed().as_nanos() as u64;
                let t = Instant::now();
                let mut sim = self.cold_sim(profile, config);
                fetch.table_ns = t.elapsed().as_nanos() as u64;
                let t = Instant::now();
                if warmup > 0 {
                    sim.warmup(warmup);
                }
                fetch.warm_ns = t.elapsed().as_nanos() as u64;
                if warmup > 0 {
                    sim = self.disk_store(&recipe, key, sim);
                }
                sim
            }
        };
        let fork = sim.fork().expect("pooled simulators never arm injectors or traces");
        *guard = Some(sim);
        (fork, fetch)
    }

    fn warm_path(&self, key: u64) -> Option<PathBuf> {
        self.disk.as_ref().map(|d| d.join(format!("warm-{key:016x}.ckpt")))
    }

    /// Tries the on-disk warm cache. `None` means "no usable entry" —
    /// absent is silent, while a present-but-invalid entry (checksum,
    /// recipe, fingerprint, or decode failure) bumps `pool.corrupt` and
    /// falls through to a rebuild. A valid entry is restored into a
    /// cold simulator rebuilt from the memo shelves, with the restore
    /// cost attributed to the warm phase.
    fn disk_load(
        &self,
        recipe: &str,
        key: u64,
        profile: &SpecProfile,
        config: &RevConfig,
        fetch: &mut PoolFetch,
    ) -> Option<RevSimulator> {
        let path = self.warm_path(key)?;
        let data = std::fs::read(&path).ok()?;
        let mut reject = || {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            fetch.corrupt = true;
        };
        let Ok(stored) = Session::recipe(&data) else {
            reject();
            return None;
        };
        if stored != recipe.as_bytes() {
            reject();
            return None;
        }
        let t = Instant::now();
        self.program(profile);
        fetch.gen_ns = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let cold = self.cold_sim(profile, config);
        fetch.table_ns = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let Ok(session) = Session::restore(cold, &data) else {
            reject();
            return None;
        };
        fetch.warm_ns = t.elapsed().as_nanos() as u64;
        Some(session.into_simulator())
    }

    /// Seals the warmed simulator into the disk cache (atomic
    /// temp-file + rename so a concurrent reader never sees a torn
    /// entry) and hands it back. Any I/O failure is silently ignored —
    /// the disk cache is an accelerator, never a correctness dependency.
    fn disk_store(&self, recipe: &str, key: u64, sim: RevSimulator) -> RevSimulator {
        let Some(path) = self.warm_path(key) else { return sim };
        let session = Session::new(sim, u64::MAX);
        if let Ok(envelope) = session.checkpoint(recipe.as_bytes()) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if std::fs::write(&tmp, &envelope).is_ok() && std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        session.into_simulator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_workloads::ALL_PROFILES;

    fn tiny_profile() -> SpecProfile {
        ALL_PROFILES.iter().find(|p| p.name == "mcf").unwrap().scaled(0.05)
    }

    /// The pool is shared by reference across `parallel_map` workers.
    #[test]
    fn pool_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<WarmPool>();
    }

    #[test]
    fn warm_forks_are_independent_and_counted() {
        let pool = WarmPool::new(None);
        let p = tiny_profile();
        let config = RevConfig::paper_default();
        let (mut a, fa) = pool.warm_fork(&p, &config, 2_000);
        let (mut b, fb) = pool.warm_fork(&p, &config, 2_000);
        assert!(!fa.hit && fb.hit, "first builds, second hits");
        assert!(fa.warm_ns > 0, "the build pays the warmup");
        let ra = a.run(5_000);
        let rb = b.run(5_000);
        assert_eq!(ra.cpu.cycles, rb.cpu.cycles, "forks must be indistinguishable");
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1, corrupt: 0 });
    }

    #[test]
    fn pooled_cold_sim_matches_fresh_build() {
        let pool = WarmPool::new(None);
        let p = tiny_profile();
        let config = RevConfig::paper_default();
        let mut pooled = pool.cold_sim(&p, &config);
        let mut fresh = RevSimulator::new(generate(&p), config).unwrap();
        assert_eq!(pooled.fingerprint(), fresh.fingerprint());
        let a = pooled.run(5_000);
        let b = fresh.run(5_000);
        assert_eq!(a.cpu.cycles, b.cpu.cycles);
        assert_eq!(a.rev.validations, b.rev.validations);
    }

    #[test]
    fn table_shelf_is_shared_across_sc_sizes() {
        let pool = WarmPool::new(None);
        let p = tiny_profile();
        let s32 = pool.table_stats(&p, &RevConfig::paper_default());
        let s64 = pool.table_stats(&p, &RevConfig::paper_64k());
        assert_eq!(s32, s64, "table content is independent of SC size");
        assert_eq!(pool.tables.slots.lock().unwrap().len(), 1, "one build serves both");
    }
}
