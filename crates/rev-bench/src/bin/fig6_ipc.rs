//! Figure 6: absolute IPCs for the base case and REV with 32 KiB and
//! 64 KiB signature caches.

use rev_bench::{sweep, BenchOptions, TablePrinter};

fn main() {
    let opts = BenchOptions::from_args();
    let mut t =
        TablePrinter::new(vec!["benchmark", "base IPC", "REV 32K IPC", "REV 64K IPC"], opts.csv);
    for row in sweep(&opts) {
        t.row(vec![
            row.name.clone(),
            format!("{:.3}", row.base.cpu.ipc()),
            format!("{:.3}", row.rev32.cpu.ipc()),
            format!("{:.3}", row.rev64.cpu.ipc()),
        ]);
    }
    t.print();
}
