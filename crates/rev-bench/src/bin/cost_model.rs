//! Sec. VI: area and power overhead of the REV additions (analytical
//! model calibrated to the paper's CACTI 6.0 + McPAT estimates at 32 nm /
//! 3 GHz: ~8 % core area, ~7.2 % core power, < 5.5 % chip power).

use rev_core::CostModel;

fn main() {
    let m = CostModel::paper_default();
    println!("REV area/power model (32 nm, 3 GHz core)");
    println!("=========================================");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "SC size", "area mm2", "power W", "core area %", "core pwr %", "chip pwr %"
    );
    for kib in [8usize, 16, 32, 64, 128, 256] {
        let r = m.evaluate(kib << 10, false);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.2} {:>12.2} {:>12.2}",
            format!("{kib} KiB"),
            r.added_area_mm2,
            r.added_power_w,
            r.core_area_overhead * 100.0,
            r.core_power_overhead * 100.0,
            r.chip_power_overhead * 100.0
        );
    }
    println!();
    let d = m.evaluate(32 << 10, false);
    let s = m.evaluate(32 << 10, true);
    println!(
        "32 KiB SC, dedicated AES : {:.1}% core area, {:.1}% core power, {:.1}% chip power",
        d.core_area_overhead * 100.0,
        d.core_power_overhead * 100.0,
        d.chip_power_overhead * 100.0
    );
    println!(
        "32 KiB SC, shared AES    : {:.1}% core area, {:.1}% core power, {:.1}% chip power",
        s.core_area_overhead * 100.0,
        s.core_power_overhead * 100.0,
        s.chip_power_overhead * 100.0
    );
    println!();
    println!("paper: ~8% core area, ~7.2% core power, <5.5% chip power; lower if the");
    println!("decryption logic is shared with the CPU's existing AES units.");
}
