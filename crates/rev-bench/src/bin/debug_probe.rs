//! Developer probe: detailed REV counters for one benchmark.

use rev_bench::{run_benchmark, BenchOptions};
use rev_core::RevConfig;
use rev_mem::Requester;

fn main() {
    let opts = BenchOptions::from_args();
    for p in opts.profiles() {
        let r = run_benchmark(&p, &opts, RevConfig::paper_default());
        let c = &r.rev.cpu;
        let base = &r.base.cpu;
        println!("== {} ==", p.name);
        println!(
            "base: ipc {:.3} cycles {} mispred {:.3} uniq {} wrongpath {}",
            base.ipc(),
            base.cycles,
            base.mispredict_rate(),
            base.unique_branches(),
            base.wrong_path_fetched
        );
        println!(
            "rev : ipc {:.3} cycles {} mispred {:.3} uniq {}",
            c.ipc(),
            c.cycles,
            c.mispredict_rate(),
            c.unique_branches()
        );
        println!(
            "stalls: validation {} defer_full {}  (of {} cycles)",
            c.validation_stall_cycles, c.defer_full_stall_cycles, c.cycles
        );
        let s = &r.rev.rev;
        println!(
            "sc: hits {} partial {} complete {} commit_miss {} evict {}",
            s.sc.hits, s.sc.partial_misses, s.sc.complete_misses, s.commit_misses, s.sc.evictions
        );
        println!(
            "validations {} digest_checks {} spill_fetches {} fill_touches {} ret_checks {} splits {}",
            s.validations, s.digest_checks, s.spill_fetches, s.fill_touches, s.return_checks, s.artificial_splits
        );
        println!(
            "stall reasons: chg {} fill {} spill {}",
            s.stall_chg, s.stall_fill, s.stall_spill
        );
        println!(
            "defer: released {} peak {}  sag_refills {}",
            s.stores_released, s.defer_peak, s.sag_refills
        );
        let m = &r.rev.mem;
        println!(
            "mem sigfetch: l1 {}/{} l2 {}/{} dram {}",
            m.l1_misses[Requester::SigFetch.idx()],
            m.l1_accesses[Requester::SigFetch.idx()],
            m.l2_misses[Requester::SigFetch.idx()],
            m.l2_accesses[Requester::SigFetch.idx()],
            m.dram_accesses[Requester::SigFetch.idx()]
        );
        println!(
            "mem data(rev): l1 {}/{}  base l1 {}/{}",
            m.l1_misses[Requester::Data.idx()],
            m.l1_accesses[Requester::Data.idx()],
            r.base.mem.l1_misses[Requester::Data.idx()],
            r.base.mem.l1_accesses[Requester::Data.idx()],
        );
        println!("overhead {:.2}%", r.overhead_pct());
    }
}
