//! Simulator-throughput benchmark: committed instructions per host second
//! and host nanoseconds per instruction, per workload profile.
//!
//! This measures the *simulator*, not the modeled hardware — the numbers
//! feed the ROADMAP's "as fast as the hardware allows" axis and the
//! `scripts/check.sh` soft regression gate, not any paper figure. Each
//! profile runs once under the paper-default REV configuration with the
//! wall clock taken around the measurement window only (generation, table
//! build, and warmup excluded). Runs are serial (`--jobs` would have every
//! run contend for the same cores and time noise, not work).
//!
//! ```text
//! usage: perf [--quick] [--instructions N] [--warmup N] [--scale F]
//!             [--bench NAME]... [--json PATH] [--check BASELINE]
//!             [--band PCT] [--csv] [--quiet] [--superblocks=on|off]
//!             [--pool=on|off] [--ckpt-pool DIR]
//! ```
//!
//! * `--json PATH` — write/merge the `perf` registries into `PATH`. If
//!   the file already holds a `rev-trace/1` snapshot (e.g. the
//!   `BENCH_rev.json` that `reproduce_all` wrote), its existing profiles
//!   and attack records are preserved and each profile gains/replaces a
//!   `perf` configuration; otherwise a fresh snapshot is created.
//! * `--check BASELINE` — compare `perf.instrs_per_sec` against a
//!   committed baseline snapshot with a ±`--band` percent tolerance
//!   (default 15). Out-of-band drift exits with code **2** (soft-warning
//!   semantics, mirroring `rev-trace compare`'s distinct exit codes);
//!   in-band runs exit 0.
//!
//! Throughput gauges are host-dependent; only the `perf.bbcache.*`,
//! `perf.superblock.*`, `rev.chg.lanes` and `perf.committed_instrs`
//! counters are deterministic. Never byte-diff this output — that is
//! what the band is for.

use rev_bench::{
    perf_registry, perf_sample, perf_sample_pooled, perf_soft_check, BenchOptions, Narrator,
    TablePrinter, WarmPool,
};
use rev_core::RevConfig;
use rev_trace::Snapshot;

fn main() {
    let mut opts = BenchOptions::default();
    let mut check: Option<String> = None;
    let mut band_pct = 15.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--instructions" => {
                opts.instructions =
                    value("--instructions").parse().expect("--instructions must be an integer")
            }
            "--warmup" => opts.warmup = value("--warmup").parse().expect("--warmup: integer"),
            "--scale" => opts.scale = value("--scale").parse().expect("--scale: float"),
            "--quick" => {
                opts.scale = 0.05;
                opts.instructions = 200_000;
                opts.warmup = 50_000;
            }
            "--bench" => opts.only.push(value("--bench")),
            "--json" => opts.json = Some(value("--json")),
            "--check" => check = Some(value("--check")),
            "--band" => band_pct = value("--band").parse().expect("--band: float (percent)"),
            "--csv" => opts.csv = true,
            "--quiet" => opts.quiet = true,
            "--superblocks=on" => opts.superblocks = true,
            "--superblocks=off" => opts.superblocks = false,
            "--pool=on" => opts.pool = true,
            "--pool=off" => opts.pool = false,
            "--ckpt-pool" => opts.ckpt_pool = Some(value("--ckpt-pool")),
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!(
                    "usage: perf [--quick] [--instructions N] [--warmup N] [--scale F]\n\
                     \x20           [--bench NAME]... [--json PATH] [--check BASELINE]\n\
                     \x20           [--band PCT] [--csv] [--quiet] [--superblocks=on|off]\n\
                     \x20           [--pool=on|off] [--ckpt-pool DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    let narrator = Narrator::new(opts.quiet);
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let profiles = opts.profiles();
    let mut samples = Vec::with_capacity(profiles.len());
    for profile in &profiles {
        narrator.note(&format!("[perf] {} ...", profile.name));
        samples.push(if opts.pool {
            perf_sample_pooled(profile, &opts, RevConfig::paper_default(), &pool)
        } else {
            perf_sample(profile, &opts, RevConfig::paper_default())
        });
    }

    let mut table = TablePrinter::new(
        vec![
            "benchmark",
            "instrs/sec",
            "ns/instr",
            "bbcache hit%",
            "sb hit%",
            "sb flush",
            "wall ms",
        ],
        opts.csv,
    );
    let mut total_instrs = 0u64;
    let mut total_ns = 0u64;
    for s in &samples {
        let probes = s.bb_cache_hits + s.bb_cache_misses;
        let hit_pct =
            if probes == 0 { 0.0 } else { s.bb_cache_hits as f64 / probes as f64 * 100.0 };
        let sb_total = s.sb_hits + s.sb_formed;
        let sb_pct = if sb_total == 0 { 0.0 } else { s.sb_hits as f64 / sb_total as f64 * 100.0 };
        table.row(vec![
            s.name.clone(),
            format!("{:.0}", s.instrs_per_sec()),
            format!("{:.1}", s.ns_per_instr()),
            format!("{hit_pct:.1}"),
            format!("{sb_pct:.1}"),
            format!("{}", s.sb_flushes),
            format!("{:.1}", s.wall_ns as f64 / 1e6),
        ]);
        total_instrs += s.committed_instrs;
        total_ns += s.wall_ns;
    }
    table.print();
    if total_ns > 0 {
        println!(
            "aggregate: {:.0} committed instrs/sec over {} profiles",
            total_instrs as f64 / (total_ns as f64 / 1e9),
            samples.len()
        );
    }

    // Build the candidate snapshot (merging into an existing one when the
    // target file already holds a rev-trace/1 snapshot).
    let mut snap = match &opts.json {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Snapshot::parse(&text).unwrap_or_else(|e| {
                eprintln!("error: {path} exists but is not a rev-trace snapshot: {e}");
                std::process::exit(2);
            }),
            Err(_) => Snapshot::new(),
        },
        None => Snapshot::new(),
    };
    for s in &samples {
        snap.add_metrics(&s.name, "perf", perf_registry(s));
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, snap.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        narrator.note(&format!("[snapshot] wrote {path}"));
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("error: reading {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = Snapshot::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: parsing {baseline_path}: {e}");
            std::process::exit(2);
        });
        let report = perf_soft_check(&baseline, &snap, band_pct);
        println!("perf check vs {baseline_path} (±{band_pct:.0}% band):");
        for line in &report.lines {
            println!("  {line}");
        }
        if report.drifted {
            println!("perf check: DRIFT (soft gate — exit 2)");
            std::process::exit(2);
        }
        println!("perf check: within band");
    }
}
