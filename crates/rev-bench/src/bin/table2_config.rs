//! Table 2: the simulated processor and memory-system configuration.

use rev_core::{CpuConfig, MemConfig, RevConfig};

fn main() {
    let cpu = CpuConfig::paper_default();
    let mem = MemConfig::paper_default();
    let rev = RevConfig::paper_default();
    println!("Processor and memory system configuration (paper Table 2)");
    println!("==========================================================");
    println!("Fetch queue size        : {}", cpu.fetch_queue);
    println!("Dispatch width          : {}", cpu.width);
    println!("ROB size                : {}", cpu.rob_size);
    println!("LSQ size                : {}", cpu.lsq_size);
    println!("Unified register file   : {} registers", cpu.phys_regs);
    println!(
        "Function units          : {} ALU, {} FPU, {} store + {} load units",
        cpu.alu_units, cpu.fpu_units, cpu.store_units, cpu.load_units
    );
    println!(
        "Fetch-to-commit depth S : {} cycles (CHG latency H = {})",
        cpu.min_fetch_to_commit(),
        rev.chg.latency
    );
    let cc = |c: rev_mem::CacheConfig| {
        format!("{} KiB, {} cycles, {}-way", c.size_bytes >> 10, c.latency, c.assoc)
    };
    println!("L1D                     : {}", cc(mem.l1d));
    println!("L1I                     : {}", cc(mem.l1i));
    println!("L2                      : {}", cc(mem.l2));
    println!(
        "Memory                  : {} cycles first chunk, {} banks, {}-byte bursts",
        mem.dram.first_chunk_latency, mem.dram.banks, mem.dram.burst_bytes
    );
    println!(
        "TLBs                    : {}-entry L1 I-TLB, {}-entry L1 D-TLB, {}-entry L2 TLB",
        mem.itlb.entries, mem.dtlb.entries, mem.l2tlb.entries
    );
    println!(
        "Branch predictor        : {}K gshare, {}-entry BTB, {}-deep RAS",
        cpu.predictor.gshare_entries / 1024,
        cpu.predictor.btb_entries,
        cpu.predictor.ras_depth
    );
    println!(
        "REV                     : {} KiB {}-way SC (DTLB shared via extra port), {} mode",
        rev.sc_capacity >> 10,
        rev.sc_assoc,
        rev.mode
    );
}
