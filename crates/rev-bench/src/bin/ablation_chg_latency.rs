//! Ablation: CHG hash latency `H` vs the pipeline's fetch-to-commit depth
//! `S` (= 16). The paper asserts full overlap when `H ≤ S` (Sec. VI);
//! this sweep shows overhead flat through H = 16 and climbing beyond —
//! the case where dummy post-commit stages would be needed.

use rev_bench::{overhead_pct, program_for, BenchOptions, TablePrinter};
use rev_core::{RevConfig, RevSimulator};

fn main() {
    let opts = BenchOptions::from_args();
    let latencies: [u64; 6] = [8, 12, 16, 24, 32, 48];
    let mut headers = vec!["benchmark".to_string(), "base IPC".to_string()];
    headers.extend(latencies.iter().map(|h| format!("H={h} ovh %")));
    let mut t = TablePrinter::new(headers, opts.csv);
    for p in opts.profiles() {
        eprintln!("[ablation_chg] {} ...", p.name);
        let base = {
            let sim = RevSimulator::new(program_for(&p), RevConfig::paper_default()).unwrap();
            sim.run_baseline(opts.instructions).cpu.ipc()
        };
        let mut row = vec![p.name.to_string(), format!("{base:.3}")];
        for &h in &latencies {
            let mut cfg = RevConfig::paper_default();
            cfg.chg.latency = h;
            let mut sim = RevSimulator::new(program_for(&p), cfg).unwrap();
            let r = sim.run(opts.instructions);
            row.push(format!("{:.2}", overhead_pct(base, r.cpu.ipc())));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("expected: flat for H <= S (16), rising once the hash latency can no");
    println!("longer hide behind the fetch-to-commit distance.");
}
