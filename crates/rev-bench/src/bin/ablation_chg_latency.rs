//! Ablation: CHG hash latency `H` vs the pipeline's fetch-to-commit depth
//! `S` (= 16). The paper asserts full overlap when `H ≤ S` (Sec. VI);
//! this sweep shows overhead flat through H = 16 and climbing beyond —
//! the case where dummy post-commit stages would be needed.

use rev_bench::{overhead_pct, sim_for, BenchOptions, TablePrinter, WarmPool};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let latencies: [u64; 6] = [8, 12, 16, 24, 32, 48];
    let mut headers = vec!["benchmark".to_string(), "base IPC".to_string()];
    headers.extend(latencies.iter().map(|h| format!("H={h} ovh %")));
    let mut t = TablePrinter::new(headers, opts.csv);
    for p in opts.profiles() {
        eprintln!("[ablation_chg] {} ...", p.name);
        let base = {
            let sim = sim_for(&pool, &opts, &p, RevConfig::paper_default());
            sim.run_baseline(opts.instructions).cpu.ipc()
        };
        let mut row = vec![p.name.to_string(), format!("{base:.3}")];
        for &h in &latencies {
            let mut cfg = RevConfig::paper_default();
            cfg.chg.latency = h;
            let mut sim = sim_for(&pool, &opts, &p, cfg);
            let r = sim.run(opts.instructions);
            row.push(format!("{:.2}", overhead_pct(base, r.cpu.ipc())));
        }
        t.row(row);
    }
    t.print();
    println!();
    println!("expected: flat for H <= S (16), rising once the hash latency can no");
    println!("longer hide behind the fetch-to-commit distance.");
}
