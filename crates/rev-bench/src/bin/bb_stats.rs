//! Sec. VIII basic-block statistics: static BB counts, instructions per
//! BB, successors per BB (paper anchors: 20 266 BBs for mcf, 92 218 for
//! gamess; 5.5 instrs/BB for mcf, 10.02 for gamess; 1.68 successors/BB
//! for soplex, 3.339 for gamess).

use rev_bench::{cfg_stats_for, program_for, BenchOptions, TablePrinter};

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec!["benchmark", "static BBs", "instrs/BB", "succ/BB", "computed BBs", "code KiB"],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[bb_stats] {} ...", p.name);
        let program = program_for(&p);
        let s = cfg_stats_for(&program);
        t.row(vec![
            p.name.to_string(),
            s.blocks.to_string(),
            format!("{:.2}", s.avg_instrs),
            format!("{:.2}", s.avg_successors),
            s.computed_terminators.to_string(),
            (program.total_code_len() >> 10).to_string(),
        ]);
    }
    t.print();
}
