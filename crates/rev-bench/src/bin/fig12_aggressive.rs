//! Figure 12: IPC overhead with **aggressive** validation (every branch
//! target verified explicitly; 32-byte entries carrying two inline
//! targets). The paper reports slightly better behavior than standard in
//! some cases because two successors are verified from a single entry.

use rev_bench::{mean, overhead_pct, run_benchmark, run_rev_only, BenchOptions, TablePrinter};
use rev_core::{RevConfig, ValidationMode};

fn main() {
    let opts = BenchOptions::from_args();
    let cfg32 = RevConfig::paper_default().with_mode(ValidationMode::Aggressive);
    let cfg64 = RevConfig::paper_64k().with_mode(ValidationMode::Aggressive);
    let mut t = TablePrinter::new(
        vec!["benchmark", "base IPC", "aggr-32K ovh %", "aggr-64K ovh %"],
        opts.csv,
    );
    let mut o32 = Vec::new();
    let mut o64 = Vec::new();
    for p in opts.profiles() {
        eprintln!("[fig12] {} ...", p.name);
        let r32 = run_benchmark(&p, &opts, cfg32);
        let r64 = run_rev_only(&p, &opts, cfg64);
        let base_ipc = r32.base.cpu.ipc();
        let a = r32.overhead_pct();
        let b = overhead_pct(base_ipc, r64.cpu.ipc());
        o32.push(a);
        o64.push(b);
        t.row(vec![
            p.name.to_string(),
            format!("{base_ipc:.3}"),
            format!("{a:.2}"),
            format!("{b:.2}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "average aggressive-mode overhead: {:.2}% (32K) / {:.2}% (64K)",
        mean(&o32),
        mean(&o64)
    );
}
