//! Figure 12: IPC overhead with **aggressive** validation (every branch
//! target verified explicitly; 32-byte entries carrying two inline
//! targets). The paper reports slightly better behavior than standard in
//! some cases because two successors are verified from a single entry.
//! Both SC sizes fan out across `--jobs` workers sharing one baseline.

use rev_bench::{mean, overhead_pct, sweep_configs, BenchOptions, SweepConfig, TablePrinter};
use rev_core::{RevConfig, ValidationMode};

fn main() {
    let opts = BenchOptions::from_args();
    let configs = [
        SweepConfig::new(
            "aggr-32K",
            RevConfig::paper_default().with_mode(ValidationMode::Aggressive),
        ),
        SweepConfig::new("aggr-64K", RevConfig::paper_64k().with_mode(ValidationMode::Aggressive)),
    ];
    let mut t = TablePrinter::new(
        vec!["benchmark", "base IPC", "aggr-32K ovh %", "aggr-64K ovh %"],
        opts.csv,
    );
    let mut o32 = Vec::new();
    let mut o64 = Vec::new();
    for r in sweep_configs(&opts, &configs) {
        let base_ipc = r.base.cpu.ipc();
        let a = overhead_pct(base_ipc, r.revs[0].cpu.ipc());
        let b = overhead_pct(base_ipc, r.revs[1].cpu.ipc());
        o32.push(a);
        o64.push(b);
        t.row(vec![r.name.clone(), format!("{base_ipc:.3}"), format!("{a:.2}"), format!("{b:.2}")]);
    }
    t.print();
    println!();
    println!(
        "average aggressive-mode overhead: {:.2}% (32K) / {:.2}% (64K)",
        mean(&o32),
        mean(&o64)
    );
}
