//! Figure 9: number of unique branch (BB-terminator) addresses
//! encountered during execution — the control-flow working set that
//! drives signature-cache behavior. Benchmarks fan out across `--jobs`
//! workers.

use rev_bench::{sweep_configs, BenchOptions, SweepConfig, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let mut t = TablePrinter::new(
        vec!["benchmark", "unique branches", "static BBs", "dynamic coverage %"],
        opts.csv,
    );
    for r in sweep_configs(&opts, &configs) {
        let unique = r.revs[0].cpu.unique_branches();
        t.row(vec![
            r.name.clone(),
            unique.to_string(),
            r.cfg.blocks.to_string(),
            format!("{:.1}", unique as f64 / r.cfg.blocks.max(1) as f64 * 100.0),
        ]);
    }
    t.print();
}
