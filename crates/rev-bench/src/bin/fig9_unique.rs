//! Figure 9: number of unique branch (BB-terminator) addresses
//! encountered during execution — the control-flow working set that
//! drives signature-cache behavior.

use rev_bench::{run_benchmark, BenchOptions, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec!["benchmark", "unique branches", "static BBs", "dynamic coverage %"],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[fig9] {} ...", p.name);
        let r = run_benchmark(&p, &opts, RevConfig::paper_default());
        let unique = r.rev.cpu.unique_branches();
        t.row(vec![
            p.name.to_string(),
            unique.to_string(),
            r.cfg.blocks.to_string(),
            format!("{:.1}", unique as f64 / r.cfg.blocks.max(1) as f64 * 100.0),
        ]);
    }
    t.print();
}
