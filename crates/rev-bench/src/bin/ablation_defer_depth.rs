//! Ablation: post-commit deferred-store buffer depth and the artificial
//! BB split threshold (paper Sec. IV.A). Too shallow a buffer
//! back-pressures commit; too aggressive splitting multiplies
//! validations.

use rev_bench::{overhead_pct, sim_for, BenchOptions, TablePrinter, WarmPool};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let configs: [(usize, usize, usize); 5] = [
        // (defer capacity, max instrs/BB, max stores/BB)
        (8, 64, 8),
        (16, 64, 8),
        (48, 64, 8),
        (48, 16, 4),
        (48, 8, 2),
    ];
    let mut headers = vec!["benchmark".to_string(), "base IPC".to_string()];
    headers.extend(configs.iter().map(|(d, i, s)| format!("d{d}/i{i}/s{s} ovh%")));
    let mut t = TablePrinter::new(headers, opts.csv);
    for p in opts.profiles() {
        eprintln!("[ablation_defer] {} ...", p.name);
        let base = {
            let sim = sim_for(&pool, &opts, &p, RevConfig::paper_default());
            sim.run_baseline(opts.instructions).cpu.ipc()
        };
        let mut row = vec![p.name.to_string(), format!("{base:.3}")];
        for &(defer, max_instrs, max_stores) in &configs {
            let mut cfg = RevConfig::paper_default();
            cfg.defer_capacity = defer;
            cfg.bb_limits.max_instrs = max_instrs;
            cfg.bb_limits.max_stores = max_stores;
            let mut sim = sim_for(&pool, &opts, &p, cfg);
            let r = sim.run(opts.instructions);
            row.push(format!("{:.2}", overhead_pct(base, r.cpu.ipc())));
        }
        t.row(row);
    }
    t.print();
}
