//! Ablation: post-commit deferred-store buffer depth and the artificial
//! BB split threshold (paper Sec. IV.A). Too shallow a buffer
//! back-pressures commit; too aggressive splitting multiplies
//! validations.

use rev_bench::{overhead_pct, program_for, BenchOptions, TablePrinter};
use rev_core::{RevConfig, RevSimulator};

fn main() {
    let opts = BenchOptions::from_args();
    let configs: [(usize, usize, usize); 5] = [
        // (defer capacity, max instrs/BB, max stores/BB)
        (8, 64, 8),
        (16, 64, 8),
        (48, 64, 8),
        (48, 16, 4),
        (48, 8, 2),
    ];
    let mut headers = vec!["benchmark".to_string(), "base IPC".to_string()];
    headers.extend(configs.iter().map(|(d, i, s)| format!("d{d}/i{i}/s{s} ovh%")));
    let mut t = TablePrinter::new(headers, opts.csv);
    for p in opts.profiles() {
        eprintln!("[ablation_defer] {} ...", p.name);
        let base = {
            let sim = RevSimulator::new(program_for(&p), RevConfig::paper_default()).unwrap();
            sim.run_baseline(opts.instructions).cpu.ipc()
        };
        let mut row = vec![p.name.to_string(), format!("{base:.3}")];
        for &(defer, max_instrs, max_stores) in &configs {
            let mut cfg = RevConfig::paper_default();
            cfg.defer_capacity = defer;
            cfg.bb_limits.max_instrs = max_instrs;
            cfg.bb_limits.max_stores = max_stores;
            let mut sim = RevSimulator::new(program_for(&p), cfg).unwrap();
            let r = sim.run(opts.instructions);
            row.push(format!("{:.2}", overhead_pct(base, r.cpu.ipc())));
        }
        t.row(row);
    }
    t.print();
}
