//! Table 1: attack classes, how each compromises the victim, and how REV
//! detects it — plus the containment check (no tainted store reaches
//! validated memory) and the control run on an unprotected machine.

use rev_attacks::{mount, mount_unprotected, AttackKind};
use rev_bench::{BenchOptions, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec![
            "attack",
            "unprotected: compromised",
            "REV: detected",
            "REV: detection",
            "REV: memory tainted",
        ],
        opts.csv,
    );
    for kind in AttackKind::ALL {
        eprintln!("[table1] {kind} ...");
        let unprot = if kind == AttackKind::TableTamper {
            "n/a".to_string() // tampering only matters to the validator
        } else {
            let u = mount_unprotected(kind).expect("victim builds");
            if u.tainted {
                "yes".to_string()
            } else {
                "NO (?)".to_string()
            }
        };
        let out = match mount(kind, RevConfig::paper_default()) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("[table1] {kind} failed to mount: {e}");
                std::process::exit(2);
            }
        };
        t.row(vec![
            kind.to_string(),
            unprot,
            if out.detected { "yes".to_string() } else { "NO (!)".to_string() },
            out.violation.map(|v| v.kind.to_string()).unwrap_or_else(|| "-".into()),
            if out.tainted { "YES (!)".to_string() } else { "no".to_string() },
        ]);
    }
    t.print();
    println!();
    println!("expected: every attack compromises the unprotected machine, every");
    println!("attack is detected by REV, and no attack ever taints validated memory.");
}
