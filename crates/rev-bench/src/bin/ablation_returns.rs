//! Ablation: the paper's delayed return validation (Sec. V.A) vs naive
//! eager validation of return targets (walking the return block's
//! return-site list, which lives in spill entries for any popularly
//! called function). The delayed scheme exists to avoid exactly that
//! walk; this measures what it saves.

use rev_bench::{overhead_pct, sim_for, BenchOptions, TablePrinter, WarmPool};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let mut t = TablePrinter::new(
        vec![
            "benchmark",
            "base IPC",
            "delayed ovh %",
            "naive ovh %",
            "delayed spills",
            "naive spills",
        ],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[ablation_returns] {} ...", p.name);
        let base = {
            let sim = sim_for(&pool, &opts, &p, RevConfig::paper_default());
            sim.run_baseline_with_warmup(opts.warmup, opts.instructions).cpu.ipc()
        };
        let run = |naive: bool| {
            let mut cfg = RevConfig::paper_default();
            cfg.naive_return_validation = naive;
            let mut sim = if opts.pool {
                pool.warm_fork(&p, &cfg, opts.warmup).0
            } else {
                let mut sim = sim_for(&pool, &opts, &p, cfg);
                sim.warmup(opts.warmup);
                sim
            };
            let r = sim.run(opts.instructions);
            (overhead_pct(base, r.cpu.ipc()), r.rev.spill_fetches)
        };
        let (d_ovh, d_spills) = run(false);
        let (n_ovh, n_spills) = run(true);
        t.row(vec![
            p.name.to_string(),
            format!("{base:.3}"),
            format!("{d_ovh:.2}"),
            format!("{n_ovh:.2}"),
            d_spills.to_string(),
            n_spills.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("delayed return validation should show fewer spill fetches and lower");
    println!("overhead, most visibly on call-heavy benchmarks.");
}
