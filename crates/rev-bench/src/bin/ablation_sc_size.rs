//! Ablation: SC capacity sweep from 4 KiB to 256 KiB (the paper only
//! evaluates 32 KiB and 64 KiB), showing where the working set saturates.

use rev_bench::{overhead_pct, sim_for, BenchOptions, TablePrinter, WarmPool};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let sizes: [usize; 6] = [4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10];
    let mut headers = vec!["benchmark".to_string(), "base IPC".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{}K ovh %", s >> 10)));
    let mut t = TablePrinter::new(headers, opts.csv);
    for p in opts.profiles() {
        eprintln!("[ablation_sc_size] {} ...", p.name);
        let base = {
            let sim = sim_for(&pool, &opts, &p, RevConfig::paper_default());
            sim.run_baseline(opts.instructions).cpu.ipc()
        };
        let mut row = vec![p.name.to_string(), format!("{base:.3}")];
        for &size in &sizes {
            let mut sim =
                sim_for(&pool, &opts, &p, RevConfig::paper_default().with_sc_capacity(size));
            let r = sim.run(opts.instructions);
            row.push(format!("{:.2}", overhead_pct(base, r.cpu.ipc())));
        }
        t.row(row);
    }
    t.print();
}
