//! Regenerates every table and figure in one pass (shares the base/32K/64K
//! sweep across Figures 6–11) and prints them in paper order.

use rev_bench::{mean, overhead_pct, run_rev_only, sweep, BenchOptions, TablePrinter};
use rev_core::{CostModel, RevConfig, RevSimulator, ValidationMode};
use rev_mem::Requester;

fn main() {
    let opts = BenchOptions::from_args();

    println!("=== Table 1: attacks and detection ===");
    for kind in rev_attacks::AttackKind::ALL {
        let out = rev_attacks::mount(kind, RevConfig::paper_default());
        println!(
            "  {:<28} detected: {:<5} via {:<32} tainted: {}",
            kind.to_string(),
            out.detected,
            out.violation.map(|v| v.kind.to_string()).unwrap_or_else(|| "-".into()),
            out.tainted
        );
    }
    println!();

    let rows = sweep(&opts);

    println!("=== Sec. VIII BB statistics ===");
    let mut t = TablePrinter::new(vec!["benchmark", "static BBs", "instrs/BB", "succ/BB"], opts.csv);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            r.cfg.blocks.to_string(),
            format!("{:.2}", r.cfg.avg_instrs),
            format!("{:.2}", r.cfg.avg_successors),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 6: IPC (base, REV-32K, REV-64K) ===");
    let mut t = TablePrinter::new(vec!["benchmark", "base", "REV 32K", "REV 64K"], opts.csv);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.3}", r.base.cpu.ipc()),
            format!("{:.3}", r.rev32.cpu.ipc()),
            format!("{:.3}", r.rev64.cpu.ipc()),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 7: IPC overhead % ===");
    let mut t = TablePrinter::new(vec!["benchmark", "ovh 32K %", "ovh 64K %"], opts.csv);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.2}", r.overhead32()),
            format!("{:.2}", r.overhead64()),
        ]);
    }
    t.print();
    let o32: Vec<f64> = rows.iter().map(|r| r.overhead32()).collect();
    let o64: Vec<f64> = rows.iter().map(|r| r.overhead64()).collect();
    println!(
        "average: {:.2}% (32K) / {:.2}% (64K)   [paper: 1.87% / 1.63%]",
        mean(&o32),
        mean(&o64)
    );
    println!();

    println!("=== Figure 8: committed branches ===");
    let mut t = TablePrinter::new(vec!["benchmark", "committed branches"], opts.csv);
    for r in &rows {
        t.row(vec![r.name.clone(), r.rev32.cpu.committed_branches.to_string()]);
    }
    t.print();
    println!();

    println!("=== Figure 9: unique branches ===");
    let mut t = TablePrinter::new(vec!["benchmark", "unique branches"], opts.csv);
    for r in &rows {
        t.row(vec![r.name.clone(), r.rev32.cpu.unique_branches().to_string()]);
    }
    t.print();
    println!();

    println!("=== Figure 10: SC miss counts (32K SC) ===");
    let mut t = TablePrinter::new(
        vec!["benchmark", "partial", "complete", "miss rate %", "stall cycles"],
        opts.csv,
    );
    for r in &rows {
        let sc = r.rev32.rev.sc;
        t.row(vec![
            r.name.clone(),
            sc.partial_misses.to_string(),
            sc.complete_misses.to_string(),
            format!("{:.3}", sc.miss_rate() * 100.0),
            r.rev32.cpu.validation_stall_cycles.to_string(),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 11: cache stats servicing SC misses ===");
    let mut t = TablePrinter::new(
        vec!["benchmark", "L1D acc", "L1D miss", "L2 acc", "L2 miss", "DRAM"],
        opts.csv,
    );
    let i = Requester::SigFetch.idx();
    for r in &rows {
        let m = r.rev32.mem;
        t.row(vec![
            r.name.clone(),
            m.l1_accesses[i].to_string(),
            m.l1_misses[i].to_string(),
            m.l2_accesses[i].to_string(),
            m.l2_misses[i].to_string(),
            m.dram_accesses[i].to_string(),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 12: aggressive-mode overhead % ===");
    let agg32 = RevConfig::paper_default().with_mode(ValidationMode::Aggressive);
    let agg64 = RevConfig::paper_64k().with_mode(ValidationMode::Aggressive);
    let mut t = TablePrinter::new(vec!["benchmark", "aggr 32K %", "aggr 64K %"], opts.csv);
    let mut a32 = Vec::new();
    let mut a64 = Vec::new();
    for (p, r) in opts.profiles().iter().zip(&rows) {
        eprintln!("[fig12] {} ...", p.name);
        let g32 = run_rev_only(p, &opts, agg32);
        let g64 = run_rev_only(p, &opts, agg64);
        let base = r.base.cpu.ipc();
        let x = overhead_pct(base, g32.cpu.ipc());
        let y = overhead_pct(base, g64.cpu.ipc());
        a32.push(x);
        a64.push(y);
        t.row(vec![r.name.clone(), format!("{x:.2}"), format!("{y:.2}")]);
    }
    t.print();
    println!("average: {:.2}% (32K) / {:.2}% (64K)", mean(&a32), mean(&a64));
    println!();

    println!("=== Sec. V.D: CFI-only overhead % ===");
    let cfi = RevConfig::paper_default().with_mode(ValidationMode::CfiOnly);
    let mut t = TablePrinter::new(vec!["benchmark", "cfi-only ovh %"], opts.csv);
    let mut co = Vec::new();
    for (p, r) in opts.profiles().iter().zip(&rows) {
        eprintln!("[cfi] {} ...", p.name);
        let g = run_rev_only(p, &opts, cfi);
        let x = overhead_pct(r.base.cpu.ipc(), g.cpu.ipc());
        co.push(x);
        t.row(vec![r.name.clone(), format!("{x:.2}")]);
    }
    t.print();
    println!("average: {:.2}%   [paper: 0.04%..1.68%]", mean(&co));
    println!();

    println!("=== Secs. V.B-V.D: signature-table sizes (% of code) ===");
    let mut t =
        TablePrinter::new(vec!["benchmark", "standard %", "aggressive %", "cfi-only %"], opts.csv);
    let mut ss = Vec::new();
    for p in opts.profiles() {
        let ratio = |mode: ValidationMode| {
            let program = rev_bench::program_for(&p);
            let sim =
                RevSimulator::new(program, RevConfig::paper_default().with_mode(mode)).unwrap();
            sim.table_stats()[0].ratio_to_code() * 100.0
        };
        let s = ratio(ValidationMode::Standard);
        ss.push(s);
        t.row(vec![
            p.name.to_string(),
            format!("{s:.1}"),
            format!("{:.1}", ratio(ValidationMode::Aggressive)),
            format!("{:.1}", ratio(ValidationMode::CfiOnly)),
        ]);
    }
    t.print();
    println!("standard average: {:.1}%   [paper: 15-52%, avg 37%]", mean(&ss));
    println!();

    println!("=== Sec. VI: cost model ===");
    let m = CostModel::paper_default();
    let r = m.evaluate(32 << 10, false);
    println!(
        "REV @ 32 KiB SC: {:.1}% core area, {:.1}% core power, {:.1}% chip power",
        r.core_area_overhead * 100.0,
        r.core_power_overhead * 100.0,
        r.chip_power_overhead * 100.0
    );
    println!("[paper: ~8% core area, ~7.2% core power, <5.5% chip power]");
}
