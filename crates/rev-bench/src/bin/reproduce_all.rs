//! Regenerates every table and figure in one pass and prints them in paper
//! order. All simulation work — base, REV-32K, REV-64K, both aggressive
//! variants and CFI-only — fans out across `--jobs` worker threads in a
//! single sweep, with each profile's baseline computed once and shared by
//! every configuration. The config-independent prefix (program, CFG
//! stats, table builds, warmup per recipe) is shared through one warm
//! checkpoint pool spanning the sweep *and* the table-sizes phase; a
//! `--shard i/N` run seals its share of the work items into `--shard-dir`
//! and prints nothing, and the `--resume` merge run renders output
//! byte-identical to a monolithic one.

use rev_bench::{
    mean, overhead_pct, parallel_map, program_for, record_attacks, snapshot_from_runs,
    sweep_configs_pooled, write_snapshot, BenchOptions, Narrator, SweepConfig, SweepOutcome,
    TablePrinter, WarmPool,
};
use rev_core::{CostModel, RevConfig, RevSimulator, ValidationMode};
use rev_mem::Requester;
use rev_trace::Snapshot;
use std::time::Instant;

fn main() {
    let opts = BenchOptions::from_args();
    let narrator = Narrator::new(opts.quiet);
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let t_start = Instant::now();
    let mut snap = Snapshot::new();

    // One fan-out covers Figures 6-12 and the CFI-only section: per
    // profile one shared baseline plus five REV configurations.
    let configs = [
        SweepConfig::new("REV-32K", RevConfig::paper_default()),
        SweepConfig::new("REV-64K", RevConfig::paper_64k()),
        SweepConfig::new(
            "aggr-32K",
            RevConfig::paper_default().with_mode(ValidationMode::Aggressive),
        ),
        SweepConfig::new("aggr-64K", RevConfig::paper_64k().with_mode(ValidationMode::Aggressive)),
        SweepConfig::new("cfi-only", RevConfig::paper_default().with_mode(ValidationMode::CfiOnly)),
    ];

    if opts.shard.is_some() {
        // A shard run simulates and seals only its own work items and
        // keeps stdout empty — only the merge run (`--resume` without
        // `--shard`) renders tables, so exactly one output ever exists.
        match sweep_configs_pooled(&opts, &configs, &pool) {
            SweepOutcome::Partial { computed, resumed, skipped } => narrator.note(&format!(
                "[shard] sealed {computed} item(s), {resumed} already sealed, \
                 {skipped} left to other shards in {:.2?}",
                t_start.elapsed()
            )),
            SweepOutcome::Complete(_) => narrator.note(&format!(
                "[shard] every item computed or already sealed in {:.2?}",
                t_start.elapsed()
            )),
        }
        return;
    }

    println!("=== Table 1: attacks and detection ===");
    for (kind, out) in record_attacks(&mut snap) {
        println!(
            "  {:<28} detected: {:<5} via {:<32} tainted: {}",
            kind.to_string(),
            out.detected,
            out.violation.map(|v| v.kind.to_string()).unwrap_or_else(|| "-".into()),
            out.tainted
        );
    }
    println!();
    let t_attacks = t_start.elapsed();

    let t_sweep_start = Instant::now();
    let runs = match sweep_configs_pooled(&opts, &configs, &pool) {
        SweepOutcome::Complete(runs) => runs,
        SweepOutcome::Partial { .. } => unreachable!("partial sweeps only happen under --shard"),
    };
    let t_sweep = t_sweep_start.elapsed();
    let (rev32, rev64, agg32, agg64, cfi) = (0, 1, 2, 3, 4);

    println!("=== Sec. VIII BB statistics ===");
    let mut t =
        TablePrinter::new(vec!["benchmark", "static BBs", "instrs/BB", "succ/BB"], opts.csv);
    for r in &runs {
        t.row(vec![
            r.name.clone(),
            r.cfg.blocks.to_string(),
            format!("{:.2}", r.cfg.avg_instrs),
            format!("{:.2}", r.cfg.avg_successors),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 6: IPC (base, REV-32K, REV-64K) ===");
    let mut t = TablePrinter::new(vec!["benchmark", "base", "REV 32K", "REV 64K"], opts.csv);
    for r in &runs {
        t.row(vec![
            r.name.clone(),
            format!("{:.3}", r.base.cpu.ipc()),
            format!("{:.3}", r.revs[rev32].cpu.ipc()),
            format!("{:.3}", r.revs[rev64].cpu.ipc()),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 7: IPC overhead % ===");
    let ovh =
        |r: &rev_bench::ProfileRun, i: usize| overhead_pct(r.base.cpu.ipc(), r.revs[i].cpu.ipc());
    let mut t = TablePrinter::new(vec!["benchmark", "ovh 32K %", "ovh 64K %"], opts.csv);
    for r in &runs {
        t.row(vec![
            r.name.clone(),
            format!("{:.2}", ovh(r, rev32)),
            format!("{:.2}", ovh(r, rev64)),
        ]);
    }
    t.print();
    let o32: Vec<f64> = runs.iter().map(|r| ovh(r, rev32)).collect();
    let o64: Vec<f64> = runs.iter().map(|r| ovh(r, rev64)).collect();
    println!(
        "average: {:.2}% (32K) / {:.2}% (64K)   [paper: 1.87% / 1.63%]",
        mean(&o32),
        mean(&o64)
    );
    println!();

    println!("=== Figure 8: committed branches ===");
    let mut t = TablePrinter::new(vec!["benchmark", "committed branches"], opts.csv);
    for r in &runs {
        t.row(vec![r.name.clone(), r.revs[rev32].cpu.committed_branches.to_string()]);
    }
    t.print();
    println!();

    println!("=== Figure 9: unique branches ===");
    let mut t = TablePrinter::new(vec!["benchmark", "unique branches"], opts.csv);
    for r in &runs {
        t.row(vec![r.name.clone(), r.revs[rev32].cpu.unique_branches().to_string()]);
    }
    t.print();
    println!();

    println!("=== Figure 10: SC miss counts (32K SC) ===");
    let mut t = TablePrinter::new(
        vec!["benchmark", "partial", "complete", "miss rate %", "stall cycles"],
        opts.csv,
    );
    for r in &runs {
        let sc = r.revs[rev32].rev.sc;
        t.row(vec![
            r.name.clone(),
            sc.partial_misses.to_string(),
            sc.complete_misses.to_string(),
            format!("{:.3}", sc.miss_rate() * 100.0),
            r.revs[rev32].cpu.validation_stall_cycles.to_string(),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 11: cache stats servicing SC misses ===");
    let mut t = TablePrinter::new(
        vec!["benchmark", "L1D acc", "L1D miss", "L2 acc", "L2 miss", "DRAM"],
        opts.csv,
    );
    let i = Requester::SigFetch.idx();
    for r in &runs {
        let m = r.revs[rev32].mem;
        t.row(vec![
            r.name.clone(),
            m.l1_accesses[i].to_string(),
            m.l1_misses[i].to_string(),
            m.l2_accesses[i].to_string(),
            m.l2_misses[i].to_string(),
            m.dram_accesses[i].to_string(),
        ]);
    }
    t.print();
    println!();

    println!("=== Figure 12: aggressive-mode overhead % ===");
    let mut t = TablePrinter::new(vec!["benchmark", "aggr 32K %", "aggr 64K %"], opts.csv);
    let a32: Vec<f64> = runs.iter().map(|r| ovh(r, agg32)).collect();
    let a64: Vec<f64> = runs.iter().map(|r| ovh(r, agg64)).collect();
    for r in &runs {
        t.row(vec![
            r.name.clone(),
            format!("{:.2}", ovh(r, agg32)),
            format!("{:.2}", ovh(r, agg64)),
        ]);
    }
    t.print();
    println!("average: {:.2}% (32K) / {:.2}% (64K)", mean(&a32), mean(&a64));
    println!();

    println!("=== Sec. V.D: CFI-only overhead % ===");
    let mut t = TablePrinter::new(vec!["benchmark", "cfi-only ovh %"], opts.csv);
    let co: Vec<f64> = runs.iter().map(|r| ovh(r, cfi)).collect();
    for r in &runs {
        t.row(vec![r.name.clone(), format!("{:.2}", ovh(r, cfi))]);
    }
    t.print();
    println!("average: {:.2}%   [paper: 0.04%..1.68%]", mean(&co));
    println!();

    println!("=== Secs. V.B-V.D: signature-table sizes (% of code) ===");
    let t_tables_start = Instant::now();
    let mut t =
        TablePrinter::new(vec!["benchmark", "standard %", "aggressive %", "cfi-only %"], opts.csv);
    let profiles = opts.profiles();
    let size_rows = parallel_map(opts.jobs, &profiles, |worker, p| {
        narrator.note(&format!("[tables w{worker:02}] {} ...", p.name));
        // Through the pool all three modes are table-shelf hits: the
        // sweep above already built standard, aggressive and CFI-only
        // tables for every profile.
        let ratio = |mode: ValidationMode| {
            let config = RevConfig::paper_default().with_mode(mode);
            let stats = if opts.pool {
                pool.table_stats(p, &config)[0]
            } else {
                let program = program_for(p);
                let sim = RevSimulator::new(program, config).unwrap();
                sim.table_stats()[0]
            };
            stats.ratio_to_code() * 100.0
        };
        (
            p.name.to_string(),
            ratio(ValidationMode::Standard),
            ratio(ValidationMode::Aggressive),
            ratio(ValidationMode::CfiOnly),
        )
    });
    let mut ss = Vec::new();
    for (name, s, a, c) in size_rows {
        ss.push(s);
        t.row(vec![name, format!("{s:.1}"), format!("{a:.1}"), format!("{c:.1}")]);
    }
    t.print();
    println!("standard average: {:.1}%   [paper: 15-52%, avg 37%]", mean(&ss));
    println!();
    let t_tables = t_tables_start.elapsed();

    println!("=== Sec. VI: cost model ===");
    let m = CostModel::paper_default();
    let r = m.evaluate(32 << 10, false);
    println!(
        "REV @ 32 KiB SC: {:.1}% core area, {:.1}% core power, {:.1}% chip power",
        r.core_area_overhead * 100.0,
        r.core_power_overhead * 100.0,
        r.chip_power_overhead * 100.0
    );
    println!("[paper: ~8% core area, ~7.2% core power, <5.5% chip power]");

    // Measurement snapshot: everything above, machine-readable and
    // schema-versioned, for `rev-trace compare` regression gating.
    snapshot_from_runs(&mut snap, &opts, &configs, &runs);
    let json_path = opts.json.clone().unwrap_or_else(|| "BENCH_rev.json".into());
    write_snapshot(&snap, &json_path, &narrator);

    // Timing narration goes to stderr: stdout (and the snapshot) stay
    // byte-identical across hosts and `--jobs` counts; wall-clock is the
    // "modulo timing" part.
    narrator.note("=== Timing ===");
    narrator.note(&format!("jobs:                {}", opts.jobs));
    narrator.note(&format!("attacks phase:       {t_attacks:>9.2?}"));
    narrator.note(&format!(
        "sweep phase:         {:>9.2?}  ({} profiles x (base + {} configs))",
        t_sweep,
        runs.len(),
        configs.len()
    ));
    narrator.note(&format!("table-sizes phase:   {t_tables:>9.2?}"));
    narrator.note(&format!("total wall clock:    {:>9.2?}", t_start.elapsed()));
}
