//! Figure 10: signature-cache miss counts (32 KiB SC): complete misses,
//! partial misses, and the resulting commit stalls. Benchmarks fan out
//! across `--jobs` workers.

use rev_bench::{sweep_configs, BenchOptions, SweepConfig, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let mut t = TablePrinter::new(
        vec![
            "benchmark",
            "SC probes",
            "hits",
            "partial miss",
            "complete miss",
            "miss rate %",
            "stall cycles",
        ],
        opts.csv,
    );
    for r in sweep_configs(&opts, &configs) {
        let sc = r.revs[0].rev.sc;
        t.row(vec![
            r.name.clone(),
            sc.probes().to_string(),
            sc.hits.to_string(),
            sc.partial_misses.to_string(),
            sc.complete_misses.to_string(),
            format!("{:.3}", sc.miss_rate() * 100.0),
            r.revs[0].cpu.validation_stall_cycles.to_string(),
        ]);
    }
    t.print();
}
