//! Figure 10: signature-cache miss counts (32 KiB SC): complete misses,
//! partial misses, and the resulting commit stalls.

use rev_bench::{run_benchmark, BenchOptions, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec![
            "benchmark",
            "SC probes",
            "hits",
            "partial miss",
            "complete miss",
            "miss rate %",
            "stall cycles",
        ],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[fig10] {} ...", p.name);
        let r = run_benchmark(&p, &opts, RevConfig::paper_default());
        let sc = r.rev.rev.sc;
        t.row(vec![
            p.name.to_string(),
            sc.probes().to_string(),
            sc.hits.to_string(),
            sc.partial_misses.to_string(),
            sc.complete_misses.to_string(),
            format!("{:.3}", sc.miss_rate() * 100.0),
            r.rev.cpu.validation_stall_cycles.to_string(),
        ]);
    }
    t.print();
}
