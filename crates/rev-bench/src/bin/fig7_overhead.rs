//! Figure 7: IPC overhead (% of base IPC) per benchmark, for 32 KiB and
//! 64 KiB signature caches. Work fans out across `--jobs` workers; the
//! baseline is simulated once per benchmark and shared by both SC sizes.

use rev_bench::{mean, overhead_pct, sweep, BenchOptions, TablePrinter};

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec!["benchmark", "base IPC", "REV-32K IPC", "ovh 32K %", "REV-64K IPC", "ovh 64K %"],
        opts.csv,
    );
    let mut ovh32 = Vec::new();
    let mut ovh64 = Vec::new();
    for row in sweep(&opts) {
        let base_ipc = row.base.cpu.ipc();
        let o32 = overhead_pct(base_ipc, row.rev32.cpu.ipc());
        let o64 = overhead_pct(base_ipc, row.rev64.cpu.ipc());
        ovh32.push(o32);
        ovh64.push(o64);
        t.row(vec![
            row.name.clone(),
            format!("{base_ipc:.3}"),
            format!("{:.3}", row.rev32.cpu.ipc()),
            format!("{o32:.2}"),
            format!("{:.3}", row.rev64.cpu.ipc()),
            format!("{o64:.2}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "average overhead: {:.2}% (32 KiB SC)   {:.2}% (64 KiB SC)   [paper: 1.87% / 1.63%]",
        mean(&ovh32),
        mean(&ovh64)
    );
}
