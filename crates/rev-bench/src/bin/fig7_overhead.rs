//! Figure 7: IPC overhead (% of base IPC) per benchmark, for 32 KiB and
//! 64 KiB signature caches.

use rev_bench::{mean, overhead_pct, run_benchmark, run_rev_only, BenchOptions, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec!["benchmark", "base IPC", "REV-32K IPC", "ovh 32K %", "REV-64K IPC", "ovh 64K %"],
        opts.csv,
    );
    let mut ovh32 = Vec::new();
    let mut ovh64 = Vec::new();
    for p in opts.profiles() {
        eprintln!("[fig7] {} ...", p.name);
        let r32 = run_benchmark(&p, &opts, RevConfig::paper_default());
        let r64 = run_rev_only(&p, &opts, RevConfig::paper_64k());
        let base_ipc = r32.base.cpu.ipc();
        let o32 = r32.overhead_pct();
        let o64 = overhead_pct(base_ipc, r64.cpu.ipc());
        ovh32.push(o32);
        ovh64.push(o64);
        t.row(vec![
            p.name.to_string(),
            format!("{base_ipc:.3}"),
            format!("{:.3}", r32.rev.cpu.ipc()),
            format!("{o32:.2}"),
            format!("{:.3}", r64.cpu.ipc()),
            format!("{o64:.2}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "average overhead: {:.2}% (32 KiB SC)   {:.2}% (64 KiB SC)   [paper: 1.87% / 1.63%]",
        mean(&ovh32),
        mean(&ovh64)
    );
}
