//! Figure 11: cache statistics while servicing SC misses — L1D/L2
//! accesses and misses attributed to signature-fetch traffic.

use rev_bench::{run_benchmark, BenchOptions, TablePrinter};
use rev_core::RevConfig;
use rev_mem::Requester;

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec![
            "benchmark",
            "SC->L1D acc",
            "SC->L1D miss",
            "L1 miss %",
            "SC->L2 acc",
            "SC->L2 miss",
            "L2 miss %",
            "SC->DRAM",
        ],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[fig11] {} ...", p.name);
        let r = run_benchmark(&p, &opts, RevConfig::paper_default());
        let m = r.rev.mem;
        let i = Requester::SigFetch.idx();
        t.row(vec![
            p.name.to_string(),
            m.l1_accesses[i].to_string(),
            m.l1_misses[i].to_string(),
            format!("{:.1}", m.l1_miss_rate(Requester::SigFetch) * 100.0),
            m.l2_accesses[i].to_string(),
            m.l2_misses[i].to_string(),
            format!("{:.1}", m.l2_miss_rate(Requester::SigFetch) * 100.0),
            m.dram_accesses[i].to_string(),
        ]);
    }
    t.print();
}
