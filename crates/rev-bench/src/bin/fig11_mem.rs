//! Figure 11: cache statistics while servicing SC misses — L1D/L2
//! accesses and misses attributed to signature-fetch traffic. Benchmarks
//! fan out across `--jobs` workers.

use rev_bench::{sweep_configs, BenchOptions, SweepConfig, TablePrinter};
use rev_core::RevConfig;
use rev_mem::Requester;

fn main() {
    let opts = BenchOptions::from_args();
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let mut t = TablePrinter::new(
        vec![
            "benchmark",
            "SC->L1D acc",
            "SC->L1D miss",
            "L1 miss %",
            "SC->L2 acc",
            "SC->L2 miss",
            "L2 miss %",
            "SC->DRAM",
        ],
        opts.csv,
    );
    for r in sweep_configs(&opts, &configs) {
        let m = r.revs[0].mem;
        let i = Requester::SigFetch.idx();
        t.row(vec![
            r.name.clone(),
            m.l1_accesses[i].to_string(),
            m.l1_misses[i].to_string(),
            format!("{:.1}", m.l1_miss_rate(Requester::SigFetch) * 100.0),
            m.l2_accesses[i].to_string(),
            m.l2_misses[i].to_string(),
            format!("{:.1}", m.l2_miss_rate(Requester::SigFetch) * 100.0),
            m.dram_accesses[i].to_string(),
        ]);
    }
    t.print();
}
