//! Sec. V.D / VIII: CFI-only validation — only computed branches and
//! returns are checked (~10 % of dynamic branches), no hashes. Paper:
//! 0.04 %–1.68 % IPC overhead. Benchmarks fan out across `--jobs` workers.

use rev_bench::{mean, overhead_pct, sweep_configs, BenchOptions, SweepConfig, TablePrinter};
use rev_core::{RevConfig, ValidationMode};

fn main() {
    let opts = BenchOptions::from_args();
    let configs = [SweepConfig::new(
        "cfi-only",
        RevConfig::paper_default().with_mode(ValidationMode::CfiOnly),
    )];
    let mut t = TablePrinter::new(
        vec!["benchmark", "base IPC", "cfi-only IPC", "ovh %", "computed/branches %"],
        opts.csv,
    );
    let mut ovh = Vec::new();
    for r in sweep_configs(&opts, &configs) {
        let rev = &r.revs[0];
        let o = overhead_pct(r.base.cpu.ipc(), rev.cpu.ipc());
        ovh.push(o);
        let c = &rev.cpu;
        let computed_frac = rev.rev.validations as f64 / c.committed_branches.max(1) as f64;
        t.row(vec![
            r.name.clone(),
            format!("{:.3}", r.base.cpu.ipc()),
            format!("{:.3}", c.ipc()),
            format!("{o:.2}"),
            format!("{:.1}", computed_frac * 100.0),
        ]);
    }
    t.print();
    println!();
    println!(
        "average CFI-only overhead: {:.2}%  [paper: 0.04%..1.68%; ~10% of branches are computed]",
        mean(&ovh)
    );
}
