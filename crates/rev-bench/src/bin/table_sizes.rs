//! Secs. V.B–V.D: signature-table sizes as a fraction of the binary.
//! Paper: standard 15–52 % (avg 37 %); aggressive 40–65 %; CFI-only
//! 3–20 % (avg 9 %).

use rev_bench::{mean, program_for, BenchOptions, TablePrinter};
use rev_core::{RevConfig, RevSimulator, ValidationMode};

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec!["benchmark", "code KiB", "standard %", "aggressive %", "cfi-only %"],
        opts.csv,
    );
    let mut stds = Vec::new();
    let mut aggs = Vec::new();
    let mut cfis = Vec::new();
    for p in opts.profiles() {
        eprintln!("[table_sizes] {} ...", p.name);
        let ratio = |mode: ValidationMode| {
            let program = program_for(&p);
            let sim =
                RevSimulator::new(program, RevConfig::paper_default().with_mode(mode)).unwrap();
            sim.table_stats()[0].ratio_to_code() * 100.0
        };
        let s = ratio(ValidationMode::Standard);
        let a = ratio(ValidationMode::Aggressive);
        let c = ratio(ValidationMode::CfiOnly);
        stds.push(s);
        aggs.push(a);
        cfis.push(c);
        let program = program_for(&p);
        t.row(vec![
            p.name.to_string(),
            (program.total_code_len() >> 10).to_string(),
            format!("{s:.1}"),
            format!("{a:.1}"),
            format!("{c:.1}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "averages: standard {:.1}% (paper avg 37%), aggressive {:.1}% (paper 40-65%), cfi-only {:.1}% (paper avg 9%)",
        mean(&stds),
        mean(&aggs),
        mean(&cfis)
    );
}
