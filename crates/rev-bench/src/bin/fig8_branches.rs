//! Figure 8: number of committed branches during execution. Benchmarks
//! fan out across `--jobs` workers.

use rev_bench::{sweep_configs, BenchOptions, SweepConfig, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let mut t = TablePrinter::new(
        vec!["benchmark", "committed instrs", "committed branches", "branch frac %"],
        opts.csv,
    );
    for r in sweep_configs(&opts, &configs) {
        let c = &r.revs[0].cpu;
        t.row(vec![
            r.name.clone(),
            c.committed_instrs.to_string(),
            c.committed_branches.to_string(),
            format!(
                "{:.1}",
                c.committed_branches as f64 / c.committed_instrs.max(1) as f64 * 100.0
            ),
        ]);
    }
    t.print();
}
