//! Figure 8: number of committed branches during execution.

use rev_bench::{run_benchmark, BenchOptions, TablePrinter};
use rev_core::RevConfig;

fn main() {
    let opts = BenchOptions::from_args();
    let mut t = TablePrinter::new(
        vec!["benchmark", "committed instrs", "committed branches", "branch frac %"],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[fig8] {} ...", p.name);
        let r = run_benchmark(&p, &opts, RevConfig::paper_default());
        let c = &r.rev.cpu;
        t.row(vec![
            p.name.to_string(),
            c.committed_instrs.to_string(),
            c.committed_branches.to_string(),
            format!("{:.1}", c.committed_branches as f64 / c.committed_instrs.max(1) as f64 * 100.0),
        ]);
    }
    t.print();
}
