//! Ablation: the two R5 containment policies side by side — the paper's
//! post-commit deferred-store buffer vs its stricter page-shadowing
//! alternative (Sec. IV.A).

use rev_bench::{overhead_pct, sim_for, BenchOptions, TablePrinter, WarmPool};
use rev_core::{Containment, RevConfig};

fn main() {
    let opts = BenchOptions::from_args();
    let pool = WarmPool::new(opts.ckpt_pool.as_deref());
    let mut t = TablePrinter::new(
        vec!["benchmark", "base IPC", "defer ovh %", "shadow ovh %", "shadow pages"],
        opts.csv,
    );
    for p in opts.profiles() {
        eprintln!("[ablation_containment] {} ...", p.name);
        let base = {
            let sim = sim_for(&pool, &opts, &p, RevConfig::paper_default());
            sim.run_baseline_with_warmup(opts.warmup, opts.instructions).cpu.ipc()
        };
        let run = |containment: Containment| {
            let mut cfg = RevConfig::paper_default();
            cfg.containment = containment;
            let mut sim = if opts.pool {
                pool.warm_fork(&p, &cfg, opts.warmup).0
            } else {
                let mut sim = sim_for(&pool, &opts, &p, cfg);
                sim.warmup(opts.warmup);
                sim
            };
            let r = sim.run(opts.instructions);
            (overhead_pct(base, r.cpu.ipc()), r.rev.shadow.pages_created)
        };
        let (d, _) = run(Containment::DeferredStores);
        let (s, pages) = run(Containment::ShadowPages);
        t.row(vec![
            p.name.to_string(),
            format!("{base:.3}"),
            format!("{d:.2}"),
            format!("{s:.2}"),
            pages.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("page shadowing trades copy-on-write traffic (and whole-run commit");
    println!("granularity) for the ROB/store-queue extensions; overheads should be");
    println!("close, with shadowing slightly worse on store-heavy footprints.");
}
