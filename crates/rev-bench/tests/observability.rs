//! End-to-end checks of the observability layer: every exported metric is
//! documented, real snapshots round-trip, and an injected IPC regression
//! is caught by `compare`.

use rev_bench::{snapshot_from_runs, sweep_configs, BenchOptions, SweepConfig};
use rev_core::RevConfig;
use rev_trace::{compare, MetricValue, Snapshot};

fn tiny_opts() -> BenchOptions {
    BenchOptions {
        instructions: 20_000,
        warmup: 4_000,
        scale: 0.05,
        only: vec!["mcf".into()],
        quiet: true,
        jobs: 1,
        ..BenchOptions::default()
    }
}

fn tiny_snapshot() -> Snapshot {
    let opts = tiny_opts();
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let runs = sweep_configs(&opts, &configs);
    let mut snap = Snapshot::new();
    snapshot_from_runs(&mut snap, &opts, &configs, &runs);
    snap
}

/// Every metric name a real run exports must appear in docs/METRICS.md.
/// Per-requester memory counters are documented once with a `{class}`
/// placeholder in place of the final path segment.
#[test]
fn every_exported_metric_is_documented() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/METRICS.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/METRICS.md exists");
    let snap = tiny_snapshot();
    let mut missing = Vec::new();
    for (profile, configs) in &snap.profiles {
        for (config, reg) in configs {
            for name in reg.names() {
                let documented = doc.contains(&format!("`{name}`")) || {
                    let templated = match name.rsplit_once('.') {
                        Some((stem, _)) => format!("`{stem}.{{class}}`"),
                        None => String::new(),
                    };
                    doc.contains(&templated)
                };
                if !documented {
                    missing.push(format!("{profile}/{config}/{name}"));
                }
            }
        }
    }
    assert!(
        missing.is_empty(),
        "metrics exported but not documented in docs/METRICS.md:\n  {}",
        missing.join("\n  ")
    );
}

/// A real snapshot serializes, parses back and re-renders byte-identically.
#[test]
fn real_snapshot_round_trips() {
    let snap = tiny_snapshot();
    let text = snap.render();
    let back = Snapshot::parse(&text).expect("own output parses");
    assert_eq!(back.render(), text, "render -> parse -> render must be a fixed point");
    assert_eq!(back.profiles.len(), 1);
    let reg = &back.profiles["mcf"]["REV-32K"];
    assert!(matches!(reg.get("rev.validations"), Some(MetricValue::Counter(n)) if *n > 0));
    assert!(matches!(reg.get("cpu.ipc"), Some(MetricValue::Gauge(v)) if *v > 0.0));
}

/// An injected 10% IPC drop must register as a regression at the default
/// 2% threshold; the clean pair must not.
#[test]
fn injected_ipc_drop_is_flagged() {
    let baseline = tiny_snapshot();
    let clean = compare(&baseline, &baseline, 0.02);
    assert!(!clean.has_regressions(), "identical snapshots must compare clean");

    let mut degraded = baseline.clone();
    let reg = degraded.profiles.get_mut("mcf").unwrap().get_mut("REV-32K").unwrap();
    let ipc = match reg.get("cpu.ipc") {
        Some(MetricValue::Gauge(v)) => *v,
        other => panic!("cpu.ipc must be a gauge, got {other:?}"),
    };
    reg.set("cpu.ipc", MetricValue::Gauge(ipc * 0.9));
    let report = compare(&baseline, &degraded, 0.02);
    assert!(report.has_regressions(), "a 10% IPC drop must be a regression");
    let delta = report
        .deltas
        .iter()
        .find(|d| d.metric == "cpu.ipc" && d.regression)
        .expect("the flagged delta is cpu.ipc");
    assert!((delta.rel_change + 0.10).abs() < 1e-9);
}
