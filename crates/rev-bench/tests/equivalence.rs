//! Equivalence guarantees for the hot-loop optimizations: the fan-out
//! width and the tracing taps are *observability* knobs, never
//! *measurement* knobs.
//!
//! * the rendered `rev-trace/1` snapshot is byte-identical for any
//!   `--jobs` value, across **all 18** workload profiles;
//! * a run with the TraceBus attached exports exactly the metrics of a
//!   run without it;
//! * the superblock memo layer (`--superblocks=off` escape hatch) never
//!   changes a rendered snapshot byte across all 18 profiles.
//!
//! (Campaign-JSON determinism across runs and jobs lives next to the
//! engine in `crates/rev-chaos/tests/chaos.rs`; the self-modifying-code
//! invalidation contract lives in `crates/rev-core/tests/smc.rs`.)

use rev_bench::{program_for, snapshot_from_runs, sweep_configs, BenchOptions, SweepConfig};
use rev_core::{RevConfig, RevSimulator, Session, SessionStatus};
use rev_trace::{parallel_map, MetricRegistry, MetricSink, Snapshot};

fn tiny_opts() -> BenchOptions {
    BenchOptions {
        instructions: 10_000,
        warmup: 2_000,
        scale: 0.05,
        quiet: true,
        ..BenchOptions::default()
    }
}

/// The full-profile sweep renders the same snapshot bytes serially and
/// fanned out — the work plan is fixed before any worker runs, results
/// are reassembled in request order, and every registry serializes with
/// sorted keys.
#[test]
fn snapshot_is_byte_identical_across_jobs() {
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let render = |jobs: usize| {
        let mut opts = tiny_opts();
        opts.jobs = jobs;
        let runs = sweep_configs(&opts, &configs);
        assert_eq!(runs.len(), opts.profiles().len(), "every profile must be swept");
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    let serial = render(1);
    let fanned = render(4);
    assert_eq!(tiny_opts().profiles().len(), 18, "the paper's full profile set");
    assert_eq!(serial, fanned, "--jobs must never change a rendered byte");
}

/// Attaching the TraceBus (ring buffer, every tap site live) changes no
/// exported metric: same outcome, same cpu/rev/mem registries, bit for
/// bit, while the bus demonstrably carries events.
#[test]
fn tracing_does_not_perturb_measurements() {
    let opts = tiny_opts();
    for name in ["mcf", "gobmk"] {
        let sel = BenchOptions { only: vec![name.to_string()], ..tiny_opts() };
        let profile = sel.profiles().remove(0);
        let registry_of = |traced: bool| {
            let mut sim =
                RevSimulator::new(program_for(&profile), RevConfig::paper_default()).unwrap();
            let bus = traced.then(|| sim.enable_tracing(4096));
            sim.warmup(opts.warmup);
            let report = sim.run(opts.instructions);
            if let Some(bus) = bus {
                assert!(!bus.drain().is_empty(), "{name}: the bus must carry events");
            }
            let mut reg = MetricRegistry::new();
            report.cpu.export_metrics(&mut reg);
            report.rev.export_metrics(&mut reg);
            report.mem.export_metrics(&mut reg);
            (format!("{:?}", report.outcome), reg)
        };
        let (out_plain, reg_plain) = registry_of(false);
        let (out_traced, reg_traced) = registry_of(true);
        assert_eq!(out_plain, out_traced, "{name}: outcome must not depend on tracing");
        assert_eq!(reg_plain, reg_traced, "{name}: tracing must not move a single metric");
    }
}

/// Session slicing is exact: stepping a suspendable `Session` in budget
/// slices of 1, 7, 1000 or `∞` committed instructions produces, for
/// every one of the 18 workload profiles, the same outcome and
/// byte-identical cpu/rev/mem metric registries as one monolithic
/// `RevSimulator::run` call. This is the enabling property of the
/// `rev-serve` gateway (many interleaved sessions per worker thread) —
/// see `DESIGN.md` §12 for why a yield cannot perturb any counter.
#[test]
fn session_slicing_matches_monolithic_across_all_profiles() {
    let opts = tiny_opts();
    let profiles = opts.profiles();
    assert_eq!(profiles.len(), 18, "the paper's full profile set");
    let reports = parallel_map(rev_bench::default_jobs(), &profiles, |_, profile| {
        let fresh = || {
            let mut sim =
                RevSimulator::new(program_for(profile), RevConfig::paper_default()).unwrap();
            sim.warmup(opts.warmup);
            sim
        };
        let fingerprint = |report: &rev_core::RevReport| {
            let mut reg = MetricRegistry::new();
            report.cpu.export_metrics(&mut reg);
            report.rev.export_metrics(&mut reg);
            report.mem.export_metrics(&mut reg);
            (format!("{:?}", report.outcome), reg.to_json().render())
        };
        let monolithic = fingerprint(&fresh().run(opts.instructions));
        let sliced: Vec<_> = [1, 7, 1000, u64::MAX]
            .into_iter()
            .map(|budget| {
                let mut session = Session::new(fresh(), opts.instructions);
                let report = loop {
                    match session.run(budget) {
                        SessionStatus::Yielded { committed } => {
                            assert!(
                                committed < opts.instructions,
                                "{}: a yield past the target",
                                profile.name
                            );
                        }
                        SessionStatus::Done(report) => break report,
                    }
                };
                (budget, fingerprint(&report))
            })
            .collect();
        (profile.name, monolithic, sliced)
    });
    for (name, monolithic, sliced) in reports {
        for (budget, got) in sliced {
            assert_eq!(
                got, monolithic,
                "{name}: budget={budget} slicing must not move a rendered metric byte"
            );
        }
    }
}

/// Checkpoint/restore is exact for every one of the 18 workload
/// profiles: suspending a warmed session at a budget boundary, sealing
/// it into a `rev-ckpt/1` envelope, restoring it into a *cold* fresh
/// simulator (warmup is not re-run — the warmed state travels inside
/// the envelope) and finishing produces the same outcome and
/// byte-identical cpu/rev/mem metric registries as one monolithic run.
/// Re-checkpointing the restored session reproduces the envelope byte
/// for byte. This is the property that lets `rev-serve` resume a
/// crashed job from its last checkpoint without moving a verdict byte.
#[test]
fn checkpoint_restore_matches_monolithic_across_all_profiles() {
    let opts = tiny_opts();
    let profiles = opts.profiles();
    assert_eq!(profiles.len(), 18, "the paper's full profile set");
    let reports = parallel_map(rev_bench::default_jobs(), &profiles, |_, profile| {
        let warmed = || {
            let mut sim =
                RevSimulator::new(program_for(profile), RevConfig::paper_default()).unwrap();
            sim.warmup(opts.warmup);
            sim
        };
        let fingerprint = |report: &rev_core::RevReport| {
            let mut reg = MetricRegistry::new();
            report.cpu.export_metrics(&mut reg);
            report.rev.export_metrics(&mut reg);
            report.mem.export_metrics(&mut reg);
            (format!("{:?}", report.outcome), reg.to_json().render())
        };
        let monolithic = fingerprint(&warmed().run(opts.instructions));
        // Suspend a third of the way in, seal, restore cold, finish.
        let mut session = Session::new(warmed(), opts.instructions);
        let report = match session.run(opts.instructions / 3) {
            SessionStatus::Done(report) => report, // profile ended early: nothing to suspend
            SessionStatus::Yielded { .. } => {
                let envelope = session.checkpoint(profile.name.as_bytes()).unwrap();
                assert_eq!(
                    Session::recipe(&envelope).unwrap(),
                    profile.name.as_bytes(),
                    "{}: recipe must round-trip",
                    profile.name
                );
                drop(session);
                let cold =
                    RevSimulator::new(program_for(profile), RevConfig::paper_default()).unwrap();
                let restored = Session::restore(cold, &envelope).unwrap();
                assert_eq!(
                    restored.checkpoint(profile.name.as_bytes()).unwrap(),
                    envelope,
                    "{}: re-checkpoint must be byte-identical",
                    profile.name
                );
                let mut restored = restored;
                loop {
                    if let SessionStatus::Done(report) = restored.run(1000) {
                        break report;
                    }
                }
            }
        };
        (profile.name, monolithic, fingerprint(&report))
    });
    for (name, monolithic, restored) in reports {
        assert_eq!(
            restored, monolithic,
            "{name}: checkpoint/restore must not move a rendered metric byte"
        );
    }
}

/// The superblock replay layer is a pure simulator fast path: rendering
/// the full 18-profile sweep with `--superblocks=off` produces exactly
/// the bytes of the default run. (The SMC / DMA / retry invalidation
/// contracts live in `crates/rev-core/tests/smc.rs` and
/// `retry_bound.rs`.)
#[test]
fn superblocks_off_renders_identical_snapshot() {
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let render = |superblocks: bool| {
        let mut opts = tiny_opts();
        opts.superblocks = superblocks;
        let runs = sweep_configs(&opts, &configs);
        assert_eq!(runs.len(), opts.profiles().len(), "every profile must be swept");
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    assert_eq!(render(true), render(false), "superblock replay must never move a rendered byte");
}
