//! Equivalence guarantees for the hot-loop optimizations: the fan-out
//! width and the tracing taps are *observability* knobs, never
//! *measurement* knobs.
//!
//! * the rendered `rev-trace/1` snapshot is byte-identical for any
//!   `--jobs` value, across **all 18** workload profiles;
//! * a run with the TraceBus attached exports exactly the metrics of a
//!   run without it;
//! * the superblock memo layer (`--superblocks=off` escape hatch) never
//!   changes a rendered snapshot byte across all 18 profiles.
//!
//! (Campaign-JSON determinism across runs and jobs lives next to the
//! engine in `crates/rev-chaos/tests/chaos.rs`; the self-modifying-code
//! invalidation contract lives in `crates/rev-core/tests/smc.rs`.)

use rev_bench::{
    program_for, snapshot_from_runs, sweep_configs, sweep_configs_pooled, BenchOptions, ShardSpec,
    SweepConfig, SweepOutcome, WarmPool,
};
use rev_core::{RevConfig, RevSimulator, Session, SessionStatus};
use rev_trace::{parallel_map, MetricRegistry, MetricSink, Snapshot};

fn tiny_opts() -> BenchOptions {
    BenchOptions {
        instructions: 10_000,
        warmup: 2_000,
        scale: 0.05,
        quiet: true,
        ..BenchOptions::default()
    }
}

/// The full-profile sweep renders the same snapshot bytes serially and
/// fanned out — the work plan is fixed before any worker runs, results
/// are reassembled in request order, and every registry serializes with
/// sorted keys.
#[test]
fn snapshot_is_byte_identical_across_jobs() {
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let render = |jobs: usize| {
        let mut opts = tiny_opts();
        opts.jobs = jobs;
        let runs = sweep_configs(&opts, &configs);
        assert_eq!(runs.len(), opts.profiles().len(), "every profile must be swept");
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    let serial = render(1);
    let fanned = render(4);
    assert_eq!(tiny_opts().profiles().len(), 18, "the paper's full profile set");
    assert_eq!(serial, fanned, "--jobs must never change a rendered byte");
}

/// Attaching the TraceBus (ring buffer, every tap site live) changes no
/// exported metric: same outcome, same cpu/rev/mem registries, bit for
/// bit, while the bus demonstrably carries events.
#[test]
fn tracing_does_not_perturb_measurements() {
    let opts = tiny_opts();
    for name in ["mcf", "gobmk"] {
        let sel = BenchOptions { only: vec![name.to_string()], ..tiny_opts() };
        let profile = sel.profiles().remove(0);
        let registry_of = |traced: bool| {
            let mut sim =
                RevSimulator::new(program_for(&profile), RevConfig::paper_default()).unwrap();
            let bus = traced.then(|| sim.enable_tracing(4096));
            sim.warmup(opts.warmup);
            let report = sim.run(opts.instructions);
            if let Some(bus) = bus {
                assert!(!bus.drain().is_empty(), "{name}: the bus must carry events");
            }
            let mut reg = MetricRegistry::new();
            report.cpu.export_metrics(&mut reg);
            report.rev.export_metrics(&mut reg);
            report.mem.export_metrics(&mut reg);
            (format!("{:?}", report.outcome), reg)
        };
        let (out_plain, reg_plain) = registry_of(false);
        let (out_traced, reg_traced) = registry_of(true);
        assert_eq!(out_plain, out_traced, "{name}: outcome must not depend on tracing");
        assert_eq!(reg_plain, reg_traced, "{name}: tracing must not move a single metric");
    }
}

/// Session slicing is exact: stepping a suspendable `Session` in budget
/// slices of 1, 7, 1000 or `∞` committed instructions produces, for
/// every one of the 18 workload profiles, the same outcome and
/// byte-identical cpu/rev/mem metric registries as one monolithic
/// `RevSimulator::run` call. This is the enabling property of the
/// `rev-serve` gateway (many interleaved sessions per worker thread) —
/// see `DESIGN.md` §12 for why a yield cannot perturb any counter.
#[test]
fn session_slicing_matches_monolithic_across_all_profiles() {
    let opts = tiny_opts();
    let profiles = opts.profiles();
    assert_eq!(profiles.len(), 18, "the paper's full profile set");
    let reports = parallel_map(rev_bench::default_jobs(), &profiles, |_, profile| {
        let fresh = || {
            let mut sim =
                RevSimulator::new(program_for(profile), RevConfig::paper_default()).unwrap();
            sim.warmup(opts.warmup);
            sim
        };
        let fingerprint = |report: &rev_core::RevReport| {
            let mut reg = MetricRegistry::new();
            report.cpu.export_metrics(&mut reg);
            report.rev.export_metrics(&mut reg);
            report.mem.export_metrics(&mut reg);
            (format!("{:?}", report.outcome), reg.to_json().render())
        };
        let monolithic = fingerprint(&fresh().run(opts.instructions));
        let sliced: Vec<_> = [1, 7, 1000, u64::MAX]
            .into_iter()
            .map(|budget| {
                let mut session = Session::new(fresh(), opts.instructions);
                let report = loop {
                    match session.run(budget) {
                        SessionStatus::Yielded { committed } => {
                            assert!(
                                committed < opts.instructions,
                                "{}: a yield past the target",
                                profile.name
                            );
                        }
                        SessionStatus::Done(report) => break report,
                    }
                };
                (budget, fingerprint(&report))
            })
            .collect();
        (profile.name, monolithic, sliced)
    });
    for (name, monolithic, sliced) in reports {
        for (budget, got) in sliced {
            assert_eq!(
                got, monolithic,
                "{name}: budget={budget} slicing must not move a rendered metric byte"
            );
        }
    }
}

/// Checkpoint/restore is exact for every one of the 18 workload
/// profiles: suspending a warmed session at a budget boundary, sealing
/// it into a `rev-ckpt/1` envelope, restoring it into a *cold* fresh
/// simulator (warmup is not re-run — the warmed state travels inside
/// the envelope) and finishing produces the same outcome and
/// byte-identical cpu/rev/mem metric registries as one monolithic run.
/// Re-checkpointing the restored session reproduces the envelope byte
/// for byte. This is the property that lets `rev-serve` resume a
/// crashed job from its last checkpoint without moving a verdict byte.
#[test]
fn checkpoint_restore_matches_monolithic_across_all_profiles() {
    let opts = tiny_opts();
    let profiles = opts.profiles();
    assert_eq!(profiles.len(), 18, "the paper's full profile set");
    let reports = parallel_map(rev_bench::default_jobs(), &profiles, |_, profile| {
        let warmed = || {
            let mut sim =
                RevSimulator::new(program_for(profile), RevConfig::paper_default()).unwrap();
            sim.warmup(opts.warmup);
            sim
        };
        let fingerprint = |report: &rev_core::RevReport| {
            let mut reg = MetricRegistry::new();
            report.cpu.export_metrics(&mut reg);
            report.rev.export_metrics(&mut reg);
            report.mem.export_metrics(&mut reg);
            (format!("{:?}", report.outcome), reg.to_json().render())
        };
        let monolithic = fingerprint(&warmed().run(opts.instructions));
        // Suspend a third of the way in, seal, restore cold, finish.
        let mut session = Session::new(warmed(), opts.instructions);
        let report = match session.run(opts.instructions / 3) {
            SessionStatus::Done(report) => report, // profile ended early: nothing to suspend
            SessionStatus::Yielded { .. } => {
                let envelope = session.checkpoint(profile.name.as_bytes()).unwrap();
                assert_eq!(
                    Session::recipe(&envelope).unwrap(),
                    profile.name.as_bytes(),
                    "{}: recipe must round-trip",
                    profile.name
                );
                drop(session);
                let cold =
                    RevSimulator::new(program_for(profile), RevConfig::paper_default()).unwrap();
                let restored = Session::restore(cold, &envelope).unwrap();
                assert_eq!(
                    restored.checkpoint(profile.name.as_bytes()).unwrap(),
                    envelope,
                    "{}: re-checkpoint must be byte-identical",
                    profile.name
                );
                let mut restored = restored;
                loop {
                    if let SessionStatus::Done(report) = restored.run(1000) {
                        break report;
                    }
                }
            }
        };
        (profile.name, monolithic, fingerprint(&report))
    });
    for (name, monolithic, restored) in reports {
        assert_eq!(
            restored, monolithic,
            "{name}: checkpoint/restore must not move a rendered metric byte"
        );
    }
}

/// A per-test scratch directory under the system temp dir, wiped on
/// entry so a stale run never leaks state in.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rev-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The warm-start checkpoint pool is a pure scheduling optimization:
/// sweeping all 18 profiles through pooled forks renders exactly the
/// snapshot bytes of a sweep that rebuilds every work item from scratch
/// (`--pool=off`). Two SC sizes share one program generation and one
/// table build per profile, and every REV slot runs on a fork of the
/// same warmed simulator — none of which may move a byte.
#[test]
fn pooled_sweep_renders_identical_snapshot() {
    let configs = [
        SweepConfig::new("REV-32K", RevConfig::paper_default()),
        SweepConfig::new("REV-64K", RevConfig::paper_64k()),
    ];
    let render = |pooled: bool| {
        let mut opts = tiny_opts();
        opts.pool = pooled;
        let runs = sweep_configs(&opts, &configs);
        assert_eq!(runs.len(), opts.profiles().len(), "every profile must be swept");
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    assert_eq!(tiny_opts().profiles().len(), 18, "the paper's full profile set");
    assert_eq!(render(true), render(false), "the warm pool must never move a rendered byte");
}

/// Sharded sweeps merge byte-identically: partitioning the 18-profile
/// work-item list across 2 (and then 3) independent "processes" — each
/// with its own pool, sealing into a shared `--shard-dir` — and merging
/// with `--resume` renders exactly the monolithic snapshot. The sealed
/// items are shard-agnostic, so a 3-way split resumes seamlessly over a
/// 2-way split's seals, and a corrupted seal is recomputed fail-open.
#[test]
fn sharded_sweep_merges_byte_identical() {
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let monolithic = {
        let opts = tiny_opts();
        let runs = sweep_configs(&opts, &configs);
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    let dir = scratch_dir("shards");
    let dir_s = dir.to_string_lossy().into_owned();
    let shard_opts = |spec: Option<ShardSpec>, resume: bool| BenchOptions {
        shard: spec,
        shard_dir: Some(dir_s.clone()),
        resume,
        ..tiny_opts()
    };
    for index in 1..=2 {
        let opts = shard_opts(Some(ShardSpec { index, total: 2 }), false);
        match sweep_configs_pooled(&opts, &configs, &WarmPool::new(None)) {
            SweepOutcome::Partial { computed, resumed, skipped } => {
                assert!(computed > 0 && skipped > 0, "a 2-way shard owns a strict subset");
                assert_eq!(resumed, 0, "nothing to resume on first pass");
            }
            SweepOutcome::Complete(_) => panic!("a 2-way shard run cannot be complete"),
        }
    }
    let items = || {
        std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "item"))
            .collect::<Vec<_>>()
    };
    let sealed = items();
    assert_eq!(sealed.len(), 18 * 2, "every (profile, slot) item must be sealed");
    // Corrupt one seal: the merge must reject and recompute it, still
    // rendering monolithic bytes.
    let mut bytes = std::fs::read(&sealed[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&sealed[0], &bytes).unwrap();
    let merged = {
        let opts = shard_opts(None, true);
        let SweepOutcome::Complete(runs) =
            sweep_configs_pooled(&opts, &configs, &WarmPool::new(None))
        else {
            panic!("a merge run assembles every item")
        };
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    assert_eq!(merged, monolithic, "a 2-way shard merge must render monolithic bytes");
    // 3-way split over the same dir: every item is already sealed (the
    // merge resealed the corrupted one), so all three shards resume
    // without recomputing and a final merge still matches.
    for index in 1..=3 {
        let opts = shard_opts(Some(ShardSpec { index, total: 3 }), true);
        match sweep_configs_pooled(&opts, &configs, &WarmPool::new(None)) {
            SweepOutcome::Complete(_) => {} // every item loaded from seals
            SweepOutcome::Partial { computed, .. } => {
                assert_eq!(computed, 0, "shard {index}/3 must not recompute sealed items");
            }
        }
    }
    let remerged = {
        let opts = shard_opts(None, true);
        let SweepOutcome::Complete(runs) =
            sweep_configs_pooled(&opts, &configs, &WarmPool::new(None))
        else {
            panic!("a merge run assembles every item")
        };
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    assert_eq!(remerged, monolithic, "a 3-way resume merge must render monolithic bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted `--ckpt-pool` disk entry can cost time, never
/// correctness: the pool detects it (checksum / recipe / fingerprint),
/// counts `pool.corrupt`, rebuilds fail-open, and the rebuilt fork
/// reproduces the same measurements as the original build and as a
/// valid disk hit.
#[test]
fn corrupt_disk_pool_entry_is_rebuilt_fail_open() {
    let dir = scratch_dir("ckpt-pool");
    let dir_s = dir.to_string_lossy().into_owned();
    let opts = BenchOptions { only: vec!["mcf".to_string()], ..tiny_opts() };
    let profile = opts.profiles().remove(0);
    let config = RevConfig::paper_default();
    let run = |pool: &WarmPool| {
        let (mut sim, fetch) = pool.warm_fork(&profile, &config, opts.warmup);
        (sim.run(opts.instructions).cpu.cycles, fetch)
    };
    let first = WarmPool::new(Some(&dir_s));
    let (cycles_built, fetch_built) = run(&first);
    assert!(!fetch_built.hit, "an empty disk cache cannot hit");
    let second = WarmPool::new(Some(&dir_s));
    let (cycles_disk, fetch_disk) = run(&second);
    assert!(fetch_disk.hit && !fetch_disk.corrupt, "a fresh process must hit the disk entry");
    assert_eq!(cycles_built, cycles_disk, "a disk restore must be indistinguishable");
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .expect("one warm entry on disk");
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&entry, &bytes).unwrap();
    let third = WarmPool::new(Some(&dir_s));
    let (cycles_rebuilt, fetch_rebuilt) = run(&third);
    assert!(!fetch_rebuilt.hit && fetch_rebuilt.corrupt, "a corrupt entry must not be trusted");
    assert_eq!(third.stats().corrupt, 1, "the rejection must be counted");
    assert_eq!(cycles_built, cycles_rebuilt, "the rebuild must reproduce the measurements");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The superblock replay layer is a pure simulator fast path: rendering
/// the full 18-profile sweep with `--superblocks=off` produces exactly
/// the bytes of the default run. (The SMC / DMA / retry invalidation
/// contracts live in `crates/rev-core/tests/smc.rs` and
/// `retry_bound.rs`.)
#[test]
fn superblocks_off_renders_identical_snapshot() {
    let configs = [SweepConfig::new("REV-32K", RevConfig::paper_default())];
    let render = |superblocks: bool| {
        let mut opts = tiny_opts();
        opts.superblocks = superblocks;
        let runs = sweep_configs(&opts, &configs);
        assert_eq!(runs.len(), opts.profiles().len(), "every profile must be swept");
        let mut snap = Snapshot::new();
        snapshot_from_runs(&mut snap, &opts, &configs, &runs);
        snap.render()
    };
    assert_eq!(render(true), render(false), "superblock replay must never move a rendered byte");
}
