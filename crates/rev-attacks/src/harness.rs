//! Mounting attacks and adjudicating detection + containment.

use crate::victim::{victim_program, VictimMap, TAINT_VALUE};
use crate::{AttackError, AttackKind};
use rev_core::{RevConfig, RevSimulator, Violation};
use rev_cpu::{CpuConfig, NullMonitor, Oracle, Pipeline};
use rev_isa::{Instruction, Reg};
use rev_mem::{MainMemory, MemConfig};

/// Instructions committed before the attacker strikes.
const WARMUP: u64 = 30_000;
/// Total committed-instruction budget for the post-attack window.
const TOTAL: u64 = 300_000;

/// The result of mounting one attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Which attack ran.
    pub kind: AttackKind,
    /// Whether REV raised a violation.
    pub detected: bool,
    /// The violation details, if detected.
    pub violation: Option<Violation>,
    /// Whether any malicious store reached validated memory (the canary
    /// cell). REV's containment guarantee (requirement R5) demands this
    /// stays `false`.
    pub tainted: bool,
    /// Correct-path instructions committed when the run ended.
    pub committed: u64,
}

/// Emits the attack's external memory writes through `write`.
fn attack_writes(kind: AttackKind, map: &VictimMap, write: &mut dyn FnMut(u64, &[u8])) {
    match kind {
        AttackKind::DirectCodeInjection => {
            // Overwrite the marker instruction (same length) with a store
            // of the loop counter over the canary: `st r15, 16(r10)`.
            let evil = Instruction::Store { rs: Reg::R15, rbase: Reg::R10, off: 16 }.encode();
            write(map.patch_addr, &evil);
        }
        AttackKind::IndirectCodeInjection => {
            // Shellcode in writable memory + stack-smash redirect to it.
            let mut code = Vec::new();
            Instruction::Li { rd: Reg::R9, imm: TAINT_VALUE }.encode_into(&mut code);
            Instruction::Li { rd: Reg::R10, imm: map.canary_addr }.encode_into(&mut code);
            Instruction::Store { rs: Reg::R9, rbase: Reg::R10, off: 0 }.encode_into(&mut code);
            Instruction::Halt.encode_into(&mut code);
            write(map.inject_region, &code);
            write(map.flag_addr, &1u64.to_le_bytes());
            write(map.evil_addr, &map.inject_region.to_le_bytes());
        }
        AttackKind::ReturnOriented => {
            write(map.flag_addr, &1u64.to_le_bytes());
            write(map.evil_addr, &map.gadget_addr.to_le_bytes());
        }
        AttackKind::JumpOriented => {
            write(map.jt_slot_addr, &map.gadget_addr.to_le_bytes());
        }
        AttackKind::VtableCompromise => {
            write(map.vtable_slot_addr, &map.lonely_addr.to_le_bytes());
        }
        AttackKind::ReturnToLibc => {
            write(map.flag_addr, &1u64.to_le_bytes());
            write(map.evil_addr, &map.libc_privileged_addr.to_le_bytes());
        }
        AttackKind::TableTamper => {
            unreachable!("table tampering needs table placement; handled in mount()")
        }
    }
}

/// Mounts `kind` against the victim on a REV-protected machine.
///
/// # Errors
///
/// Returns [`AttackError`] if the victim fails to assemble, the
/// simulator rejects the configuration, or the victim violates during
/// warmup (a broken scenario, not a detected attack).
pub fn mount(kind: AttackKind, config: RevConfig) -> Result<AttackOutcome, AttackError> {
    // Table tampering is only observable when the SC re-reads the table,
    // so that scenario runs with a miss-prone (tiny) SC.
    let config =
        if kind == AttackKind::TableTamper { config.with_sc_capacity(256) } else { config };
    let (program, map) = victim_program()?;
    let mut sim = RevSimulator::new(program, config)?;
    let warm = sim.run(WARMUP);
    if let Some(v) = warm.rev.violation {
        return Err(AttackError::DirtyWarmup(v));
    }
    if kind == AttackKind::TableTamper {
        let ranges: Vec<(u64, usize)> =
            sim.monitor().sag().tables().iter().map(|t| (t.base(), t.image().len())).collect();
        sim.inject(move |mem| {
            for &(base, len) in &ranges {
                for off in (16..len as u64).step_by(16) {
                    let b = mem.read_u8(base + off);
                    mem.write_u8(base + off, b ^ 0xa5);
                }
            }
        });
    } else {
        sim.inject(|mem| {
            attack_writes(kind, &map, &mut |addr, bytes| mem.write_bytes(addr, bytes));
        });
    }
    let report = sim.run(WARMUP + TOTAL);
    let violation = report.rev.violation;
    Ok(AttackOutcome {
        kind,
        detected: violation.is_some(),
        violation,
        tainted: sim.monitor().committed().read_u64(map.canary_addr) != 0,
        committed: report.cpu.committed_instrs,
    })
}

/// Mounts `kind` against the victim on an **unprotected** machine (no
/// REV): demonstrates that the attacks genuinely work — the canary gets
/// tainted — when nothing validates the execution.
///
/// # Errors
///
/// Returns [`AttackError`] if the victim fails to assemble.
pub fn mount_unprotected(kind: AttackKind) -> Result<AttackOutcome, AttackError> {
    let (program, map) = victim_program()?;
    let memory = MainMemory::with_segments(&program.segments());
    let oracle = Oracle::new(memory.clone(), program.entry(), program.initial_sp());
    let mut pipeline =
        Pipeline::new(CpuConfig::paper_default(), MemConfig::paper_default(), oracle);
    let mut monitor = NullMonitor::new(memory);
    pipeline.run(&mut monitor, WARMUP);
    if kind != AttackKind::TableTamper {
        let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
        attack_writes(kind, &map, &mut |addr, bytes| writes.push((addr, bytes.to_vec())));
        for (addr, bytes) in &writes {
            pipeline.oracle_mut().mem_mut().write_bytes(*addr, bytes);
            monitor.committed_mut().write_bytes(*addr, bytes);
        }
    }
    let result = pipeline.run(&mut monitor, WARMUP + TOTAL);
    Ok(AttackOutcome {
        kind,
        detected: false,
        violation: None,
        tainted: monitor.committed().read_u64(map.canary_addr) != 0,
        committed: result.stats.committed_instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_core::ViolationKind;

    fn check(kind: AttackKind, expect: &[ViolationKind]) {
        let out = mount(kind, RevConfig::paper_default()).expect("scenario mounts");
        assert!(out.detected, "{kind} not detected");
        let got = out.violation.expect("violation present").kind;
        assert!(expect.contains(&got), "{kind}: expected one of {expect:?}, got {got:?}");
        assert!(!out.tainted, "{kind}: tainted store escaped containment");
    }

    #[test]
    fn direct_code_injection_detected() {
        check(AttackKind::DirectCodeInjection, &[ViolationKind::HashMismatch]);
    }

    #[test]
    fn indirect_code_injection_detected() {
        check(
            AttackKind::IndirectCodeInjection,
            &[ViolationKind::NoTable, ViolationKind::HashMismatch],
        );
    }

    #[test]
    fn rop_detected() {
        check(
            AttackKind::ReturnOriented,
            &[ViolationKind::ReturnMismatch, ViolationKind::HashMismatch],
        );
    }

    #[test]
    fn jop_detected() {
        check(AttackKind::JumpOriented, &[ViolationKind::IllegalTarget]);
    }

    #[test]
    fn vtable_detected() {
        check(AttackKind::VtableCompromise, &[ViolationKind::IllegalTarget]);
    }

    #[test]
    fn return_to_libc_detected() {
        check(
            AttackKind::ReturnToLibc,
            &[ViolationKind::ReturnMismatch, ViolationKind::HashMismatch],
        );
    }

    #[test]
    fn table_tamper_detected() {
        let out =
            mount(AttackKind::TableTamper, RevConfig::paper_default()).expect("scenario mounts");
        assert!(out.detected);
        assert!(matches!(
            out.violation.unwrap().kind,
            ViolationKind::TableCorrupt | ViolationKind::HashMismatch
        ));
    }

    #[test]
    fn unprotected_machine_is_actually_compromised() {
        // The attacks must be real: without REV, the canary gets tainted.
        for kind in [
            AttackKind::DirectCodeInjection,
            AttackKind::IndirectCodeInjection,
            AttackKind::ReturnOriented,
            AttackKind::JumpOriented,
            AttackKind::VtableCompromise,
            AttackKind::ReturnToLibc,
        ] {
            let out = mount_unprotected(kind).expect("scenario mounts");
            assert!(out.tainted, "{kind} failed to compromise the unprotected machine");
        }
    }
}
