//! # rev-attacks — the paper's Table 1, executable
//!
//! Mounts each attack class against a purpose-built victim program and
//! adjudicates whether REV (a) detects it and (b) contains it — no store
//! from compromised execution may ever reach validated memory.
//!
//! The victim is realistic in the way that matters: the attacker never
//! "teleports" control. Every hijack happens through the program's own
//! mechanisms — a buffer-overflow-style store through the stack pointer
//! whose trigger data the attacker plants, a function-pointer (vtable)
//! slot in writable data, a jump table in writable data, or a code page
//! whose write protection the attacker has already defeated (the paper's
//! threat model for code injection).
//!
//! ```
//! use rev_attacks::{mount, AttackKind};
//! use rev_core::RevConfig;
//!
//! let outcome = mount(AttackKind::ReturnOriented, RevConfig::paper_default()).unwrap();
//! assert!(outcome.detected);
//! assert!(!outcome.tainted);
//! ```

mod harness;
mod victim;

pub use harness::{mount, mount_unprotected, AttackOutcome};
pub use victim::{victim_program, VictimMap, INJECT_REGION, TAINT_VALUE};

use std::fmt;

/// Structured harness errors: mounting an attack propagates build and
/// configuration failures as values instead of panicking, so sweeps over
/// many configurations (and chaos campaigns driving this harness) can
/// report a broken scenario and move on.
#[derive(Debug)]
pub enum AttackError {
    /// A victim module failed to assemble.
    Assemble {
        /// Module name (`"victim"` or `"libc"`).
        module: &'static str,
        /// Underlying assembler error.
        source: rev_prog::BuildError,
    },
    /// An assembled module is missing a symbol the attacks target.
    MissingSymbol {
        /// Module name.
        module: &'static str,
        /// The absent symbol.
        symbol: &'static str,
    },
    /// Simulator construction rejected the program or configuration.
    Sim(rev_core::SimError),
    /// The victim raised a violation during warmup, before any attack
    /// was mounted — the scenario's baseline is broken.
    DirtyWarmup(rev_core::Violation),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Assemble { module, source } => {
                write!(f, "victim module '{module}' failed to assemble: {source}")
            }
            AttackError::MissingSymbol { module, symbol } => {
                write!(f, "victim module '{module}' is missing symbol '{symbol}'")
            }
            AttackError::Sim(e) => write!(f, "victim simulator failed to build: {e}"),
            AttackError::DirtyWarmup(v) => {
                write!(f, "victim violated during warmup, before any attack: {v}")
            }
        }
    }
}

impl std::error::Error for AttackError {}

impl From<rev_core::SimError> for AttackError {
    fn from(e: rev_core::SimError) -> Self {
        AttackError::Sim(e)
    }
}

/// The attack classes of the paper's Table 1 (plus table tampering from
/// Sec. VII's security discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Binaries overwritten on the fly by a (higher-privilege) process.
    DirectCodeInjection,
    /// Attacker-supplied code written to writable memory and entered via a
    /// corrupted return address (classic stack smash).
    IndirectCodeInjection,
    /// Return address redirected to an unintended but legitimate block
    /// (ROP gadget).
    ReturnOriented,
    /// Jump-table slot redirected to a gadget (JOP).
    JumpOriented,
    /// Function-pointer (vtable) slot overwritten with a different,
    /// legitimate function outside the call site's target set.
    VtableCompromise,
    /// Return address redirected to a library function's entry.
    ReturnToLibc,
    /// The encrypted in-RAM signature table itself is overwritten.
    TableTamper,
}

impl AttackKind {
    /// All attack classes, in Table 1 order.
    pub const ALL: [AttackKind; 7] = [
        AttackKind::DirectCodeInjection,
        AttackKind::IndirectCodeInjection,
        AttackKind::ReturnOriented,
        AttackKind::JumpOriented,
        AttackKind::VtableCompromise,
        AttackKind::ReturnToLibc,
        AttackKind::TableTamper,
    ];
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackKind::DirectCodeInjection => "direct code injection",
            AttackKind::IndirectCodeInjection => "indirect code injection",
            AttackKind::ReturnOriented => "return-oriented attack",
            AttackKind::JumpOriented => "jump-oriented attack",
            AttackKind::VtableCompromise => "vtable compromise",
            AttackKind::ReturnToLibc => "return-to-libc",
            AttackKind::TableTamper => "signature-table tampering",
        };
        f.write_str(s)
    }
}
