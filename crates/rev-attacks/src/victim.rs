//! The victim: a two-module program with deliberately attackable surfaces.
//!
//! * `process()` contains a buffer-overflow-style bug: when an
//!   attacker-controlled flag cell is set, it stores an attacker-supplied
//!   value over its own saved return address (the classic stack smash —
//!   control is hijacked by the program's *own* store).
//! * The main loop dispatches through a **vtable** (function-pointer slot
//!   in writable data) and a **jump table** (also writable data).
//! * A **gadget** function exists that is never legitimately called; it
//!   writes a sentinel to the canary cell — any attack that manages to get
//!   its store released into validated memory has "succeeded".
//! * A second module (`libc`) provides a privileged function for
//!   return-to-libc, exercising REV's cross-module SAG path.

use crate::AttackError;
use rev_isa::{BranchCond, Instruction, Reg};
use rev_prog::{Module, ModuleBuilder, Program};

/// Attacker-writable scratch region (not backed by any module — "the
/// heap").
pub const INJECT_REGION: u64 = 0x2000_0000;

/// The canary sentinel malicious code writes.
pub const TAINT_VALUE: u64 = 0xdead;

/// Addresses an attacker (and the test harness) needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimMap {
    /// Cell `process()` checks before performing the overflow store.
    pub flag_addr: u64,
    /// Cell holding the value the overflow writes over the return address.
    pub evil_addr: u64,
    /// The canary cell malicious code writes [`TAINT_VALUE`] to.
    pub canary_addr: u64,
    /// First slot of the vtable (holds `handler_a`'s address).
    pub vtable_slot_addr: u64,
    /// First slot of the main loop's jump table.
    pub jt_slot_addr: u64,
    /// Entry of the never-called gadget function.
    pub gadget_addr: u64,
    /// Entry of `lonely()` — legitimate code outside the vtable's target
    /// set (it also writes the canary, so vtable hijacks taint).
    pub lonely_addr: u64,
    /// Entry of libc's `privileged()` (writes the canary).
    pub libc_privileged_addr: u64,
    /// Address of the patchable marker instruction inside `process()`
    /// (an `addi r4, r4, 41`), for direct code injection.
    pub patch_addr: u64,
    /// Attacker scratch region for injected code.
    pub inject_region: u64,
}

const VICTIM_BASE: u64 = 0x1000;
const LIBC_BASE: u64 = 0x8_0000;
const PATCH_MARKER_IMM: i32 = 41;

fn build_victim(canary_guess: &mut Option<u64>) -> Result<(Module, VictimMap), AttackError> {
    let mut b = ModuleBuilder::new("victim", VICTIM_BASE);

    // Data cells. Layout: flag at +0, evil at +8, canary at +16 (the
    // direct-code-injection patch relies on canary = flag + 16).
    let flag_off = b.data_zeroed(8);
    let evil_off = b.data_zeroed(8);
    let canary_off = b.data_zeroed(8);

    let process = b.new_label();
    let gadget = b.new_label();
    let handler_a = b.new_label();
    let handler_b = b.new_label();
    let lonely = b.new_label();

    // Vtable (writable data): slot 0 used by the call site.
    let vtable_off = b.data_label_table(&[handler_a, handler_b]);

    // main -------------------------------------------------------------
    let arms: Vec<_> = (0..4).map(|_| b.new_label()).collect();
    let jt_off = b.data_label_table(&arms);
    let main_fn = b.begin_function("main");
    let loop_top = b.new_label();
    b.bind(loop_top);
    b.push(Instruction::AddI { rd: Reg::R15, rs: Reg::R15, imm: 1 });
    b.call(process);
    // vtable dispatch: handler = vtable[r15 & 1]
    b.push(Instruction::AndI { rd: Reg::R23, rs: Reg::R15, imm: 1 });
    b.push(Instruction::Li { rd: Reg::R21, imm: 3 });
    b.push(Instruction::Alu {
        op: rev_isa::AluOp::Shl,
        rd: Reg::R23,
        rs1: Reg::R23,
        rs2: Reg::R21,
    });
    b.li_data(Reg::R22, vtable_off);
    b.push(Instruction::Alu {
        op: rev_isa::AluOp::Add,
        rd: Reg::R22,
        rs1: Reg::R22,
        rs2: Reg::R23,
    });
    b.push(Instruction::Load { rd: Reg::R21, rbase: Reg::R22, off: 0 });
    b.call_ind(Reg::R21, &[handler_a, handler_b]);
    // jump-table dispatch: arms[r15 & 3]
    b.push(Instruction::AndI { rd: Reg::R23, rs: Reg::R15, imm: 3 });
    b.push(Instruction::Li { rd: Reg::R21, imm: 3 });
    b.push(Instruction::Alu {
        op: rev_isa::AluOp::Shl,
        rd: Reg::R23,
        rs1: Reg::R23,
        rs2: Reg::R21,
    });
    b.li_data(Reg::R22, jt_off);
    b.push(Instruction::Alu {
        op: rev_isa::AluOp::Add,
        rd: Reg::R22,
        rs1: Reg::R22,
        rs2: Reg::R23,
    });
    b.push(Instruction::Load { rd: Reg::R21, rbase: Reg::R22, off: 0 });
    b.jmp_ind(Reg::R21, &arms);
    let merge = b.new_label();
    for (i, arm) in arms.iter().enumerate() {
        b.bind(*arm);
        b.push(Instruction::AddI { rd: Reg::R7, rs: Reg::R7, imm: i as i32 });
        b.jmp(merge);
    }
    b.bind(merge);
    // Cross-module call into libc (exercises the SAG table switch).
    b.push(Instruction::Li { rd: Reg::R21, imm: LIBC_BASE });
    b.call_ind_abs(Reg::R21, &[LIBC_BASE]);
    b.jmp(loop_top);
    b.end_function(main_fn);

    // process() ----------------------------------------------------------
    let f = b.begin_function("process");
    b.bind(process);
    let skip = b.new_label();
    b.li_data(Reg::R10, flag_off);
    b.push(Instruction::Load { rd: Reg::R8, rbase: Reg::R10, off: 0 });
    b.branch(BranchCond::Eq, Reg::R8, Reg::R0, skip);
    // The "overflow": write the attacker-supplied value over [sp].
    b.push(Instruction::Load { rd: Reg::R9, rbase: Reg::R10, off: 8 });
    b.push(Instruction::Store { rs: Reg::R9, rbase: rev_isa::REG_SP, off: 0 });
    b.bind(skip);
    b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: PATCH_MARKER_IMM });
    b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: 1 });
    b.push(Instruction::Ret);
    b.end_function(f);

    // gadget() — never called legitimately -------------------------------
    let f = b.begin_function("gadget");
    b.bind(gadget);
    b.push(Instruction::Li { rd: Reg::R9, imm: TAINT_VALUE });
    b.li_data(Reg::R10, canary_off);
    b.push(Instruction::Store { rs: Reg::R9, rbase: Reg::R10, off: 0 });
    b.push(Instruction::Ret);
    b.end_function(f);

    // handlers ------------------------------------------------------------
    let f = b.begin_function("handler_a");
    b.bind(handler_a);
    b.push(Instruction::AddI { rd: Reg::R5, rs: Reg::R5, imm: 1 });
    b.push(Instruction::Ret);
    b.end_function(f);
    let f = b.begin_function("handler_b");
    b.bind(handler_b);
    b.push(Instruction::AddI { rd: Reg::R5, rs: Reg::R5, imm: 2 });
    b.push(Instruction::Ret);
    b.end_function(f);

    // lonely() — legitimate, but not in any vtable target set ------------
    let f = b.begin_function("lonely");
    b.bind(lonely);
    b.push(Instruction::Li { rd: Reg::R9, imm: TAINT_VALUE });
    b.li_data(Reg::R10, canary_off);
    b.push(Instruction::Store { rs: Reg::R9, rbase: Reg::R10, off: 0 });
    b.push(Instruction::Ret);
    b.end_function(f);

    let module = b.finish().map_err(|source| AttackError::Assemble { module: "victim", source })?;

    // Resolve addresses.
    let data_base = module.data_base();
    let find_fn = |name: &'static str| {
        module
            .functions()
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.entry)
            .ok_or(AttackError::MissingSymbol { module: "victim", symbol: name })
    };
    // Locate the patch marker.
    let patch_addr = module
        .instructions()
        .filter_map(Result::ok)
        .find(|(_, insn, _)| {
            matches!(insn, Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm } if *imm == PATCH_MARKER_IMM)
        })
        .map(|(addr, _, _)| addr)
        .ok_or(AttackError::MissingSymbol { module: "victim", symbol: "patch marker" })?;

    let map = VictimMap {
        flag_addr: data_base + flag_off as u64,
        evil_addr: data_base + evil_off as u64,
        canary_addr: data_base + canary_off as u64,
        vtable_slot_addr: data_base + vtable_off as u64,
        jt_slot_addr: data_base + jt_off as u64,
        gadget_addr: find_fn("gadget")?,
        lonely_addr: find_fn("lonely")?,
        libc_privileged_addr: 0, // filled after libc builds
        patch_addr,
        inject_region: INJECT_REGION,
    };
    *canary_guess = Some(map.canary_addr);
    Ok((module, map))
}

fn build_libc(canary_addr: u64) -> Result<Module, AttackError> {
    let mut b = ModuleBuilder::new("libc", LIBC_BASE);
    let helper = b.new_label();
    // libc_api: entry at LIBC_BASE — called cross-module by the victim.
    let f = b.begin_function("libc_api");
    b.push(Instruction::AddI { rd: Reg::R6, rs: Reg::R6, imm: 1 });
    b.call(helper);
    b.push(Instruction::Ret);
    b.end_function(f);
    let f = b.begin_function("helper");
    b.bind(helper);
    b.push(Instruction::AddI { rd: Reg::R6, rs: Reg::R6, imm: 1 });
    b.push(Instruction::Ret);
    b.end_function(f);
    // privileged(): never called legitimately — the function
    // return-to-libc abuses. Writes the canary.
    let f = b.begin_function("privileged");
    b.push(Instruction::Li { rd: Reg::R9, imm: TAINT_VALUE });
    b.push(Instruction::Li { rd: Reg::R10, imm: canary_addr });
    b.push(Instruction::Store { rs: Reg::R9, rbase: Reg::R10, off: 0 });
    b.push(Instruction::Ret);
    b.end_function(f);
    b.finish().map_err(|source| AttackError::Assemble { module: "libc", source })
}

/// Builds the two-module victim program and its attack-surface map.
///
/// # Errors
///
/// Returns [`AttackError`] if either module fails to assemble or an
/// expected symbol is missing — the harness propagates this instead of
/// panicking, so sweeps over many configurations degrade gracefully.
pub fn victim_program() -> Result<(Program, VictimMap), AttackError> {
    let mut canary = None;
    let (victim, mut map) = build_victim(&mut canary)?;
    let canary_addr =
        canary.ok_or(AttackError::MissingSymbol { module: "victim", symbol: "canary" })?;
    let libc = build_libc(canary_addr)?;
    map.libc_privileged_addr = libc
        .functions()
        .iter()
        .find(|f| f.name == "privileged")
        .map(|f| f.entry)
        .ok_or(AttackError::MissingSymbol { module: "libc", symbol: "privileged" })?;
    let mut pb = Program::builder();
    pb.module(victim);
    pb.module(libc);
    pb.entry(VICTIM_BASE);
    Ok((pb.build(), map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_cpu::Oracle;
    use rev_mem::MainMemory;

    #[test]
    fn victim_runs_clean_without_attack() {
        let (p, map) = victim_program().unwrap();
        let mem = MainMemory::with_segments(&p.segments());
        let mut oracle = Oracle::new(mem, p.entry(), p.initial_sp());
        for _ in 0..20_000 {
            oracle.step().expect("clean execution");
        }
        assert_eq!(oracle.mem().read_u64(map.canary_addr), 0, "canary untouched");
        assert!(oracle.state().reg(Reg::R5) > 0, "handlers ran");
        assert!(oracle.state().reg(Reg::R6) > 0, "libc ran");
    }

    #[test]
    fn overflow_hijacks_control_when_armed() {
        let (p, map) = victim_program().unwrap();
        let mut mem = MainMemory::with_segments(&p.segments());
        mem.write_u64(map.flag_addr, 1);
        mem.write_u64(map.evil_addr, map.gadget_addr);
        let mut oracle = Oracle::new(mem, p.entry(), p.initial_sp());
        for _ in 0..20_000 {
            if oracle.step().is_err() {
                break;
            }
            if oracle.mem().read_u64(map.canary_addr) == TAINT_VALUE {
                return; // gadget reached
            }
        }
        panic!("gadget never reached — the overflow is broken");
    }

    #[test]
    fn map_addresses_are_consistent() {
        let (p, map) = victim_program().unwrap();
        assert_eq!(map.canary_addr, map.flag_addr + 16);
        assert!(p.module_containing(map.gadget_addr).is_some());
        assert!(p.module_containing(map.libc_privileged_addr).unwrap().name() == "libc");
        assert!(p.module_containing(map.inject_region).is_none());
    }
}
