//! A textual assembler for the `rev-isa` syntax emitted by
//! [`disassemble`](crate::disassemble) — lets tests, examples and victim
//! payloads be written as readable assembly instead of builder calls.
//!
//! Supported grammar (one statement per line, `;` comments):
//!
//! ```text
//! func <name>            ; begin a function
//! endfunc                ; end it
//! <label>:               ; bind a label
//! addi r1, r0, 42        ; register/immediate forms as printed by Display
//! ld r2, 8(r5)           ; loads/stores with offset(base)
//! beq r1, r2, target     ; branches take a label
//! jmp target / call target
//! jmp *r5 [t1, t2]       ; computed jump with its legitimate targets
//! call *r5 [f1, f2]
//! li r1, 0x1234          ; decimal or 0x-hex immediates
//! li r1, =label          ; absolute address of a label
//! ret / nop / halt / syscall 7
//! ```

use crate::builder::{BuildError, FuncId, Label, ModuleBuilder};
use crate::module::Module;
use rev_isa::{AluOp, BranchCond, FReg, FpuOp, Instruction, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly-text error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> Self {
        AsmError { line: 0, message: e.to_string() }
    }
}

struct Assembler {
    b: ModuleBuilder,
    labels: HashMap<String, Label>,
    open: Option<FuncId>,
}

impl Assembler {
    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.b.new_label();
        self.labels.insert(name.to_string(), l);
        l
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, AsmError> {
    let idx: u8 = tok
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected integer register, got '{tok}'")))?;
    Reg::from_index(idx).ok_or_else(|| err(line, format!("register out of range: '{tok}'")))
}

fn parse_freg(line: usize, tok: &str) -> Result<FReg, AsmError> {
    let idx: u8 = tok
        .strip_prefix('f')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected fp register, got '{tok}'")))?;
    FReg::from_index(idx).ok_or_else(|| err(line, format!("fp register out of range: '{tok}'")))
}

fn parse_int(line: usize, tok: &str) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok.strip_prefix('+').unwrap_or(tok)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad integer '{tok}'")))?;
    Ok(if neg { -v } else { v })
}

/// Parses `off(base)` memory operands.
fn parse_mem(line: usize, tok: &str) -> Result<(i32, Reg), AsmError> {
    let open =
        tok.find('(').ok_or_else(|| err(line, format!("expected off(base), got '{tok}'")))?;
    let close =
        tok.find(')').ok_or_else(|| err(line, format!("unclosed memory operand '{tok}'")))?;
    let off = if open == 0 { 0 } else { parse_int(line, &tok[..open])? as i32 };
    let base = parse_reg(line, &tok[open + 1..close])?;
    Ok((off, base))
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

/// Assembles `source` into a module named `name` based at `base`.
///
/// # Errors
///
/// Returns [`AsmError`] on syntax errors or unbound labels.
///
/// # Example
///
/// ```
/// use rev_prog::assemble;
///
/// let module = assemble(
///     "demo",
///     0x1000,
///     r#"
///     func main
///         li   r2, 10
///     loop:
///         addi r1, r1, 1
///         blt  r1, r2, loop
///         halt
///     endfunc
///     "#,
/// )?;
/// assert_eq!(module.functions()[0].name, "main");
/// # Ok::<(), rev_prog::AsmError>(())
/// ```
pub fn assemble(name: &str, base: u64, source: &str) -> Result<Module, AsmError> {
    let mut a = Assembler { b: ModuleBuilder::new(name, base), labels: HashMap::new(), open: None };

    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Label binding.
        if let Some(label_name) = line.strip_suffix(':') {
            let l = a.label(label_name.trim());
            a.b.bind(l);
            continue;
        }
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m.trim(), r.trim()),
            None => (line, ""),
        };
        let ops = split_operands(rest);
        let nops = ops.len();
        let want = |n: usize| -> Result<(), AsmError> {
            if nops == n {
                Ok(())
            } else {
                Err(err(line_no, format!("'{mnemonic}' expects {n} operands, got {nops}")))
            }
        };

        match mnemonic {
            "func" => {
                let id = a.b.begin_function(rest);
                a.open = Some(id);
            }
            "endfunc" => {
                let id = a.open.take().ok_or_else(|| err(line_no, "endfunc without func"))?;
                a.b.end_function(id);
            }
            "nop" => a.b.push(Instruction::Nop),
            "halt" => a.b.push(Instruction::Halt),
            "ret" => a.b.push(Instruction::Ret),
            "syscall" => {
                want(1)?;
                let n = parse_int(line_no, &ops[0])? as u16;
                a.b.push(Instruction::Syscall { num: n });
            }
            "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "mul" | "slt" => {
                want(3)?;
                let op = match mnemonic {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "and" => AluOp::And,
                    "or" => AluOp::Or,
                    "xor" => AluOp::Xor,
                    "shl" => AluOp::Shl,
                    "shr" => AluOp::Shr,
                    "mul" => AluOp::Mul,
                    _ => AluOp::Slt,
                };
                a.b.push(Instruction::Alu {
                    op,
                    rd: parse_reg(line_no, &ops[0])?,
                    rs1: parse_reg(line_no, &ops[1])?,
                    rs2: parse_reg(line_no, &ops[2])?,
                });
            }
            "addi" | "andi" | "xori" | "muli" => {
                want(3)?;
                let rd = parse_reg(line_no, &ops[0])?;
                let rs = parse_reg(line_no, &ops[1])?;
                let imm = parse_int(line_no, &ops[2])? as i32;
                a.b.push(match mnemonic {
                    "addi" => Instruction::AddI { rd, rs, imm },
                    "andi" => Instruction::AndI { rd, rs, imm },
                    "xori" => Instruction::XorI { rd, rs, imm },
                    _ => Instruction::MulI { rd, rs, imm },
                });
            }
            "li" => {
                want(2)?;
                let rd = parse_reg(line_no, &ops[0])?;
                if let Some(label_name) = ops[1].strip_prefix('=') {
                    let l = a.label(label_name);
                    a.b.li_label(rd, l);
                } else {
                    a.b.push(Instruction::Li { rd, imm: parse_int(line_no, &ops[1])? as u64 });
                }
            }
            "mov" => {
                want(2)?;
                a.b.push(Instruction::Mov {
                    rd: parse_reg(line_no, &ops[0])?,
                    rs: parse_reg(line_no, &ops[1])?,
                });
            }
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                want(3)?;
                let op = match mnemonic {
                    "fadd" => FpuOp::Add,
                    "fsub" => FpuOp::Sub,
                    "fmul" => FpuOp::Mul,
                    _ => FpuOp::Div,
                };
                a.b.push(Instruction::Fpu {
                    op,
                    fd: parse_freg(line_no, &ops[0])?,
                    fs1: parse_freg(line_no, &ops[1])?,
                    fs2: parse_freg(line_no, &ops[2])?,
                });
            }
            "fmov" => {
                want(2)?;
                a.b.push(Instruction::FMov {
                    fd: parse_freg(line_no, &ops[0])?,
                    fs: parse_freg(line_no, &ops[1])?,
                });
            }
            "cvtif" => {
                want(2)?;
                a.b.push(Instruction::CvtIF {
                    fd: parse_freg(line_no, &ops[0])?,
                    rs: parse_reg(line_no, &ops[1])?,
                });
            }
            "cvtfi" => {
                want(2)?;
                a.b.push(Instruction::CvtFI {
                    rd: parse_reg(line_no, &ops[0])?,
                    fs: parse_freg(line_no, &ops[1])?,
                });
            }
            "ld" | "st" | "fld" | "fst" => {
                want(2)?;
                let (off, rbase) = parse_mem(line_no, &ops[1])?;
                a.b.push(match mnemonic {
                    "ld" => Instruction::Load { rd: parse_reg(line_no, &ops[0])?, rbase, off },
                    "st" => Instruction::Store { rs: parse_reg(line_no, &ops[0])?, rbase, off },
                    "fld" => Instruction::LoadF { fd: parse_freg(line_no, &ops[0])?, rbase, off },
                    _ => Instruction::StoreF { fs: parse_freg(line_no, &ops[0])?, rbase, off },
                });
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                want(3)?;
                let cond = match mnemonic {
                    "beq" => BranchCond::Eq,
                    "bne" => BranchCond::Ne,
                    "blt" => BranchCond::Lt,
                    "bge" => BranchCond::Ge,
                    "bltu" => BranchCond::Ltu,
                    _ => BranchCond::Geu,
                };
                let rs1 = parse_reg(line_no, &ops[0])?;
                let rs2 = parse_reg(line_no, &ops[1])?;
                let target = a.label(&ops[2]);
                a.b.branch(cond, rs1, rs2, target);
            }
            "jmp" | "call" => {
                if let Some(rest) = rest.strip_prefix('*') {
                    // Computed form: `jmp *r5 [t1, t2]`.
                    let (reg_tok, targets_tok) = match rest.split_once('[') {
                        Some((r, t)) => (r.trim(), t.trim_end_matches(']')),
                        None => (rest.trim(), ""),
                    };
                    let rt = parse_reg(line_no, reg_tok)?;
                    let targets: Vec<Label> =
                        split_operands(targets_tok).iter().map(|t| a.label(t)).collect();
                    if mnemonic == "jmp" {
                        a.b.jmp_ind(rt, &targets);
                    } else {
                        a.b.call_ind(rt, &targets);
                    }
                } else {
                    want(1)?;
                    let target = a.label(&ops[0]);
                    if mnemonic == "jmp" {
                        a.b.jmp(target);
                    } else {
                        a.b.call(target);
                    }
                }
            }
            other => return Err(err(line_no, format!("unknown mnemonic '{other}'"))),
        }
    }
    a.b.finish().map_err(AsmError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_loop() {
        let m = assemble(
            "t",
            0x1000,
            r#"
            func main
                li   r2, 5
            top:
                addi r1, r1, 1
                blt  r1, r2, top
                halt
            endfunc
            "#,
        )
        .expect("assembles");
        let insns: Vec<_> = m.instructions().map(Result::unwrap).collect();
        assert_eq!(insns.len(), 4);
        assert!(matches!(insns[2].1, Instruction::Branch { disp, .. } if disp < 0));
    }

    #[test]
    fn memory_and_computed_forms() {
        let m = assemble(
            "t",
            0x1000,
            r#"
            func main
                ld   r2, 8(r5)
                st   r2, (r5)
                jmp  *r3 [a, b]
            a:
                nop
            b:
                halt
            endfunc
            "#,
        )
        .expect("assembles");
        let targets = m.all_indirect_targets().next().expect("recorded").1.to_vec();
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn li_label_form() {
        let m = assemble(
            "t",
            0x1000,
            r#"
            func main
                li r1, =dest
                halt
            dest:
                nop
            endfunc
            "#,
        )
        .expect("assembles");
        let (_, insn, _) = m.instructions().next().unwrap().unwrap();
        match insn {
            Instruction::Li { imm, .. } => assert_eq!(imm, 0x1000 + 11),
            other => panic!("expected li, got {other}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", 0, "func main\n  bogus r1\nendfunc").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("t", 0, "func main\n  addi r1, r0\nendfunc").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
        let e = assemble("t", 0, "func main\n  addi r99, r0, 1\nendfunc").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn disassembler_output_reassembles() {
        // Round trip: builder -> Display text -> assemble -> same bytes.
        let mut b = ModuleBuilder::new("orig", 0x1000);
        let f = b.begin_function("main");
        let top = b.new_label();
        b.push(Instruction::Li { rd: Reg::R2, imm: 3 });
        b.bind(top);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.push(Instruction::Alu { op: AluOp::Xor, rd: Reg::R3, rs1: Reg::R3, rs2: Reg::R1 });
        b.push(Instruction::Store { rs: Reg::R3, rbase: Reg::R29, off: -16 });
        b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
        b.push(Instruction::Halt);
        b.end_function(f);
        let original = b.finish().unwrap();

        // Convert the listing into assemblable text: keep mnemonics, turn
        // branch displacements into labels.
        let mut text = String::from("func main\n");
        for item in original.instructions() {
            let (addr, insn, _) = item.unwrap();
            if let Instruction::Branch { cond, rs1, rs2, .. } = insn {
                // The only branch targets `top` (the addi at 0x100a).
                let _ = (cond, rs1, rs2);
                text.push_str("blt r1, r2, top\n");
            } else {
                if addr == 0x100a {
                    text.push_str("top:\n");
                }
                text.push_str(&insn.to_string());
                text.push('\n');
            }
        }
        text.push_str("endfunc\n");
        let reassembled = assemble("again", 0x1000, &text).expect("reassembles");
        assert_eq!(original.code(), reassembled.code());
    }
}
