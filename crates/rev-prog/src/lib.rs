//! # rev-prog — programs, modules, and static control-flow analysis
//!
//! REV validates executions against *statically derived* reference
//! signatures (paper Sec. IV.A). That requires, ahead of execution:
//!
//! 1. a binary image of each executable module,
//! 2. a complete basic-block decomposition with every block keyed by the
//!    address of its terminating control-flow instruction (the paper's
//!    "address of the BB"),
//! 3. the control-flow graph: successors per block, predecessors per block,
//!    return-site sets per function, and the target sets of computed
//!    branches (paper Sec. IV.D — obtained via static analysis or
//!    profiling; here we *are* the linker, so target sets are exact),
//! 4. the artificial splitting of over-long blocks so the post-commit
//!    deferral buffers are never exceeded (paper Sec. IV.A).
//!
//! This crate provides the [`ModuleBuilder`] (a two-pass label-resolving
//! assembler), the [`Module`]/[`Program`] containers, the loader that
//! produces a flat memory image, and [`Cfg`] static analysis.
//!
//! # Example
//!
//! ```
//! use rev_prog::{ModuleBuilder, BbLimits, Cfg};
//! use rev_isa::{Instruction, Reg, BranchCond};
//!
//! let mut b = ModuleBuilder::new("demo", 0x1000);
//! let f = b.begin_function("main");
//! let done = b.new_label();
//! b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
//! b.branch(BranchCond::Eq, Reg::R1, Reg::R0, done);
//! b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 2 });
//! b.bind(done);
//! b.push(Instruction::Halt);
//! b.end_function(f);
//! let module = b.finish().unwrap();
//! let cfg = Cfg::analyze(&module, BbLimits::default()).unwrap();
//! assert!(cfg.blocks().len() >= 2);
//! ```

mod asm;
mod builder;
mod cfg;
mod disasm;
mod module;
mod program;

pub use asm::{assemble, AsmError};
pub use builder::{BuildError, FuncId, Label, ModuleBuilder};
pub use cfg::{BbLimits, BlockId, BlockInfo, Cfg, CfgError, CfgStats, TermKind};
pub use disasm::disassemble;
pub use module::{Function, Module};
pub use program::{Program, ProgramBuilder, Segment, STACK_SIZE_DEFAULT};
