//! A human-readable disassembler for assembled modules — handy when
//! debugging generated workloads, victims, and attack payloads.

use crate::module::Module;
use std::fmt::Write as _;

/// Renders a full listing of `module`: function headers, addresses, raw
/// bytes and mnemonics, with computed-branch target annotations.
///
/// # Example
///
/// ```
/// use rev_prog::{ModuleBuilder, disassemble};
/// use rev_isa::{Instruction, Reg};
///
/// let mut b = ModuleBuilder::new("demo", 0x1000);
/// b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 7 });
/// b.push(Instruction::Halt);
/// let listing = disassemble(&b.finish().unwrap());
/// assert!(listing.contains("addi r1, r0, 7"));
/// assert!(listing.contains("0x1000"));
/// ```
pub fn disassemble(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; module {} @ {:#x}..{:#x} ({} bytes)",
        module.name(),
        module.base(),
        module.code_end(),
        module.code_len()
    );
    for item in module.instructions() {
        let Ok((addr, insn, len)) = item else {
            let _ = writeln!(out, "; <decode error — listing truncated>");
            break;
        };
        if let Some(f) = module.functions().iter().find(|f| f.entry == addr) {
            let _ = writeln!(out, "\n{}:", f.name);
        }
        let off = (addr - module.base()) as usize;
        let bytes: Vec<String> =
            module.code()[off..off + len].iter().map(|b| format!("{b:02x}")).collect();
        let _ = write!(out, "  {addr:#010x}  {:<22} {insn}", bytes.join(" "));
        if let Some(targets) = module.indirect_targets(addr) {
            let list: Vec<String> = targets.iter().map(|t| format!("{t:#x}")).collect();
            let _ = write!(out, "    ; targets: [{}]", list.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rev_isa::{Instruction, Reg};

    #[test]
    fn listing_contains_functions_addresses_and_targets() {
        let mut b = ModuleBuilder::new("demo", 0x2000);
        let f = b.begin_function("entry");
        let t = b.new_label();
        b.jmp_ind(Reg::R5, &[t]);
        b.bind(t);
        b.push(Instruction::Halt);
        b.end_function(f);
        let m = b.finish().unwrap();
        let listing = disassemble(&m);
        assert!(listing.contains("entry:"));
        assert!(listing.contains("0x00002000"));
        assert!(listing.contains("jmp *r5"));
        assert!(listing.contains("targets: [0x2002]"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn listing_covers_every_instruction() {
        let mut b = ModuleBuilder::new("demo", 0);
        for i in 0..20 {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: i });
        }
        b.push(Instruction::Halt);
        let m = b.finish().unwrap();
        let listing = disassemble(&m);
        assert_eq!(listing.matches("addi").count(), 20);
    }
}
