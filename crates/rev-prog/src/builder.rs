//! A two-pass, label-resolving assembler for [`Module`]s.
//!
//! Because every instruction's encoded length is fixed by its opcode, the
//! builder can lay out addresses in one pass and patch PC-relative
//! displacements in a second. The builder doubles as the "trusted linker"
//! of the paper: it records function extents and the exact target sets of
//! computed jumps/calls, which the signature-table generator consumes.

use crate::module::{Function, Module};
use rev_isa::{encoded_len, BranchCond, Instruction, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(usize);

/// Handle for an open function, returned by [`ModuleBuilder::begin_function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncId(usize);

/// Error produced when finishing a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A displacement overflowed the 32-bit field.
    DisplacementOverflow {
        /// Address of the referencing instruction.
        at: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            BuildError::DisplacementOverflow { at } => {
                write!(f, "branch displacement at {at:#x} overflows 32 bits")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Clone)]
enum Item {
    /// A complete instruction (no label operand).
    Fixed(Instruction),
    /// Conditional branch to a label.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, label: Label },
    /// Unconditional jump to a label.
    Jmp { label: Label },
    /// Direct call to a label.
    Call { label: Label },
    /// `Li rd, <absolute address of label>` (resolved at finish).
    LiLabel { rd: Reg, label: Label },
    /// `Li rd, <absolute address of data offset>`.
    LiData { rd: Reg, offset: usize },
}

impl Item {
    fn len(&self) -> usize {
        match self {
            Item::Fixed(i) => encoded_len(i),
            Item::Branch { .. } => 8,
            Item::Jmp { .. } | Item::Call { .. } => 6,
            Item::LiLabel { .. } | Item::LiData { .. } => 10,
        }
    }
}

/// Incremental builder for a [`Module`].
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    base: u64,
    items: Vec<Item>,
    /// label -> item index it points at (bound at that position).
    bound: Vec<Option<usize>>,
    functions: Vec<(String, usize, Option<usize>)>, // name, start item, end item
    open_function: Option<usize>,
    data: Vec<u8>,
    /// item index of indirect CF instruction -> target labels
    indirect: Vec<(usize, Vec<Label>)>,
    /// item index of indirect CF instruction -> absolute target addresses
    indirect_abs: Vec<(usize, Vec<u64>)>,
    /// data-section u64 slots that hold the absolute address of a label:
    /// (data offset, label)
    data_label_slots: Vec<(usize, Label)>,
}

impl ModuleBuilder {
    /// Starts a module named `name` whose code is loaded at `base`.
    pub fn new(name: impl Into<String>, base: u64) -> Self {
        ModuleBuilder {
            name: name.into(),
            base,
            items: Vec::new(),
            bound: Vec::new(),
            functions: Vec::new(),
            open_function: None,
            data: Vec::new(),
            indirect: Vec::new(),
            indirect_abs: Vec::new(),
            data_label_slots: Vec::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Binds `label` to the address of the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label binds exactly once).
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.items.len());
    }

    /// Opens a function; its entry is the next emitted instruction.
    pub fn begin_function(&mut self, name: impl Into<String>) -> FuncId {
        assert!(self.open_function.is_none(), "functions cannot nest");
        self.functions.push((name.into(), self.items.len(), None));
        let id = FuncId(self.functions.len() - 1);
        self.open_function = Some(id.0);
        id
    }

    /// Closes the function opened by [`ModuleBuilder::begin_function`].
    pub fn end_function(&mut self, id: FuncId) {
        assert_eq!(self.open_function, Some(id.0), "mismatched end_function");
        self.functions[id.0].2 = Some(self.items.len());
        self.open_function = None;
    }

    /// Returns a label bound to the entry of function `id` (usable as a
    /// call target before or after the function is emitted).
    pub fn function_label(&mut self, id: FuncId) -> Label {
        let item = self.functions[id.0].1;
        self.bound.push(Some(item));
        Label(self.bound.len() - 1)
    }

    /// Emits a label-free instruction.
    pub fn push(&mut self, insn: Instruction) {
        debug_assert!(
            !matches!(
                insn,
                Instruction::Branch { .. } | Instruction::Jmp { .. } | Instruction::Call { .. }
            ),
            "use the labeled helpers for control flow"
        );
        self.items.push(Item::Fixed(insn));
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) {
        self.items.push(Item::Branch { cond, rs1, rs2, label });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.items.push(Item::Jmp { label });
    }

    /// Emits a direct call to `label`.
    pub fn call(&mut self, label: Label) {
        self.items.push(Item::Call { label });
    }

    /// Emits a computed jump through `rt`, declaring the exhaustive set of
    /// legitimate targets (the static-analysis product REV requires,
    /// Sec. IV.D: "REV treats any unidentified computed branch address as
    /// illegal").
    pub fn jmp_ind(&mut self, rt: Reg, targets: &[Label]) {
        self.indirect.push((self.items.len(), targets.to_vec()));
        self.items.push(Item::Fixed(Instruction::JmpInd { rt }));
    }

    /// Emits a computed call through `rt` with its legitimate target set.
    pub fn call_ind(&mut self, rt: Reg, targets: &[Label]) {
        self.indirect.push((self.items.len(), targets.to_vec()));
        self.items.push(Item::Fixed(Instruction::CallInd { rt }));
    }

    /// Emits a computed jump whose legitimate targets are absolute
    /// addresses (typically in *another* module — the cross-module
    /// transfers the SAG handles, paper Sec. IV.B).
    pub fn jmp_ind_abs(&mut self, rt: Reg, targets: &[u64]) {
        self.indirect_abs.push((self.items.len(), targets.to_vec()));
        self.items.push(Item::Fixed(Instruction::JmpInd { rt }));
    }

    /// Emits a computed call with absolute (typically cross-module)
    /// targets.
    pub fn call_ind_abs(&mut self, rt: Reg, targets: &[u64]) {
        self.indirect_abs.push((self.items.len(), targets.to_vec()));
        self.items.push(Item::Fixed(Instruction::CallInd { rt }));
    }

    /// Emits `li rd, <address of label>`.
    pub fn li_label(&mut self, rd: Reg, label: Label) {
        self.items.push(Item::LiLabel { rd, label });
    }

    /// Emits `li rd, <address of data at offset>` where `offset` was
    /// returned by a `data_*` method.
    pub fn li_data(&mut self, rd: Reg, offset: usize) {
        self.items.push(Item::LiData { rd, offset });
    }

    /// Appends raw bytes to the data section; returns their offset.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> usize {
        let off = self.data.len();
        self.data.extend_from_slice(bytes);
        off
    }

    /// Appends 64-bit words to the data section; returns their offset.
    pub fn data_u64s(&mut self, words: &[u64]) -> usize {
        let off = self.data.len();
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        off
    }

    /// Appends a jump table of code-label addresses to the data section;
    /// the slots are patched with absolute addresses at finish. Returns the
    /// table's data offset.
    pub fn data_label_table(&mut self, labels: &[Label]) -> usize {
        let off = self.data.len();
        for (i, l) in labels.iter().enumerate() {
            self.data_label_slots.push((off + 8 * i, *l));
            self.data.extend_from_slice(&0u64.to_le_bytes());
        }
        off
    }

    /// Appends `count` zero bytes to the data section (array storage);
    /// returns the offset.
    pub fn data_zeroed(&mut self, count: usize) -> usize {
        let off = self.data.len();
        self.data.resize(off + count, 0);
        off
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Assembles the module.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if any referenced label is unbound or a
    /// displacement does not fit its field.
    pub fn finish(self) -> Result<Module, BuildError> {
        // Pass 1: addresses of every item.
        let mut addrs = Vec::with_capacity(self.items.len());
        let mut pc = self.base;
        for item in &self.items {
            addrs.push(pc);
            pc += item.len() as u64;
        }
        let code_end = pc;
        // Data section follows code, aligned to 64 bytes (a cache line).
        let data_base = (code_end + 63) & !63;

        let label_addr = |label: Label| -> Result<u64, BuildError> {
            let idx = self.bound[label.0].ok_or(BuildError::UnboundLabel(label))?;
            Ok(if idx == addrs.len() { code_end } else { addrs[idx] })
        };

        // Pass 2: encode with resolved displacements.
        let mut code = Vec::with_capacity((code_end - self.base) as usize);
        for (i, item) in self.items.iter().enumerate() {
            let next_pc = addrs[i] + item.len() as u64;
            let disp_to = |target: u64| -> Result<i32, BuildError> {
                let d = target as i64 - next_pc as i64;
                i32::try_from(d).map_err(|_| BuildError::DisplacementOverflow { at: addrs[i] })
            };
            let insn = match item {
                Item::Fixed(insn) => *insn,
                Item::Branch { cond, rs1, rs2, label } => Instruction::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    disp: disp_to(label_addr(*label)?)?,
                },
                Item::Jmp { label } => Instruction::Jmp { disp: disp_to(label_addr(*label)?)? },
                Item::Call { label } => Instruction::Call { disp: disp_to(label_addr(*label)?)? },
                Item::LiLabel { rd, label } => {
                    Instruction::Li { rd: *rd, imm: label_addr(*label)? }
                }
                Item::LiData { rd, offset } => {
                    Instruction::Li { rd: *rd, imm: data_base + *offset as u64 }
                }
            };
            insn.encode_into(&mut code);
        }
        debug_assert_eq!(code.len() as u64, code_end - self.base);

        // Patch data-section jump tables with absolute label addresses.
        let mut data = self.data;
        for (off, label) in &self.data_label_slots {
            let addr = label_addr(*label)?;
            data[*off..*off + 8].copy_from_slice(&addr.to_le_bytes());
        }

        // Function extents.
        let functions = self
            .functions
            .iter()
            .map(|(name, start, end)| {
                let entry = addrs.get(*start).copied().unwrap_or(code_end);
                let end_addr = match end {
                    Some(e) => addrs.get(*e).copied().unwrap_or(code_end),
                    None => code_end,
                };
                Function { name: name.clone(), entry, end: end_addr }
            })
            .collect();

        // Indirect target sets keyed by instruction address.
        let mut indirect_targets: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (item_idx, labels) in &self.indirect {
            let targets = labels.iter().map(|l| label_addr(*l)).collect::<Result<Vec<u64>, _>>()?;
            indirect_targets.entry(addrs[*item_idx]).or_default().extend(targets);
        }
        for (item_idx, abs) in &self.indirect_abs {
            indirect_targets.entry(addrs[*item_idx]).or_default().extend(abs.iter().copied());
        }

        Ok(Module::from_parts(
            self.name,
            self.base,
            code,
            data_base,
            data,
            functions,
            indirect_targets,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_isa::decode;

    #[test]
    fn backward_and_forward_branches_resolve() {
        let mut b = ModuleBuilder::new("m", 0x1000);
        let top = b.new_label();
        let out = b.new_label();
        b.bind(top);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
        b.jmp(out);
        b.bind(out);
        b.push(Instruction::Halt);
        let m = b.finish().unwrap();

        // branch at 0x1007, next pc 0x100f, target 0x1000 -> disp -15
        let (insn, _) = m.decode_at(0x1007).unwrap();
        match insn {
            Instruction::Branch { disp, .. } => assert_eq!(disp, -15),
            other => panic!("expected branch, got {other}"),
        }
        // jmp at 0x100f, next pc 0x1015, target 0x1015 -> disp 0
        let (insn, _) = m.decode_at(0x100f).unwrap();
        match insn {
            Instruction::Jmp { disp } => assert_eq!(disp, 0),
            other => panic!("expected jmp, got {other}"),
        }
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ModuleBuilder::new("m", 0);
        let l = b.new_label();
        b.jmp(l);
        assert!(matches!(b.finish(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn call_to_function_label() {
        let mut b = ModuleBuilder::new("m", 0x2000);
        let f_main = b.begin_function("main");
        // Call the function that comes later.
        let callee_entry = b.new_label();
        b.call(callee_entry);
        b.push(Instruction::Halt);
        b.end_function(f_main);
        let f_callee = b.begin_function("callee");
        b.bind(callee_entry);
        b.push(Instruction::Ret);
        b.end_function(f_callee);
        let m = b.finish().unwrap();

        assert_eq!(m.functions().len(), 2);
        assert_eq!(m.functions()[1].name, "callee");
        let (insn, len) = m.decode_at(0x2000).unwrap();
        match insn {
            Instruction::Call { disp } => {
                let target = 0x2000 + len as u64 + disp as u64;
                assert_eq!(target, m.functions()[1].entry);
            }
            other => panic!("expected call, got {other}"),
        }
    }

    #[test]
    fn indirect_targets_recorded_with_addresses() {
        let mut b = ModuleBuilder::new("m", 0x3000);
        let t1 = b.new_label();
        let t2 = b.new_label();
        b.jmp_ind(Reg::R5, &[t1, t2]);
        b.bind(t1);
        b.push(Instruction::Nop);
        b.bind(t2);
        b.push(Instruction::Halt);
        let m = b.finish().unwrap();

        let targets = m.indirect_targets(0x3000).expect("targets recorded");
        assert_eq!(targets, &[0x3002, 0x3003]);
    }

    #[test]
    fn data_label_table_patched() {
        let mut b = ModuleBuilder::new("m", 0x100);
        let t1 = b.new_label();
        let tab = b.data_label_table(&[t1]);
        b.li_data(Reg::R1, tab);
        b.bind(t1);
        b.push(Instruction::Halt);
        let m = b.finish().unwrap();

        let slot = u64::from_le_bytes(m.data()[tab..tab + 8].try_into().unwrap());
        assert_eq!(slot, 0x100 + 10); // after the 10-byte li
                                      // li operand must equal data_base + tab
        let (insn, _) = m.decode_at(0x100).unwrap();
        match insn {
            Instruction::Li { imm, .. } => assert_eq!(imm, m.data_base()),
            other => panic!("expected li, got {other}"),
        }
        assert_eq!(m.data_base() % 64, 0, "data base is cache-line aligned");
    }

    #[test]
    fn encoded_stream_is_dense() {
        let mut b = ModuleBuilder::new("m", 0);
        for i in 0..10 {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: i });
        }
        b.push(Instruction::Halt);
        let m = b.finish().unwrap();
        let mut off = 0usize;
        let mut count = 0;
        while off < m.code_len() {
            let (_, len) = decode(&m.code()[off..]).unwrap();
            off += len;
            count += 1;
        }
        assert_eq!(count, 11);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ModuleBuilder::new("m", 0);
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }
}
