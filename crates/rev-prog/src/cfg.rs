//! Static control-flow analysis: REV-style basic-block enumeration.
//!
//! REV identifies a basic block by the address of the control-flow
//! instruction that **terminates** it, and the CHG hashes the instructions
//! from the point where the previous block's validation boundary ended. A
//! block in REV's sense is therefore a *dynamic* block: the run of
//! instructions from an entry point (leader) to the next terminator. Two
//! different leaders that fall into the same terminator give two distinct
//! blocks with the same BB address but different bodies — the signature
//! table stores one entry per such block, discriminated by hash and the
//! entry's tag fields (paper Sec. V.B).
//!
//! Over-long blocks are split artificially so that the post-commit ROB and
//! store-queue extensions never overflow: a block also ends after
//! [`BbLimits::max_instrs`] instructions or [`BbLimits::max_stores`] stores,
//! whichever comes first (paper Sec. IV.A). The front end applies the same
//! counting rule at run time, so static table and hardware agree on the
//! boundaries.

use crate::module::Module;
use rev_isa::{DecodeError, InstrClass, Instruction};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Artificial basic-block splitting limits (paper Sec. IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbLimits {
    /// Maximum instructions per block before an artificial split.
    pub max_instrs: usize,
    /// Maximum stores per block before an artificial split.
    pub max_stores: usize,
}

impl Default for BbLimits {
    fn default() -> Self {
        BbLimits { max_instrs: 64, max_stores: 8 }
    }
}

/// Identifier of a block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// How a block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// PC-relative conditional branch.
    CondBranch,
    /// Direct unconditional jump.
    Jump,
    /// Direct call.
    CallDirect,
    /// Computed jump (explicit target validation).
    JumpIndirect,
    /// Computed call (explicit target validation).
    CallIndirect,
    /// Return (delayed validation).
    Return,
    /// System call.
    Syscall,
    /// Halt.
    Halt,
    /// Artificial split: the block hit [`BbLimits`] and falls through.
    Artificial,
}

impl TermKind {
    /// `true` if REV validates this block's outgoing target explicitly
    /// (computed branches and returns, paper Sec. V).
    pub fn needs_target_check(self) -> bool {
        matches!(self, TermKind::JumpIndirect | TermKind::CallIndirect | TermKind::Return)
    }
}

/// One REV basic block.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// Identifier within the owning [`Cfg`].
    pub id: BlockId,
    /// Address of the first instruction (the block's entry leader).
    pub start: u64,
    /// Address of the terminating instruction — the paper's "address of
    /// the BB", the key for all signature lookups.
    pub bb_addr: u64,
    /// Address one past the last byte of the block.
    pub end: u64,
    /// The block's instructions, in order, with their addresses.
    pub instrs: Vec<(u64, Instruction)>,
    /// Number of store instructions in the block.
    pub num_stores: usize,
    /// Terminator classification.
    pub term: TermKind,
    /// Start addresses of legitimate successor blocks.
    pub successors: Vec<u64>,
    /// BB addresses (terminator addresses) of predecessor blocks.
    pub predecessors: Vec<u64>,
}

impl BlockInfo {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the block holds no instructions (never produced by
    /// analysis; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Byte length of the block.
    pub fn byte_len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// The terminating instruction.
    pub fn terminator(&self) -> Instruction {
        self.instrs.last().expect("blocks are non-empty").1
    }
}

/// Errors from CFG analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// Instruction bytes at `addr` failed to decode.
    Decode {
        /// Address of the undecodable bytes.
        addr: u64,
        /// Underlying decode error.
        source: DecodeError,
    },
    /// A computed jump/call at `addr` has no recorded target set.
    MissingIndirectTargets {
        /// Address of the indirect control-flow instruction.
        addr: u64,
    },
    /// A control-flow target points outside the module's code.
    TargetOutOfRange {
        /// Address of the referencing instruction.
        at: u64,
        /// The out-of-range target.
        target: u64,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Decode { addr, source } => write!(f, "decode failed at {addr:#x}: {source}"),
            CfgError::MissingIndirectTargets { addr } => {
                write!(f, "computed branch at {addr:#x} has no recorded target set")
            }
            CfgError::TargetOutOfRange { at, target } => {
                write!(f, "target {target:#x} of instruction at {at:#x} is outside the module")
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// Aggregate statistics over a CFG — the quantities the paper reports in
/// Sec. VIII (BB counts, instructions per BB, successors per BB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfgStats {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Mean instructions per block.
    pub avg_instrs: f64,
    /// Mean successors per block.
    pub avg_successors: f64,
    /// Blocks ending in computed jumps/calls or returns.
    pub computed_terminators: usize,
    /// Total code bytes covered by blocks (with overlap from shared
    /// terminators counted once per block).
    pub code_bytes: usize,
}

impl rev_trace::MetricSink for CfgStats {
    fn export_metrics(&self, reg: &mut rev_trace::MetricRegistry) {
        reg.counter("cfg.blocks", self.blocks as u64);
        reg.gauge("cfg.avg_instrs", self.avg_instrs);
        reg.gauge("cfg.avg_successors", self.avg_successors);
        reg.counter("cfg.computed_terminators", self.computed_terminators as u64);
        reg.counter("cfg.code_bytes", self.code_bytes as u64);
    }
}

/// The control-flow graph of one module.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BlockInfo>,
    by_start: HashMap<u64, BlockId>,
    by_bb_addr: HashMap<u64, Vec<BlockId>>,
    /// function entry -> return-site addresses (addr after each call).
    ret_sites: BTreeMap<u64, Vec<u64>>,
    limits: BbLimits,
}

impl Cfg {
    /// Analyzes `module` into REV basic blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError`] if the code does not decode, a computed branch
    /// lacks a recorded target set, or a target escapes the module.
    pub fn analyze(module: &Module, limits: BbLimits) -> Result<Self, CfgError> {
        // Full linear decode (dense instruction stream by construction).
        let mut insns: BTreeMap<u64, (Instruction, usize)> = BTreeMap::new();
        {
            let mut addr = module.base();
            while addr < module.code_end() {
                let (insn, len) =
                    module.decode_at(addr).map_err(|source| CfgError::Decode { addr, source })?;
                insns.insert(addr, (insn, len));
                addr += len as u64;
            }
        }

        let check_target = |at: u64, target: u64| -> Result<u64, CfgError> {
            if insns.contains_key(&target) {
                Ok(target)
            } else {
                Err(CfgError::TargetOutOfRange { at, target })
            }
        };

        // Return-site sets per function entry, from every call site.
        let mut ret_sites: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&addr, &(insn, len)) in &insns {
            let site = addr + len as u64;
            match insn {
                Instruction::Call { disp } => {
                    let target = check_target(addr, site.wrapping_add(disp as i64 as u64))?;
                    ret_sites.entry(target).or_default().push(site);
                }
                Instruction::CallInd { .. } => {
                    let targets = module
                        .indirect_targets(addr)
                        .ok_or(CfgError::MissingIndirectTargets { addr })?;
                    // External (cross-module) targets are legal for
                    // computed calls; their return linkage is stitched by
                    // the trusted linker across modules.
                    for &t in targets.iter().filter(|&&t| insns.contains_key(&t)) {
                        ret_sites.entry(t).or_default().push(site);
                    }
                }
                _ => {}
            }
        }

        // Successor starts of a terminator at `addr`.
        let successors_of =
            |addr: u64, insn: Instruction, len: usize| -> Result<(TermKind, Vec<u64>), CfgError> {
                let next = addr + len as u64;
                Ok(match insn {
                    Instruction::Branch { disp, .. } => {
                        let taken = check_target(addr, next.wrapping_add(disp as i64 as u64))?;
                        let mut succ = vec![taken];
                        if insns.contains_key(&next) && next != taken {
                            succ.push(next);
                        }
                        (TermKind::CondBranch, succ)
                    }
                    Instruction::Jmp { disp } => (
                        TermKind::Jump,
                        vec![check_target(addr, next.wrapping_add(disp as i64 as u64))?],
                    ),
                    Instruction::Call { disp } => (
                        TermKind::CallDirect,
                        vec![check_target(addr, next.wrapping_add(disp as i64 as u64))?],
                    ),
                    Instruction::JmpInd { .. } | Instruction::CallInd { .. } => {
                        let targets = module
                            .indirect_targets(addr)
                            .ok_or(CfgError::MissingIndirectTargets { addr })?;
                        let kind = if matches!(insn, Instruction::JmpInd { .. }) {
                            TermKind::JumpIndirect
                        } else {
                            TermKind::CallIndirect
                        };
                        (kind, targets.to_vec())
                    }
                    Instruction::Ret => {
                        // Successors = return sites of the enclosing function.
                        let sites = module
                            .function_at(addr)
                            .and_then(|f| ret_sites.get(&f.entry))
                            .cloned()
                            .unwrap_or_default();
                        (TermKind::Return, sites)
                    }
                    Instruction::Syscall { .. } => {
                        let succ = if insns.contains_key(&next) { vec![next] } else { vec![] };
                        (TermKind::Syscall, succ)
                    }
                    Instruction::Halt => (TermKind::Halt, vec![]),
                    _ => unreachable!("not a terminator"),
                })
            };

        // Seed leaders: entry points that static analysis can name.
        let mut worklist: VecDeque<u64> = VecDeque::new();
        let mut seeds: BTreeSet<u64> = BTreeSet::new();
        seeds.insert(module.base());
        for f in module.functions() {
            seeds.insert(f.entry);
        }
        for (_, targets) in module.all_indirect_targets() {
            seeds.extend(targets.iter().copied());
        }
        for (&addr, &(insn, len)) in &insns {
            if insn.is_bb_terminator() {
                let (_, succ) = successors_of(addr, insn, len)?;
                seeds.extend(succ);
                // Return sites are leaders: control re-enters there after
                // the callee returns (including cross-module callees whose
                // return linkage is stitched later by the trusted linker).
                if matches!(insn, Instruction::Call { .. } | Instruction::CallInd { .. })
                    && insns.contains_key(&(addr + len as u64))
                {
                    seeds.insert(addr + len as u64);
                }
            }
        }
        worklist.extend(seeds.iter().copied());

        // Walk from each leader to the next terminator or artificial limit.
        let mut blocks: Vec<BlockInfo> = Vec::new();
        let mut by_start: HashMap<u64, BlockId> = HashMap::new();
        let mut by_bb_addr: HashMap<u64, Vec<BlockId>> = HashMap::new();

        while let Some(start) = worklist.pop_front() {
            if by_start.contains_key(&start) {
                continue;
            }
            if !insns.contains_key(&start) {
                // External (cross-module) successor: analyzed by the
                // other module's CFG.
                continue;
            }
            let mut instrs: Vec<(u64, Instruction)> = Vec::new();
            let mut num_stores = 0usize;
            let mut addr = start;
            let (term, successors, end) = loop {
                let &(insn, len) = insns.get(&addr).expect("dense stream");
                instrs.push((addr, insn));
                if matches!(insn.class(), InstrClass::Store) {
                    num_stores += 1;
                }
                let next = addr + len as u64;
                if insn.is_bb_terminator() {
                    let (kind, succ) = successors_of(addr, insn, len)?;
                    break (kind, succ, next);
                }
                if instrs.len() >= limits.max_instrs || num_stores >= limits.max_stores {
                    // Artificial split; falls through to `next`.
                    let succ = if insns.contains_key(&next) { vec![next] } else { vec![] };
                    break (TermKind::Artificial, succ, next);
                }
                if !insns.contains_key(&next) {
                    // Ran off the end of the code without a terminator.
                    break (TermKind::Artificial, vec![], next);
                }
                addr = next;
            };
            let bb_addr = instrs.last().expect("non-empty").0;
            let id = BlockId(blocks.len() as u32);
            for &s in &successors {
                if !by_start.contains_key(&s) {
                    worklist.push_back(s);
                }
            }
            by_start.insert(start, id);
            by_bb_addr.entry(bb_addr).or_default().push(id);
            blocks.push(BlockInfo {
                id,
                start,
                bb_addr,
                end,
                instrs,
                num_stores,
                term,
                successors,
                predecessors: Vec::new(),
            });
        }

        // Predecessor linkage: for each edge B -> s, the block starting at s
        // records B's BB address.
        let edges: Vec<(u64, u64)> =
            blocks.iter().flat_map(|b| b.successors.iter().map(move |&s| (s, b.bb_addr))).collect();
        for (succ_start, pred_bb_addr) in edges {
            if let Some(&id) = by_start.get(&succ_start) {
                let preds = &mut blocks[id.0 as usize].predecessors;
                if !preds.contains(&pred_bb_addr) {
                    preds.push(pred_bb_addr);
                }
            }
        }

        Ok(Cfg { blocks, by_start, by_bb_addr, ret_sites, limits })
    }

    /// All blocks, in discovery order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// The block whose first instruction is at `start`.
    pub fn block_by_start(&self, start: u64) -> Option<&BlockInfo> {
        self.by_start.get(&start).map(|id| &self.blocks[id.0 as usize])
    }

    /// All blocks terminated by the instruction at `bb_addr` (several
    /// entry leaders may share one terminator).
    pub fn blocks_by_bb_addr(&self, bb_addr: u64) -> &[BlockId] {
        self.by_bb_addr.get(&bb_addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> &BlockInfo {
        &self.blocks[id.0 as usize]
    }

    /// Return sites recorded for the function entered at `entry`.
    pub fn ret_sites(&self, entry: u64) -> &[u64] {
        self.ret_sites.get(&entry).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The splitting limits the analysis ran with.
    pub fn limits(&self) -> BbLimits {
        self.limits
    }

    /// Raw bytes of `block` within `module` (the CHG's hash input).
    pub fn block_bytes<'m>(&self, module: &'m Module, block: &BlockInfo) -> &'m [u8] {
        let lo = (block.start - module.base()) as usize;
        let hi = (block.end - module.base()) as usize;
        &module.code()[lo..hi]
    }

    /// BB addresses of `Return`-terminated blocks whose address lies in
    /// `[lo, hi)` — used by the cross-module linker to find a callee
    /// function's return instructions.
    pub fn return_bb_addrs_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .blocks
            .iter()
            .filter(|b| b.term == TermKind::Return && (lo..hi).contains(&b.bb_addr))
            .map(|b| b.bb_addr)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Records a cross-module return edge (the trusted linker's job,
    /// paper Sec. IV.B): the return instruction at `ret_bb_addr` (in
    /// another module) may transfer to the block starting at
    /// `return_site` in this module. Updates the return-site block's
    /// predecessor set; if `ret_bb_addr` belongs to this module, its
    /// blocks also gain `return_site` as a successor.
    pub fn add_return_linkage(&mut self, ret_bb_addr: u64, return_site: u64) {
        if let Some(&id) = self.by_start.get(&return_site) {
            let preds = &mut self.blocks[id.0 as usize].predecessors;
            if !preds.contains(&ret_bb_addr) {
                preds.push(ret_bb_addr);
            }
        }
        let ids: Vec<BlockId> = self.blocks_by_bb_addr(ret_bb_addr).to_vec();
        for id in ids {
            let succs = &mut self.blocks[id.0 as usize].successors;
            if !succs.contains(&return_site) {
                succs.push(return_site);
            }
        }
    }

    /// Call-terminated blocks whose successor set includes an address
    /// outside `[lo, hi)` — the module's cross-module call sites, paired
    /// with (external target, local return site).
    pub fn external_call_edges(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in &self.blocks {
            if !matches!(b.term, TermKind::CallDirect | TermKind::CallIndirect) {
                continue;
            }
            for &t in &b.successors {
                if !(lo..hi).contains(&t) {
                    out.push((t, b.end));
                }
            }
        }
        out
    }

    /// Aggregate statistics (paper Sec. VIII).
    pub fn stats(&self) -> CfgStats {
        let blocks = self.blocks.len();
        let instrs: usize = self.blocks.iter().map(|b| b.len()).sum();
        let succs: usize = self.blocks.iter().map(|b| b.successors.len()).sum();
        let computed = self.blocks.iter().filter(|b| b.term.needs_target_check()).count();
        let bytes: usize = self.blocks.iter().map(|b| b.byte_len()).sum();
        CfgStats {
            blocks,
            avg_instrs: instrs as f64 / blocks.max(1) as f64,
            avg_successors: succs as f64 / blocks.max(1) as f64,
            computed_terminators: computed,
            code_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rev_isa::{BranchCond, Reg};

    fn build<F: FnOnce(&mut ModuleBuilder)>(f: F) -> Module {
        let mut b = ModuleBuilder::new("t", 0x1000);
        f(&mut b);
        b.finish().unwrap()
    }

    #[test]
    fn straight_line_with_branch() {
        let m = build(|b| {
            let out = b.new_label();
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
            b.branch(BranchCond::Eq, Reg::R1, Reg::R0, out);
            b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 2 });
            b.bind(out);
            b.push(Instruction::Halt);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        let entry = cfg.block_by_start(0x1000).expect("entry block");
        assert_eq!(entry.term, TermKind::CondBranch);
        assert_eq!(entry.successors.len(), 2);
        // Both paths converge on the halt block.
        let halt_start = *entry.successors.iter().max().unwrap();
        let halt_blocks: Vec<_> =
            cfg.blocks().iter().filter(|b| b.term == TermKind::Halt).collect();
        // Two leaders share the halt terminator: the branch target and the
        // fall-through run — here the branch target IS the halt instruction
        // and the fall-through block covers addi2+halt.
        assert!(!halt_blocks.is_empty());
        assert!(halt_blocks.iter().any(|b| b.start == halt_start || b.successors.is_empty()));
    }

    #[test]
    fn shared_terminator_two_leaders() {
        // L1: addi; addi; halt   with a jump targeting the second addi.
        let m = build(|b| {
            let mid = b.new_label();
            let top = b.new_label();
            b.bind(top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
            b.bind(mid);
            b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 2 });
            b.push(Instruction::Halt);
            b.jmp(mid); // unreachable jump that makes `mid` a target
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        // The halt instruction terminates two distinct blocks.
        let halt_addr = cfg.blocks().iter().find(|b| b.term == TermKind::Halt).unwrap().bb_addr;
        assert_eq!(cfg.blocks_by_bb_addr(halt_addr).len(), 2);
        let starts: Vec<u64> =
            cfg.blocks_by_bb_addr(halt_addr).iter().map(|id| cfg.block(*id).start).collect();
        assert!(starts.contains(&0x1000));
    }

    #[test]
    fn call_and_return_edges() {
        let m = build(|b| {
            let main = b.begin_function("main");
            let callee = b.new_label();
            b.call(callee);
            b.push(Instruction::Halt);
            b.end_function(main);
            let f = b.begin_function("callee");
            b.bind(callee);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.push(Instruction::Ret);
            b.end_function(f);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        let ret_block = cfg.blocks().iter().find(|b| b.term == TermKind::Return).unwrap();
        // The return's successor is the instruction after the call.
        assert_eq!(ret_block.successors.len(), 1);
        let ret_site = ret_block.successors[0];
        let rb = cfg.block_by_start(ret_site).expect("return-site block");
        // RB's predecessor list carries the address of the ret instruction
        // (the paper's delayed return validation keys on this).
        assert!(rb.predecessors.contains(&ret_block.bb_addr));
        assert_eq!(rb.term, TermKind::Halt);
    }

    #[test]
    fn indirect_jump_targets_become_blocks() {
        let m = build(|b| {
            let t1 = b.new_label();
            let t2 = b.new_label();
            b.jmp_ind(Reg::R3, &[t1, t2]);
            b.bind(t1);
            b.push(Instruction::Halt);
            b.bind(t2);
            b.push(Instruction::Halt);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        let ind = cfg.block_by_start(0x1000).unwrap();
        assert_eq!(ind.term, TermKind::JumpIndirect);
        assert_eq!(ind.successors.len(), 2);
        for &s in &ind.successors {
            assert!(cfg.block_by_start(s).is_some(), "target {s:#x} analyzed");
        }
    }

    #[test]
    fn missing_indirect_targets_is_error() {
        // Bypass the builder's recording by pushing the raw instruction.
        let m = build(|b| {
            b.push(Instruction::JmpInd { rt: Reg::R1 });
            b.push(Instruction::Halt);
        });
        let err = Cfg::analyze(&m, BbLimits::default()).unwrap_err();
        assert!(matches!(err, CfgError::MissingIndirectTargets { addr: 0x1000 }));
    }

    #[test]
    fn artificial_split_on_instr_limit() {
        let m = build(|b| {
            for i in 0..10 {
                b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: i });
            }
            b.push(Instruction::Halt);
        });
        let limits = BbLimits { max_instrs: 4, max_stores: 8 };
        let cfg = Cfg::analyze(&m, limits).unwrap();
        let first = cfg.block_by_start(0x1000).unwrap();
        assert_eq!(first.term, TermKind::Artificial);
        assert_eq!(first.len(), 4);
        assert_eq!(first.successors.len(), 1);
        // The continuation is itself a block.
        let cont = cfg.block_by_start(first.successors[0]).unwrap();
        assert_eq!(cont.len(), 4);
        // Predecessor linkage crosses the artificial boundary.
        assert!(cont.predecessors.contains(&first.bb_addr));
    }

    #[test]
    fn artificial_split_on_store_limit() {
        let m = build(|b| {
            for _ in 0..5 {
                b.push(Instruction::Store { rs: Reg::R1, rbase: Reg::R29, off: 0 });
            }
            b.push(Instruction::Halt);
        });
        let limits = BbLimits { max_instrs: 64, max_stores: 2 };
        let cfg = Cfg::analyze(&m, limits).unwrap();
        let first = cfg.block_by_start(0x1000).unwrap();
        assert_eq!(first.term, TermKind::Artificial);
        assert_eq!(first.num_stores, 2);
    }

    #[test]
    fn split_hits_instr_and_store_limit_same_instruction() {
        // The third instruction is a store and also the max_instrs-th
        // instruction: both limits trip at once and must charge exactly one
        // artificial split, never two.
        let m = build(|b| {
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R2, imm: 2 });
            b.push(Instruction::Store { rs: Reg::R1, rbase: Reg::R29, off: 0 });
            b.push(Instruction::Nop);
            b.push(Instruction::Halt);
        });
        let limits = BbLimits { max_instrs: 3, max_stores: 1 };
        let cfg = Cfg::analyze(&m, limits).unwrap();
        let first = cfg.block_by_start(0x1000).unwrap();
        assert_eq!(first.term, TermKind::Artificial);
        assert_eq!(first.len(), 3);
        assert_eq!(first.num_stores, 1);
        assert_eq!(first.successors.len(), 1);
        let cont = cfg.block_by_start(first.successors[0]).unwrap();
        assert_eq!(cont.start, first.end, "split falls through contiguously");
        assert_eq!(cont.len(), 2, "nop + halt remain in one continuation");
        assert_eq!(cont.term, TermKind::Halt);
        assert!(cont.predecessors.contains(&first.bb_addr));
    }

    #[test]
    fn natural_terminator_exactly_at_split_boundary() {
        // The max_instrs-th instruction IS a terminator: the natural
        // terminator must win (the front end checks it before the counter),
        // so no artificial block appears and no duplicate boundary exists.
        let m = build(|b| {
            let out = b.new_label();
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R2, imm: 2 });
            b.push(Instruction::AddI { rd: Reg::R3, rs: Reg::R3, imm: 3 });
            b.jmp(out);
            b.bind(out);
            b.push(Instruction::Halt);
        });
        let limits = BbLimits { max_instrs: 4, max_stores: 8 };
        let cfg = Cfg::analyze(&m, limits).unwrap();
        let first = cfg.block_by_start(0x1000).unwrap();
        assert_eq!(first.len(), 4, "terminator included in the block");
        assert_eq!(first.term, TermKind::Jump);
        assert!(
            cfg.blocks().iter().all(|b| b.term != TermKind::Artificial),
            "no artificial split may coincide with a natural terminator"
        );
    }

    #[test]
    fn two_leaders_one_terminator_are_distinct_blocks() {
        // A jump into the middle of the entry run creates a second leader
        // for the same halt terminator: REV needs two table entries with
        // the same BB address but different bodies (paper Sec. V.B).
        let m = build(|b| {
            let mid = b.new_label();
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
            b.bind(mid);
            b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 2 });
            b.push(Instruction::Halt);
            b.jmp(mid);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        let halt_addr = cfg.blocks().iter().find(|b| b.term == TermKind::Halt).unwrap().bb_addr;
        let ids = cfg.blocks_by_bb_addr(halt_addr);
        assert_eq!(ids.len(), 2, "one block per leader");
        let (a, b) = (cfg.block(ids[0]), cfg.block(ids[1]));
        assert_eq!(a.bb_addr, b.bb_addr);
        assert_ne!(a.start, b.start, "distinct leaders");
        assert_ne!(
            cfg.block_bytes(&m, a),
            cfg.block_bytes(&m, b),
            "distinct bodies ⇒ distinct digests ⇒ two table entries"
        );
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn stats_are_consistent() {
        let m = build(|b| {
            let out = b.new_label();
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 1 });
            b.branch(BranchCond::Ne, Reg::R1, Reg::R0, out);
            b.push(Instruction::Nop);
            b.bind(out);
            b.push(Instruction::Halt);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        let s = cfg.stats();
        assert_eq!(s.blocks, cfg.blocks().len());
        assert!(s.avg_instrs >= 1.0);
        assert!(s.avg_successors > 0.0);
    }

    #[test]
    fn block_bytes_hashable_region() {
        let m = build(|b| {
            b.push(Instruction::Nop);
            b.push(Instruction::Halt);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        let blk = cfg.block_by_start(0x1000).unwrap();
        let bytes = cfg.block_bytes(&m, blk);
        assert_eq!(bytes, &[0x00, 0x01]); // nop, halt opcodes
    }

    #[test]
    fn every_successor_has_a_block_and_back_edge() {
        let m = build(|b| {
            let f = b.begin_function("main");
            let loop_top = b.new_label();
            let exit = b.new_label();
            b.bind(loop_top);
            b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
            b.branch(BranchCond::Lt, Reg::R1, Reg::R2, loop_top);
            b.branch(BranchCond::Eq, Reg::R0, Reg::R0, exit);
            b.push(Instruction::Nop);
            b.bind(exit);
            b.push(Instruction::Halt);
            b.end_function(f);
        });
        let cfg = Cfg::analyze(&m, BbLimits::default()).unwrap();
        for b in cfg.blocks() {
            for &s in &b.successors {
                let succ = cfg.block_by_start(s).expect("successor analyzed");
                assert!(
                    succ.predecessors.contains(&b.bb_addr),
                    "missing back edge {:#x} -> {:#x}",
                    b.bb_addr,
                    s
                );
            }
        }
    }
}
