//! Executable modules: named, independently keyed units of code + data.
//!
//! Each module corresponds to the paper's notion of an independently
//! compiled/linked component (main executable, shared library, kernel
//! module, …) with "its own encrypted signature table" (Sec. IV.B). The
//! SAG's base/limit/key register triples switch between modules at run time.

use rev_isa::{decode, DecodeError, Instruction};
use std::collections::BTreeMap;
use std::fmt;

/// A function's extent within a module, recorded by the builder so the
/// static analyzer can compute return-site sets per function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Address of the first instruction.
    pub entry: u64,
    /// Address one past the last byte of the function.
    pub end: u64,
}

impl Function {
    /// Returns `true` if `addr` lies inside this function's extent.
    pub fn contains(&self, addr: u64) -> bool {
        (self.entry..self.end).contains(&addr)
    }
}

/// An assembled executable module.
#[derive(Debug, Clone)]
pub struct Module {
    name: String,
    base: u64,
    code: Vec<u8>,
    data_base: u64,
    data: Vec<u8>,
    functions: Vec<Function>,
    /// Statically known target sets of computed jumps/calls, keyed by the
    /// address of the indirect control-flow instruction.
    indirect_targets: BTreeMap<u64, Vec<u64>>,
}

impl Module {
    pub(crate) fn from_parts(
        name: String,
        base: u64,
        code: Vec<u8>,
        data_base: u64,
        data: Vec<u8>,
        functions: Vec<Function>,
        indirect_targets: BTreeMap<u64, Vec<u64>>,
    ) -> Self {
        Module { name, base, code, data_base, data, functions, indirect_targets }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Load address of the first code byte.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Address one past the last code byte.
    pub fn code_end(&self) -> u64 {
        self.base + self.code.len() as u64
    }

    /// The raw code bytes.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Load address of the data section (jump tables, constants).
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// The raw data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The functions recorded by the builder, in address order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The function containing `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// Statically known targets of the computed jump/call at `addr`.
    pub fn indirect_targets(&self, addr: u64) -> Option<&[u64]> {
        self.indirect_targets.get(&addr).map(Vec::as_slice)
    }

    /// All recorded (indirect-instruction address → target set) pairs.
    pub fn all_indirect_targets(&self) -> impl Iterator<Item = (u64, &[u64])> {
        self.indirect_targets.iter().map(|(a, t)| (*a, t.as_slice()))
    }

    /// Merges indirect-branch targets discovered by profiling runs into
    /// the module's static target sets (the paper's Sec. IV.D fallback
    /// when static analysis cannot enumerate computed-branch targets).
    /// Duplicates are ignored; new addresses are appended.
    pub fn merge_indirect_targets<I>(&mut self, discovered: I)
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        for (src, target) in discovered {
            let entry = self.indirect_targets.entry(src).or_default();
            if !entry.contains(&target) {
                entry.push(target);
            }
        }
    }

    /// Returns `true` if `addr` lies within the module's code section
    /// (the SAG limit-register check).
    pub fn contains_code(&self, addr: u64) -> bool {
        (self.base..self.code_end()).contains(&addr)
    }

    /// Decodes the instruction starting at virtual address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if `addr` is outside the code section or the
    /// bytes at `addr` do not decode.
    pub fn decode_at(&self, addr: u64) -> Result<(Instruction, usize), DecodeError> {
        if !self.contains_code(addr) {
            return Err(DecodeError::Truncated);
        }
        let off = (addr - self.base) as usize;
        decode(&self.code[off..])
    }

    /// Iterates over `(address, instruction, encoded length)` by linear
    /// sweep from the module base. The builder emits a dense instruction
    /// stream, so linear disassembly is exact (we are the compiler — no
    /// data is interleaved with code).
    pub fn instructions(&self) -> InstructionIter<'_> {
        InstructionIter { module: self, addr: self.base }
    }

    /// Total code size in bytes (the denominator of the paper's
    /// signature-table-size-to-binary-size ratios).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }
}

/// Iterator returned by [`Module::instructions`].
#[derive(Debug)]
pub struct InstructionIter<'a> {
    module: &'a Module,
    addr: u64,
}

impl Iterator for InstructionIter<'_> {
    type Item = Result<(u64, Instruction, usize), DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.addr >= self.module.code_end() {
            return None;
        }
        let addr = self.addr;
        match self.module.decode_at(addr) {
            Ok((insn, len)) => {
                self.addr += len as u64;
                Some(Ok((addr, insn, len)))
            }
            Err(e) => {
                self.addr = self.module.code_end(); // stop iteration after error
                Some(Err(e))
            }
        }
    }
}

// Display shows a short summary, not a full disassembly.
impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module {} @ {:#x} ({} code bytes, {} functions)",
            self.name,
            self.base,
            self.code.len(),
            self.functions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rev_isa::Reg;

    fn demo_module() -> Module {
        let mut b = ModuleBuilder::new("demo", 0x4000);
        let f = b.begin_function("f");
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R0, imm: 5 });
        b.push(Instruction::Mov { rd: Reg::R2, rs: Reg::R1 });
        b.push(Instruction::Ret);
        b.end_function(f);
        b.finish().unwrap()
    }

    #[test]
    fn linear_sweep_decodes_everything() {
        let m = demo_module();
        let insns: Vec<_> = m.instructions().collect::<Result<_, _>>().unwrap();
        assert_eq!(insns.len(), 3);
        assert_eq!(insns[0].0, 0x4000);
        let total: usize = insns.iter().map(|(_, _, l)| l).sum();
        assert_eq!(total, m.code_len());
    }

    #[test]
    fn decode_at_outside_code_errors() {
        let m = demo_module();
        assert!(m.decode_at(0x1).is_err());
        assert!(m.decode_at(m.code_end()).is_err());
    }

    #[test]
    fn function_extent_lookup() {
        let m = demo_module();
        let f = m.function_at(0x4000).expect("function at entry");
        assert_eq!(f.name, "f");
        assert!(f.contains(m.code_end() - 1));
        assert!(m.function_at(m.code_end()).is_none());
    }

    #[test]
    fn contains_code_respects_bounds() {
        let m = demo_module();
        assert!(m.contains_code(m.base()));
        assert!(!m.contains_code(m.base() - 1));
        assert!(!m.contains_code(m.code_end()));
    }
}
