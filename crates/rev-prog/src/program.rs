//! Whole programs: a set of modules plus stack/heap layout, and the loader
//! view (flat segments) consumed by the memory system.

use crate::module::Module;
use std::fmt;

/// Default stack size for loaded programs (1 MiB).
pub const STACK_SIZE_DEFAULT: u64 = 1 << 20;

/// A contiguous memory region produced by the loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Base virtual address.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
    /// Whether the program may write the region (code is read-only; attacks
    /// that inject code deliberately violate this, modeling a compromised
    /// page-protection setup — see `rev-attacks`).
    pub writable: bool,
}

impl Segment {
    /// Address one past the last byte.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }
}

/// A complete, linked program ready to load.
#[derive(Debug, Clone)]
pub struct Program {
    modules: Vec<Module>,
    entry: u64,
    stack_base: u64,
    stack_size: u64,
    extra: Vec<Segment>,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// The linked modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Entry-point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Initial stack pointer (the top of the stack region; the stack grows
    /// down).
    pub fn initial_sp(&self) -> u64 {
        self.stack_base + self.stack_size
    }

    /// Base address of the stack region.
    pub fn stack_base(&self) -> u64 {
        self.stack_base
    }

    /// The module whose code section contains `addr`, if any — the same
    /// question the SAG's limit registers answer in hardware.
    pub fn module_containing(&self, addr: u64) -> Option<&Module> {
        self.modules.iter().find(|m| m.contains_code(addr))
    }

    /// Flattens the program into loadable segments: per-module code
    /// (read-only) and data (writable), the zero-filled stack, and any
    /// extra segments.
    pub fn segments(&self) -> Vec<Segment> {
        let mut segs = Vec::new();
        for m in &self.modules {
            segs.push(Segment { addr: m.base(), bytes: m.code().to_vec(), writable: false });
            if !m.data().is_empty() {
                segs.push(Segment {
                    addr: m.data_base(),
                    bytes: m.data().to_vec(),
                    writable: true,
                });
            }
        }
        segs.push(Segment {
            addr: self.stack_base,
            bytes: vec![0; self.stack_size as usize],
            writable: true,
        });
        segs.extend(self.extra.iter().cloned());
        segs
    }

    /// Total code bytes across modules.
    pub fn total_code_len(&self) -> usize {
        self.modules.iter().map(Module::code_len).sum()
    }

    /// Appends a module after construction — the dynamic-loading path
    /// (`dlopen`-style). The caller is responsible for choosing a base
    /// address that does not overlap existing segments.
    pub fn add_module(&mut self, module: Module) {
        self.modules.push(module);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} modules, entry {:#x}, {} code bytes",
            self.modules.len(),
            self.entry,
            self.total_code_len()
        )
    }
}

/// Builder for [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    modules: Vec<Module>,
    entry: Option<u64>,
    stack_base: Option<u64>,
    stack_size: u64,
    extra: Vec<Segment>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder { stack_size: STACK_SIZE_DEFAULT, ..Default::default() }
    }

    /// Adds a linked module.
    pub fn module(&mut self, module: Module) -> &mut Self {
        self.modules.push(module);
        self
    }

    /// Sets the entry point (defaults to the first module's base).
    pub fn entry(&mut self, entry: u64) -> &mut Self {
        self.entry = Some(entry);
        self
    }

    /// Places the stack explicitly (defaults to just past the highest
    /// loaded address, 4 KiB aligned, plus a guard gap).
    pub fn stack(&mut self, base: u64, size: u64) -> &mut Self {
        self.stack_base = Some(base);
        self.stack_size = size;
        self
    }

    /// Adds an extra writable segment (workload arrays, heap, …).
    pub fn segment(&mut self, addr: u64, bytes: Vec<u8>) -> &mut Self {
        self.extra.push(Segment { addr, bytes, writable: true });
        self
    }

    /// Adds an extra zero-filled writable segment.
    pub fn zeroed_segment(&mut self, addr: u64, len: usize) -> &mut Self {
        self.extra.push(Segment { addr, bytes: vec![0; len], writable: true });
        self
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if no modules were added.
    pub fn build(&mut self) -> Program {
        assert!(!self.modules.is_empty(), "a program needs at least one module");
        let entry = self.entry.unwrap_or_else(|| self.modules[0].base());
        let highest = self
            .modules
            .iter()
            .map(|m| m.data_base() + m.data().len() as u64)
            .chain(self.modules.iter().map(|m| m.code_end()))
            .chain(self.extra.iter().map(Segment::end))
            .max()
            .expect("non-empty");
        let stack_base = self.stack_base.unwrap_or_else(|| (highest + 0x1_0000) & !0xfff);
        Program {
            modules: std::mem::take(&mut self.modules),
            entry,
            stack_base,
            stack_size: self.stack_size,
            extra: std::mem::take(&mut self.extra),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rev_isa::Instruction;

    fn tiny_module(name: &str, base: u64) -> Module {
        let mut b = ModuleBuilder::new(name, base);
        b.push(Instruction::Nop);
        b.push(Instruction::Halt);
        b.finish().unwrap()
    }

    #[test]
    fn segments_cover_code_data_stack() {
        let mut pb = Program::builder();
        pb.module(tiny_module("a", 0x1000));
        pb.zeroed_segment(0x9000, 64);
        let p = pb.build();
        let segs = p.segments();
        assert!(segs.iter().any(|s| s.addr == 0x1000 && !s.writable));
        assert!(segs.iter().any(|s| s.addr == 0x9000 && s.writable));
        assert!(segs.iter().any(|s| s.addr == p.stack_base() && s.writable));
        assert_eq!(p.initial_sp(), p.stack_base() + STACK_SIZE_DEFAULT);
    }

    #[test]
    fn entry_defaults_to_first_module() {
        let mut pb = Program::builder();
        pb.module(tiny_module("a", 0x4000));
        let p = pb.build();
        assert_eq!(p.entry(), 0x4000);
    }

    #[test]
    fn module_containing_resolves_by_code_range() {
        let mut pb = Program::builder();
        pb.module(tiny_module("a", 0x1000));
        pb.module(tiny_module("b", 0x8000));
        let p = pb.build();
        assert_eq!(p.module_containing(0x1001).unwrap().name(), "a");
        assert_eq!(p.module_containing(0x8000).unwrap().name(), "b");
        assert!(p.module_containing(0x5000).is_none());
    }

    #[test]
    fn stack_avoids_loaded_segments() {
        let mut pb = Program::builder();
        pb.module(tiny_module("a", 0x1000));
        pb.zeroed_segment(0x2_0000, 4096);
        let p = pb.build();
        assert!(p.stack_base() >= 0x2_0000 + 4096);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_program_rejected() {
        Program::builder().build();
    }
}
