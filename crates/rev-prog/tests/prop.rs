//! Property tests: CFG analysis invariants over randomly generated
//! modules.

use proptest::prelude::*;
use rev_isa::{AluOp, BranchCond, Instruction, Reg};
use rev_prog::{BbLimits, Cfg, Module, ModuleBuilder, TermKind};

/// A tiny structured-program generator: a list of segments, each either
/// straight-line filler, a forward branch over filler, a backward loop, or
/// a call to a later function. Always ends with halt.
#[derive(Debug, Clone)]
enum Seg {
    Filler(u8),
    Diamond(u8),
    Loop(u8),
}

fn arb_seg() -> impl Strategy<Value = Seg> {
    prop_oneof![
        (1u8..6).prop_map(Seg::Filler),
        (1u8..4).prop_map(Seg::Diamond),
        (1u8..4).prop_map(Seg::Loop),
    ]
}

fn build_module(segs: &[Seg]) -> Module {
    let mut b = ModuleBuilder::new("prop", 0x1000);
    let f = b.begin_function("main");
    for (i, seg) in segs.iter().enumerate() {
        match seg {
            Seg::Filler(n) => {
                for k in 0..*n {
                    b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: k as i32 });
                }
            }
            Seg::Diamond(n) => {
                let merge = b.new_label();
                b.branch(BranchCond::Eq, Reg::R1, Reg::R2, merge);
                for _ in 0..*n {
                    b.push(Instruction::Alu {
                        op: AluOp::Xor,
                        rd: Reg::R3,
                        rs1: Reg::R3,
                        rs2: Reg::R1,
                    });
                }
                b.bind(merge);
                b.push(Instruction::AddI { rd: Reg::R4, rs: Reg::R4, imm: i as i32 });
            }
            Seg::Loop(n) => {
                let top = b.new_label();
                b.push(Instruction::Li { rd: Reg::R5, imm: *n as u64 });
                b.bind(top);
                b.push(Instruction::AddI { rd: Reg::R5, rs: Reg::R5, imm: -1 });
                b.branch(BranchCond::Ne, Reg::R5, Reg::R0, top);
            }
        }
    }
    b.push(Instruction::Halt);
    b.end_function(f);
    b.finish().expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every byte of code is covered by at least one block, blocks respect
    /// the splitting limits, and the successor/predecessor relation is
    /// symmetric.
    #[test]
    fn cfg_invariants(segs in proptest::collection::vec(arb_seg(), 1..20),
                      max_instrs in 3usize..64) {
        let module = build_module(&segs);
        let limits = BbLimits { max_instrs, max_stores: 8 };
        let cfg = Cfg::analyze(&module, limits).expect("analyzes");

        // 1. The entry block exists and block instruction counts respect
        //    the artificial limit.
        prop_assert!(cfg.block_by_start(module.base()).is_some());
        for b in cfg.blocks() {
            prop_assert!(b.len() <= max_instrs, "block too long: {}", b.len());
            prop_assert!(!b.is_empty());
            prop_assert_eq!(b.instrs.last().unwrap().0, b.bb_addr);
            prop_assert!(b.start <= b.bb_addr);
        }

        // 2. Successor/predecessor symmetry.
        for b in cfg.blocks() {
            for &s in &b.successors {
                let succ = cfg.block_by_start(s).expect("successor block exists");
                prop_assert!(
                    succ.predecessors.contains(&b.bb_addr),
                    "missing back edge {:#x} -> {:#x}", b.bb_addr, s
                );
            }
        }

        // 3. Every reachable-from-entry address is inside some block's
        //    byte range (coverage walk along fall-through + branch edges).
        for b in cfg.blocks() {
            if b.term == TermKind::CondBranch {
                prop_assert!(b.successors.len() <= 2);
                prop_assert!(!b.successors.is_empty());
            }
        }

        // 4. Analysis is deterministic.
        let cfg2 = Cfg::analyze(&module, limits).expect("analyzes");
        prop_assert_eq!(cfg.blocks().len(), cfg2.blocks().len());
    }

    /// Block byte slices decode back to exactly the block's instructions.
    #[test]
    fn block_bytes_decode(segs in proptest::collection::vec(arb_seg(), 1..12)) {
        let module = build_module(&segs);
        let cfg = Cfg::analyze(&module, BbLimits::default()).expect("analyzes");
        for b in cfg.blocks() {
            let bytes = cfg.block_bytes(&module, b);
            let mut off = 0usize;
            for (addr, insn) in &b.instrs {
                let (decoded, len) = rev_isa::decode(&bytes[off..]).expect("decodes");
                prop_assert_eq!(&decoded, insn, "at {:#x}", addr);
                off += len;
            }
            prop_assert_eq!(off, bytes.len());
        }
    }
}
