//! Fault-injection: deliberately corrupted tables must trip the audit
//! lints, with the expected codes visible in the JSON rendering.

use rev_core::{RevConfig, RevSimulator};
use rev_crypto::Aes128;
use rev_lint::{lint_tables, Lint};
use rev_sigtable::{RawEntry, ValidationMode};
use rev_workloads::{generate, SpecProfile};

fn built_simulator() -> RevSimulator {
    let profile = SpecProfile::by_name("mcf").expect("profile exists").scaled(0.01);
    RevSimulator::new(generate(&profile), RevConfig::paper_default()).expect("clean build")
}

#[test]
fn untampered_tables_pass_the_gate() {
    let sim = built_simulator();
    let tables = sim.monitor().sag().tables().to_vec();
    let report = lint_tables(sim.program(), &tables, sim.config().bb_limits);
    assert!(report.passes_gate(), "seed tables must lint clean:\n{}", report.render_text());
}

#[test]
fn dropped_entry_is_flagged_as_coverage_missing() {
    let sim = built_simulator();
    let mut tables = sim.monitor().sag().tables().to_vec();
    let table = &mut tables[0];

    // Pick a chain-terminal primary whose digest appears exactly once, so
    // wiping it provably removes that block's only digest witness (the
    // walk still terminates cleanly at the Invalid entry — this models a
    // generator that silently dropped an entry, not a decode error).
    let entries = table.decode_entries();
    let digest_of = |e: &Option<RawEntry>| match e {
        Some(RawEntry::Primary { digest, .. }) => Some(*digest),
        _ => None,
    };
    let idx = entries
        .iter()
        .position(|e| {
            let Some(d) = digest_of(e) else { return false };
            e.as_ref().expect("primary").next().is_none()
                && entries.iter().filter(|o| digest_of(o) == Some(d)).count() == 1
        })
        .expect("a uniquely-digested terminal primary exists");

    let mut wiped = RawEntry::Invalid.pack(ValidationMode::Standard);
    Aes128::new(*table.key().as_bytes()).encrypt_tweaked(idx as u64, &mut wiped);
    let off = 16 + idx * 16;
    table.image_mut()[off..off + 16].copy_from_slice(&wiped);

    let report = lint_tables(sim.program(), &tables, sim.config().bb_limits);
    assert!(!report.passes_gate(), "dropped entry must fail the gate");
    assert!(
        !report.with_lint(Lint::CoverageMissing).is_empty(),
        "expected REV-L001, got:\n{}",
        report.render_text()
    );
    let json = report.render_json();
    assert!(json.contains("\"REV-L001\""), "JSON must carry the lint code: {json}");
    assert!(json.contains("\"severity\":\"error\""));
}

#[test]
fn shifted_base_limit_is_flagged_by_sag_sanity() {
    let sim = built_simulator();
    let mut tables = sim.monitor().sag().tables().to_vec();
    let table = &mut tables[0];
    // Model a loader that programmed the SAG limit registers 16 bytes off.
    table.set_module_range(table.module_base() + 16, table.module_end() + 16);

    let report = lint_tables(sim.program(), &tables, sim.config().bb_limits);
    assert!(!report.passes_gate(), "shifted range must fail the gate");
    assert!(
        !report.with_lint(Lint::SagNoModule).is_empty(),
        "expected REV-L021, got:\n{}",
        report.render_text()
    );
    assert!(
        !report.with_lint(Lint::ModuleUntabled).is_empty(),
        "expected REV-L022, got:\n{}",
        report.render_text()
    );
    let json = report.render_json();
    assert!(json.contains("\"REV-L021\""));
    assert!(json.contains("\"REV-L022\""));
}
