//! The differential oracle over every workload profile: each dynamically
//! discovered (leader, terminator, hash) triple must have been statically
//! predicted, and the static lint pass must hold the gate.

use rev_core::{RevConfig, RevSimulator};
use rev_lint::{lint_tables, run_oracle, Lint};
use rev_workloads::{generate, ALL_PROFILES};

/// Small enough to keep the full sweep quick, large enough to exercise
/// indirect branches, jump tables, and cross-module returns.
const SCALE: f64 = 0.02;
const INSTRUCTIONS: u64 = 30_000;

#[test]
fn every_profile_lints_clean_and_dynamic_is_subset_of_static() {
    for profile in ALL_PROFILES {
        let program = generate(&profile.scaled(SCALE));
        let mut sim = RevSimulator::new(program, RevConfig::paper_default())
            .unwrap_or_else(|e| panic!("{}: build failed: {e}", profile.name));

        let tables = sim.monitor().sag().tables().to_vec();
        let report = lint_tables(sim.program(), &tables, sim.config().bb_limits);
        assert!(
            report.passes_gate(),
            "{}: static lint failed:\n{}",
            profile.name,
            report.render_text()
        );

        let outcome = run_oracle(&mut sim, INSTRUCTIONS);
        assert!(outcome.dynamic_blocks > 0, "{}: no blocks executed", profile.name);
        assert!(
            outcome.dynamic_subset_of_static(),
            "{}: dynamic blocks escaped static prediction:\n{}",
            profile.name,
            outcome.report.render_text()
        );
        assert!(
            outcome.report.with_lint(Lint::OracleDynamicNotStatic).is_empty()
                && outcome.report.passes_gate(),
            "{}: oracle reported errors:\n{}",
            profile.name,
            outcome.report.render_text()
        );
    }
}
