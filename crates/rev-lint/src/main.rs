//! `rev-lint` — static whole-program verifier for REV guest programs and
//! signature tables.
//!
//! ```text
//! rev-lint [--all | --profile NAME ...] [--scale F] [--mode MODE]
//!          [--format text|json] [--oracle] [--instructions N]
//! ```
//!
//! Exit status is nonzero iff any diagnostic at `error` severity was
//! emitted — this is the gate `scripts/check.sh` relies on.

use rev_core::{RevConfig, RevSimulator};
use rev_lint::{lint_tables, oracle, Report};
use rev_sigtable::ValidationMode;
use rev_workloads::{generate, SpecProfile, ALL_PROFILES};

struct Options {
    profiles: Vec<&'static SpecProfile>,
    scale: f64,
    mode: ValidationMode,
    json: bool,
    oracle: bool,
    instructions: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: rev-lint [--all | --profile NAME ...] [--scale F] \
         [--mode standard|aggressive|cfi-only] [--format text|json] \
         [--oracle] [--instructions N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        profiles: Vec::new(),
        scale: 0.05,
        mode: ValidationMode::Standard,
        json: false,
        oracle: false,
        instructions: 200_000,
    };
    let mut args = std::env::args().skip(1);
    let mut all = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("rev-lint: {flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--all" => all = true,
            "--profile" => {
                let name = value("--profile");
                match SpecProfile::by_name(&name) {
                    Some(p) => opts.profiles.push(p),
                    None => {
                        eprintln!("rev-lint: unknown profile {name:?}");
                        usage();
                    }
                }
            }
            "--scale" => {
                opts.scale = value("--scale").parse().unwrap_or_else(|_| usage());
            }
            "--mode" => match value("--mode").as_str() {
                "standard" => opts.mode = ValidationMode::Standard,
                "aggressive" => opts.mode = ValidationMode::Aggressive,
                "cfi-only" | "cfi" => opts.mode = ValidationMode::CfiOnly,
                other => {
                    eprintln!("rev-lint: unknown mode {other:?}");
                    usage();
                }
            },
            "--format" => match value("--format").as_str() {
                "json" => opts.json = true,
                "text" => opts.json = false,
                other => {
                    eprintln!("rev-lint: unknown format {other:?}");
                    usage();
                }
            },
            "--oracle" => opts.oracle = true,
            "--instructions" => {
                opts.instructions = value("--instructions").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rev-lint: unknown argument {other:?}");
                usage();
            }
        }
    }
    if all || opts.profiles.is_empty() {
        opts.profiles = ALL_PROFILES.iter().collect();
    }
    opts
}

/// Lints one profile, returning its (possibly oracle-augmented) report.
fn lint_profile(profile: &SpecProfile, opts: &Options) -> Report {
    let program = generate(&profile.scaled(opts.scale));
    let config = RevConfig::paper_default().with_mode(opts.mode);
    let mut sim = match RevSimulator::new(program, config) {
        Ok(sim) => sim,
        Err(e) => {
            let mut report = Report::new();
            report.push(rev_lint::Diagnostic::new(
                rev_lint::Lint::AnalysisFailed,
                format!("simulator build failed: {e}"),
            ));
            return report;
        }
    };
    let tables: Vec<_> = sim.monitor().sag().tables().to_vec();
    let mut report = lint_tables(sim.program(), &tables, sim.config().bb_limits);
    if opts.oracle {
        report.merge(oracle::run_oracle(&mut sim, opts.instructions).report);
    }
    report.sort();
    report
}

fn main() {
    let opts = parse_args();
    let mut total_errors = 0usize;
    let mut first = true;
    if opts.json {
        println!("{{\"profiles\":[");
    }
    for profile in &opts.profiles {
        let report = lint_profile(profile, &opts);
        total_errors += report.error_count();
        if opts.json {
            if !first {
                println!(",");
            }
            print!("{{\"profile\":\"{}\",\"report\":{}}}", profile.name, report.render_json());
        } else {
            println!("== {} ==", profile.name);
            if report.diagnostics.is_empty() {
                println!("clean");
            } else {
                print!("{}", report.render_text());
            }
            println!();
        }
        first = false;
    }
    if opts.json {
        println!("\n],\"errors\":{total_errors}}}");
    } else {
        println!("{} profile(s), {} error(s)", opts.profiles.len(), total_errors);
    }
    if total_errors > 0 {
        std::process::exit(1);
    }
}
