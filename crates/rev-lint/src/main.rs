//! `rev-lint` — static whole-program verifier for REV guest programs and
//! signature tables.
//!
//! ```text
//! rev-lint [--all | --profile NAME ...] [--scale F] [--mode MODE]
//!          [--format text|json] [--oracle] [--instructions N]
//!          [--audit] [--audit-json PATH] [--jobs N] [--deny-warnings]
//! ```
//!
//! Exit status is nonzero iff any diagnostic at `error` severity was
//! emitted (or, under `--deny-warnings`, at `warning`) — this is the
//! gate `scripts/check.sh` relies on.

use rev_core::{RevConfig, RevSimulator};
use rev_lint::{audit, lint_tables, oracle, Report, Severity};
use rev_sigtable::ValidationMode;
use rev_trace::{parallel_map, MetricRegistry, Snapshot};
use rev_workloads::{generate, SpecProfile, ALL_PROFILES};

struct Options {
    profiles: Vec<&'static SpecProfile>,
    scale: f64,
    mode: ValidationMode,
    json: bool,
    oracle: bool,
    instructions: u64,
    audit: bool,
    audit_json: Option<String>,
    jobs: usize,
    deny_warnings: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rev-lint [--all | --profile NAME ...] [--scale F] \
         [--mode standard|aggressive|cfi-only] [--format text|json] \
         [--oracle] [--instructions N] [--audit] [--audit-json PATH] \
         [--jobs N] [--deny-warnings]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        profiles: Vec::new(),
        scale: 0.05,
        mode: ValidationMode::Standard,
        json: false,
        oracle: false,
        instructions: 200_000,
        audit: false,
        audit_json: None,
        jobs: 1,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    let mut all = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("rev-lint: {flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--all" => all = true,
            "--profile" => {
                let name = value("--profile");
                match SpecProfile::by_name(&name) {
                    Some(p) => opts.profiles.push(p),
                    None => {
                        eprintln!("rev-lint: unknown profile {name:?}");
                        usage();
                    }
                }
            }
            "--scale" => {
                opts.scale = value("--scale").parse().unwrap_or_else(|_| usage());
            }
            "--mode" => match value("--mode").as_str() {
                "standard" => opts.mode = ValidationMode::Standard,
                "aggressive" => opts.mode = ValidationMode::Aggressive,
                "cfi-only" | "cfi" => opts.mode = ValidationMode::CfiOnly,
                other => {
                    eprintln!("rev-lint: unknown mode {other:?}");
                    usage();
                }
            },
            "--format" => match value("--format").as_str() {
                "json" => opts.json = true,
                "text" => opts.json = false,
                other => {
                    eprintln!("rev-lint: unknown format {other:?}");
                    usage();
                }
            },
            "--oracle" => opts.oracle = true,
            "--instructions" => {
                opts.instructions = value("--instructions").parse().unwrap_or_else(|_| usage());
            }
            "--audit" => opts.audit = true,
            "--audit-json" => {
                opts.audit = true;
                opts.audit_json = Some(value("--audit-json"));
            }
            "--jobs" => {
                opts.jobs = value("--jobs").parse().unwrap_or_else(|_| usage());
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rev-lint: unknown argument {other:?}");
                usage();
            }
        }
    }
    if all || opts.profiles.is_empty() {
        opts.profiles = ALL_PROFILES.iter().collect();
    }
    opts
}

/// Lints one profile, returning its (possibly oracle- and
/// audit-augmented) report plus the audit metrics when `--audit` is on.
fn lint_profile(profile: &SpecProfile, opts: &Options) -> (Report, Option<MetricRegistry>) {
    let program = generate(&profile.scaled(opts.scale));
    let config = RevConfig::paper_default().with_mode(opts.mode);
    let mut sim = match RevSimulator::new(program, config) {
        Ok(sim) => sim,
        Err(e) => {
            let mut report = Report::new();
            report.push(rev_lint::Diagnostic::new(
                rev_lint::Lint::AnalysisFailed,
                format!("simulator build failed: {e}"),
            ));
            return (report, None);
        }
    };
    let tables: Vec<_> = sim.monitor().sag().tables().to_vec();
    let mut report = lint_tables(sim.program(), &tables, sim.config().bb_limits);
    let mut metrics = None;
    if opts.audit {
        let outcome = audit::audit_program(sim.program(), &config);
        metrics = Some(outcome.metrics());
        report.merge(outcome.report);
    }
    if opts.oracle {
        report.merge(oracle::run_oracle(&mut sim, opts.instructions).report);
    }
    report.sort();
    (report, metrics)
}

fn main() {
    let opts = parse_args();
    // Fan the per-profile work out, then print serially in profile order:
    // output is byte-identical for every --jobs value.
    let results = parallel_map(opts.jobs, &opts.profiles, |_w, profile| {
        (profile.name, lint_profile(profile, &opts))
    });
    let mut total_errors = 0usize;
    let mut audit_snapshot = opts.audit_json.as_ref().map(|_| {
        let mut snap = Snapshot::new();
        snap.meta_entry("source", rev_trace::Json::Str("rev-lint --audit".into()));
        snap.meta_entry("scale", rev_trace::Json::Float(opts.scale));
        snap
    });
    let mut first = true;
    if opts.json {
        println!("{{\"profiles\":[");
    }
    for (name, (report, metrics)) in results {
        total_errors += report.error_count();
        if opts.deny_warnings {
            total_errors +=
                report.diagnostics.iter().filter(|d| d.severity() == Severity::Warning).count();
        }
        if let (Some(snap), Some(reg)) = (audit_snapshot.as_mut(), metrics) {
            snap.add_metrics(name, "audit", reg);
        }
        if opts.json {
            if !first {
                println!(",");
            }
            print!("{{\"profile\":\"{}\",\"report\":{}}}", name, report.render_json());
        } else {
            println!("== {name} ==");
            if report.diagnostics.is_empty() {
                println!("clean");
            } else {
                print!("{}", report.render_text());
            }
            println!();
        }
        first = false;
    }
    if opts.json {
        println!("\n],\"errors\":{total_errors}}}");
    } else {
        println!("{} profile(s), {} error(s)", opts.profiles.len(), total_errors);
    }
    if let (Some(path), Some(snap)) = (&opts.audit_json, &audit_snapshot) {
        if let Err(e) = std::fs::write(path, snap.render()) {
            eprintln!("rev-lint: writing {path}: {e}");
            std::process::exit(2);
        }
    }
    if total_errors > 0 {
        std::process::exit(1);
    }
}
