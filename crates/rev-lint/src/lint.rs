//! The static checks: program-shape lints over the stitched CFGs and
//! differential audits of the built signature tables.
//!
//! The linter re-derives every quantity the trusted linker computes —
//! block boundaries via [`rev_core::analyze_and_link`] (the *same* pass
//! the table generator consumes, so block boundaries cannot drift) and
//! entry digests via an independent re-implementation of the builder's
//! binding rules — then diffs the derivations against what the encrypted
//! table actually contains.

use crate::diag::{Diagnostic, Lint, Report};
use rev_core::{analyze_and_link, RevConfig, RevSimulator};
use rev_crypto::{bb_body_hash, entry_digest};
use rev_prog::{BbLimits, BlockInfo, Cfg, Module, Program, TermKind};
use rev_sigtable::{SignatureTable, ValidationMode};
use std::collections::{HashMap, HashSet};

/// How many findings of one lint to report per module before folding the
/// remainder into a single summarizing diagnostic. Keeps a badly corrupted
/// table from producing megabytes of output while preserving the count.
const PER_LINT_CAP: usize = 16;

/// Lints a program against its built signature tables.
///
/// `tables` must be the tables the simulator will consume (one per module,
/// in any order — pairing is by base/limit range). `limits` must match the
/// configuration the tables were built with.
pub fn lint_tables(program: &Program, tables: &[SignatureTable], limits: BbLimits) -> Report {
    let mut report = Report::new();
    let cfgs = match analyze_and_link(program, limits) {
        Ok(cfgs) => cfgs,
        Err(e) => {
            report.push(
                Diagnostic::new(Lint::AnalysisFailed, format!("static analysis failed: {e}"))
                    .hint("fix the module (or its recorded indirect target sets) so it analyzes"),
            );
            return report;
        }
    };

    check_sag_sanity(program, tables, &mut report);
    check_writable_code(program, &mut report);
    check_module_reachability(program, &cfgs, &mut report);
    for (module, cfg) in program.modules().iter().zip(&cfgs) {
        check_split_rules(module, cfg, limits, &mut report);
        check_indirect_targets(program, &cfgs, module, cfg, &mut report);
        check_return_sites(program, &cfgs, module, cfg, &mut report);
        if let Some(table) = table_for_module(tables, module) {
            check_table_against_cfg(module, cfg, table, &mut report);
        }
    }
    report.sort();
    report
}

/// Convenience wrapper: builds the simulator's tables for `program` under
/// `config` (exactly what a run would consume) and lints them. An
/// unbuildable program reports as [`Lint::AnalysisFailed`].
pub fn lint_build(program: Program, config: RevConfig) -> Report {
    match RevSimulator::new(program, config) {
        Ok(sim) => lint_tables(sim.program(), sim.monitor().sag().tables(), config.bb_limits),
        Err(e) => {
            let mut report = Report::new();
            report.push(
                Diagnostic::new(Lint::AnalysisFailed, format!("build failed: {e}"))
                    .hint("fix the module so analysis and table generation succeed"),
            );
            report
        }
    }
}

/// The table whose base/limit range exactly covers `module`, if any
/// (missing/mismatched pairings are reported by [`check_sag_sanity`]).
fn table_for_module<'t>(
    tables: &'t [SignatureTable],
    module: &Module,
) -> Option<&'t SignatureTable> {
    tables.iter().find(|t| t.module_base() == module.base() && t.module_end() == module.code_end())
}

/// Pushes `diags` capped at [`PER_LINT_CAP`], folding the overflow into a
/// final count-carrying diagnostic.
fn push_capped(report: &mut Report, lint: Lint, module: &str, diags: Vec<Diagnostic>) {
    let total = diags.len();
    for d in diags.into_iter().take(PER_LINT_CAP) {
        report.push(d);
    }
    if total > PER_LINT_CAP {
        report.push(
            Diagnostic::new(
                lint,
                format!("... and {} more {} finding(s)", total - PER_LINT_CAP, lint.name()),
            )
            .module(module),
        );
    }
}

/// SAG module sanity: overlapping ranges, tables resolving to no module,
/// and modules covered by no table.
fn check_sag_sanity(program: &Program, tables: &[SignatureTable], report: &mut Report) {
    // Overlap: any two table ranges intersecting makes resolution
    // ambiguous (which key decrypts a block in the overlap?).
    let mut ranges: Vec<(u64, u64, &str)> =
        tables.iter().map(|t| (t.module_base(), t.module_end(), t.module_name())).collect();
    ranges.sort_unstable();
    for pair in ranges.windows(2) {
        let (lo_base, lo_end, lo_name) = pair[0];
        let (hi_base, _, hi_name) = pair[1];
        if hi_base < lo_end {
            report.push(
                Diagnostic::new(
                    Lint::SagOverlap,
                    format!(
                        "table ranges overlap: '{lo_name}' [{lo_base:#x},{lo_end:#x}) and '{hi_name}' starting {hi_base:#x}"
                    ),
                )
                .module(lo_name)
                .addr(hi_base)
                .hint("re-link the modules at disjoint bases"),
            );
        }
    }
    // Tables that resolve to no loaded module.
    for t in tables {
        let matches_module = program
            .modules()
            .iter()
            .any(|m| m.base() == t.module_base() && m.code_end() == t.module_end());
        if !matches_module {
            report.push(
                Diagnostic::new(
                    Lint::SagNoModule,
                    format!(
                        "table '{}' covers [{:#x},{:#x}) which matches no loaded module",
                        t.module_name(),
                        t.module_base(),
                        t.module_end()
                    ),
                )
                .module(t.module_name())
                .addr(t.module_base())
                .hint("regenerate the table from the module actually loaded"),
            );
        }
    }
    // Modules with no covering table: every transfer into them raises
    // NoTable at run time.
    for m in program.modules() {
        if table_for_module(tables, m).is_none() {
            report.push(
                Diagnostic::new(
                    Lint::ModuleUntabled,
                    format!(
                        "module code range [{:#x},{:#x}) has no signature table",
                        m.base(),
                        m.code_end()
                    ),
                )
                .module(m.name())
                .addr(m.base())
                .hint("build and register a table for the module"),
            );
        }
    }
}

/// Self-modifying / overlapping-code hazard: a module's code range
/// intersecting a writable segment means the hashed bytes can change
/// under REV's feet.
fn check_writable_code(program: &Program, report: &mut Report) {
    let segments = program.segments();
    for m in program.modules() {
        for seg in segments.iter().filter(|s| s.writable) {
            if m.base() < seg.end() && seg.addr < m.code_end() {
                report.push(
                    Diagnostic::new(
                        Lint::CodeInWritableMemory,
                        format!(
                            "code [{:#x},{:#x}) intersects writable segment [{:#x},{:#x})",
                            m.base(),
                            m.code_end(),
                            seg.addr,
                            seg.end()
                        ),
                    )
                    .module(m.name())
                    .addr(seg.addr.max(m.base()))
                    .hint("move the data/stack segment or mark the region read-only"),
                );
            }
        }
    }
}

/// Modules unreachable from the program entry through any static edge.
fn check_module_reachability(program: &Program, cfgs: &[Cfg], report: &mut Report) {
    let modules = program.modules();
    let module_of = |addr: u64| modules.iter().position(|m| m.contains_code(addr));
    let Some(entry_idx) = module_of(program.entry()) else {
        // Entry outside every module is a load-time failure, not a lint.
        return;
    };
    // BFS over cross-module static edges.
    let mut reachable = vec![false; modules.len()];
    let mut stack = vec![entry_idx];
    reachable[entry_idx] = true;
    while let Some(i) = stack.pop() {
        for block in cfgs[i].blocks() {
            for &s in &block.successors {
                if let Some(j) = module_of(s) {
                    if !reachable[j] {
                        reachable[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
    }
    for (i, m) in modules.iter().enumerate() {
        if !reachable[i] {
            report.push(
                Diagnostic::new(
                    Lint::ModuleUnreachable,
                    "no static path from the program entry reaches this module",
                )
                .module(m.name())
                .addr(m.base())
                .hint("drop the module or add the missing call/jump edge"),
            );
        }
    }
}

/// Split-rule consistency: every re-derived block must obey the limits,
/// and no natural terminator may sit in a block's interior.
fn check_split_rules(module: &Module, cfg: &Cfg, limits: BbLimits, report: &mut Report) {
    let mut diags = Vec::new();
    for block in cfg.blocks() {
        if block.len() > limits.max_instrs || block.num_stores > limits.max_stores {
            diags.push(
                Diagnostic::new(
                    Lint::SplitLimitExceeded,
                    format!(
                        "block (leader {:#x}) has {} instrs / {} stores, limits are {} / {}",
                        block.start,
                        block.len(),
                        block.num_stores,
                        limits.max_instrs,
                        limits.max_stores
                    ),
                )
                .module(module.name())
                .addr(block.bb_addr)
                .hint("rebuild the table with the limits the hardware enforces"),
            );
        }
        for &(addr, insn) in block.instrs.iter().take(block.len().saturating_sub(1)) {
            if insn.is_bb_terminator() {
                diags.push(
                    Diagnostic::new(
                        Lint::SplitInteriorTerminator,
                        format!("terminator at {addr:#x} sits inside the block's interior"),
                    )
                    .module(module.name())
                    .addr(block.bb_addr)
                    .hint("re-run block discovery; interior terminators must end blocks"),
                );
            }
        }
    }
    push_capped(report, Lint::SplitLimitExceeded, module.name(), diags);
}

/// Indirect-branch target-set inference: computed jumps/calls with empty
/// target sets, and targets escaping every module (or landing off any
/// analyzed block leader).
fn check_indirect_targets(
    program: &Program,
    cfgs: &[Cfg],
    module: &Module,
    cfg: &Cfg,
    report: &mut Report,
) {
    let mut diags = Vec::new();
    for block in cfg.blocks() {
        if !matches!(block.term, TermKind::JumpIndirect | TermKind::CallIndirect) {
            continue;
        }
        if block.successors.is_empty() {
            report.push(
                Diagnostic::new(
                    Lint::IndirectEmptyTargets,
                    format!("computed branch at {:#x} has an empty target set", block.bb_addr),
                )
                .module(module.name())
                .addr(block.bb_addr)
                .hint("record the branch's legitimate targets (profile or points-to analysis)"),
            );
            continue;
        }
        for &target in &block.successors {
            let owner = program.modules().iter().position(|m| m.contains_code(target));
            let landed = match owner {
                None => false,
                Some(j) => cfgs[j].block_by_start(target).is_some(),
            };
            if !landed {
                let why = if owner.is_none() {
                    "escapes every loaded module"
                } else {
                    "is not an analyzed block leader in its module"
                };
                diags.push(
                    Diagnostic::new(
                        Lint::IndirectEscapingTarget,
                        format!(
                            "target {target:#x} of computed branch at {:#x} {why}",
                            block.bb_addr
                        ),
                    )
                    .module(module.name())
                    .addr(target)
                    .hint("fix the recorded target set or load the module it points into"),
                );
            }
        }
    }
    push_capped(report, Lint::IndirectEscapingTarget, module.name(), diags);
}

/// Return-site audit: every return's latched-validation successor block
/// must exist and carry the return's BB address in its predecessor set —
/// the two facts delayed return validation consults (paper Sec. V.A).
fn check_return_sites(
    program: &Program,
    cfgs: &[Cfg],
    module: &Module,
    cfg: &Cfg,
    report: &mut Report,
) {
    let mut diags = Vec::new();
    let mut dead = Vec::new();
    for block in cfg.blocks() {
        if block.term != TermKind::Return {
            continue;
        }
        if block.successors.is_empty() {
            dead.push(
                Diagnostic::new(
                    Lint::ReturnNeverCalled,
                    format!(
                        "return at {:#x} has no return sites (function never called)",
                        block.bb_addr
                    ),
                )
                .module(module.name())
                .addr(block.bb_addr)
                .hint("dead function: executing its return can only raise a violation"),
            );
            continue;
        }
        for &site in &block.successors {
            let owner = program.modules().iter().position(|m| m.contains_code(site));
            let site_block = owner.and_then(|j| cfgs[j].block_by_start(site));
            match site_block {
                None => diags.push(
                    Diagnostic::new(
                        Lint::ReturnSiteMissing,
                        format!(
                            "return site {site:#x} of return at {:#x} has no analyzed block",
                            block.bb_addr
                        ),
                    )
                    .module(module.name())
                    .addr(site)
                    .hint("the call-site successor must be a block leader; re-run analysis"),
                ),
                Some(sb) if !sb.predecessors.contains(&block.bb_addr) => diags.push(
                    Diagnostic::new(
                        Lint::ReturnSiteMissing,
                        format!(
                            "return-site block {site:#x} lacks predecessor linkage to return {:#x}",
                            block.bb_addr
                        ),
                    )
                    .module(module.name())
                    .addr(site)
                    .hint("re-link: delayed return validation reads the site's predecessor set"),
                ),
                Some(_) => {}
            }
        }
    }
    push_capped(report, Lint::ReturnNeverCalled, module.name(), dead);
    push_capped(report, Lint::ReturnSiteMissing, module.name(), diags);
}

/// The terminator classification the builder stores (mirror of
/// `rev-sigtable::build`'s mapping — re-derived here on purpose).
fn is_implicit(term: TermKind) -> bool {
    !matches!(term, TermKind::JumpIndirect | TermKind::CallIndirect | TermKind::Return)
}

/// Predecessors the standard-mode builder stores: return-terminated ones,
/// plus external (cross-module) addresses it cannot classify locally.
fn stored_preds(cfg: &Cfg, block: &BlockInfo) -> Vec<u64> {
    block
        .predecessors
        .iter()
        .filter(|&&p| {
            let ids = cfg.blocks_by_bb_addr(p);
            if ids.is_empty() {
                true
            } else {
                ids.iter().any(|id| cfg.block(*id).term == TermKind::Return)
            }
        })
        .copied()
        .collect()
}

/// The digest the builder must have stored for `block` — an independent
/// re-derivation of the binding rules in `rev-sigtable::build`.
fn expected_digest(
    table: &SignatureTable,
    module: &Module,
    cfg: &Cfg,
    block: &BlockInfo,
) -> Option<u32> {
    let key = table.key();
    let body = bb_body_hash(cfg.block_bytes(module, block));
    match table.mode() {
        ValidationMode::Standard => {
            let succ = if is_implicit(block.term) {
                0
            } else {
                block.successors.first().copied().unwrap_or(0)
            };
            let pred = stored_preds(cfg, block).first().copied().unwrap_or(0);
            Some(entry_digest(&key, block.bb_addr, &body, succ, pred).0)
        }
        ValidationMode::Aggressive => {
            let s0 = block.successors.first().copied().unwrap_or(0);
            let s1 = block.successors.get(1).copied().unwrap_or(0);
            let pred = block.predecessors.first().copied().unwrap_or(0);
            Some(entry_digest(&key, block.bb_addr, &body, s0 | (s1 << 32), pred).0)
        }
        ValidationMode::CfiOnly => None,
    }
}

/// Differential table audit for one module: coverage (every block has its
/// entry, with a complete target set), orphan and duplicate entries, and
/// chain/entry decode failures.
fn check_table_against_cfg(
    module: &Module,
    cfg: &Cfg,
    table: &SignatureTable,
    report: &mut Report,
) {
    let mode = table.mode();
    let mut coverage = Vec::new();
    let mut parse_failures: HashSet<u64> = HashSet::new();

    // Expected identities, for the orphan/duplicate sweep below. Standard
    // and aggressive entries are identified by digest; CFI entries by
    // (source tag, target) pair.
    let mut expected_digests: HashSet<u32> = HashSet::new();
    let mut expected_cfi: HashSet<(u16, u64)> = HashSet::new();

    for block in cfg.blocks() {
        let lookup = table.lookup(block.bb_addr);
        if lookup.parse_failure && parse_failures.insert(block.bb_addr) {
            coverage.push(
                Diagnostic::new(
                    Lint::ChainParseFailure,
                    format!("entry chain for BB {:#x} fails to decode", block.bb_addr),
                )
                .module(module.name())
                .addr(block.bb_addr)
                .hint("the table image is corrupt; regenerate it"),
            );
        }
        match mode {
            ValidationMode::Standard | ValidationMode::Aggressive => {
                let expected = expected_digest(table, module, cfg, block).expect("hashed mode");
                expected_digests.insert(expected);
                let variant = lookup.variants.iter().find(|v| v.digest == Some(expected));
                match variant {
                    None => coverage.push(
                        Diagnostic::new(
                            Lint::CoverageMissing,
                            format!(
                                "block (leader {:#x}, terminator {:#x}) has no digest-matching entry",
                                block.start, block.bb_addr
                            ),
                        )
                        .module(module.name())
                        .addr(block.bb_addr)
                        .hint("regenerate the table; running this block will raise a violation"),
                    ),
                    Some(v) if !is_implicit(block.term) => {
                        for &s in &block.successors {
                            if !v.succs.contains(&s) {
                                coverage.push(
                                    Diagnostic::new(
                                        Lint::CoverageMissing,
                                        format!(
                                            "entry for BB {:#x} lacks successor {s:#x} in its target set",
                                            block.bb_addr
                                        ),
                                    )
                                    .module(module.name())
                                    .addr(block.bb_addr)
                                    .hint("regenerate the table with the full successor list"),
                                );
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
            ValidationMode::CfiOnly => {
                // Only computed terminators with non-empty target sets get
                // entries (the builder skips the rest).
                if !block.term.needs_target_check() || block.successors.is_empty() {
                    continue;
                }
                let tag = (block.bb_addr & 0xfff) as u16;
                for &s in &block.successors {
                    expected_cfi.insert((tag, s));
                }
                let variant = lookup.variants.iter().find(|v| v.tag == Some(tag));
                let missing: Vec<u64> = match variant {
                    None => block.successors.clone(),
                    Some(v) => {
                        block.successors.iter().copied().filter(|s| !v.succs.contains(s)).collect()
                    }
                };
                for s in missing {
                    coverage.push(
                        Diagnostic::new(
                            Lint::CoverageMissing,
                            format!("CFI entry for BB {:#x} lacks target {s:#x}", block.bb_addr),
                        )
                        .module(module.name())
                        .addr(block.bb_addr)
                        .hint("regenerate the table; this transfer will raise a violation"),
                    );
                }
            }
        }
    }
    push_capped(report, Lint::CoverageMissing, module.name(), coverage);

    // Orphans, duplicates, and undecodable entries: one decrypting sweep
    // over the raw entry region.
    let mut orphans = Vec::new();
    let mut seen_digests: HashMap<u32, usize> = HashMap::new();
    let mut seen_cfi: HashMap<(u16, u64), usize> = HashMap::new();
    for (idx, entry) in table.decode_entries().iter().enumerate() {
        let Some(entry) = entry else {
            report.push(
                Diagnostic::new(
                    Lint::ChainParseFailure,
                    format!("table entry #{idx} fails to decode"),
                )
                .module(module.name())
                .hint("the table image is corrupt; regenerate it"),
            );
            continue;
        };
        let mut digest: Option<u32> = None;
        let mut cfi: Option<(u16, u64)> = None;
        match entry {
            rev_sigtable::RawEntry::Primary { digest: d, .. }
            | rev_sigtable::RawEntry::AggressivePrimary { digest: d, .. } => digest = Some(*d),
            rev_sigtable::RawEntry::Cfi { target, src_tag, .. } => {
                cfi = Some((*src_tag, *target as u64));
            }
            rev_sigtable::RawEntry::Invalid | rev_sigtable::RawEntry::Spill { .. } => continue,
        }
        if let Some(d) = digest {
            *seen_digests.entry(d).or_insert(0) += 1;
            if !expected_digests.is_empty() && !expected_digests.contains(&d) {
                orphans.push(
                    Diagnostic::new(
                        Lint::OrphanEntry,
                        format!("entry #{idx} (digest {d:#010x}) matches no predicted block"),
                    )
                    .module(module.name())
                    .hint("stale or foreign entry; regenerate the table"),
                );
            }
        }
        if let Some(pair) = cfi {
            *seen_cfi.entry(pair).or_insert(0) += 1;
            if !expected_cfi.contains(&pair) {
                orphans.push(
                    Diagnostic::new(
                        Lint::OrphanEntry,
                        format!(
                            "CFI entry #{idx} (tag {:#x} -> {:#x}) matches no predicted transfer",
                            pair.0, pair.1
                        ),
                    )
                    .module(module.name())
                    .addr(pair.1)
                    .hint("stale or foreign entry; regenerate the table"),
                );
            }
        }
    }
    push_capped(report, Lint::OrphanEntry, module.name(), orphans);
    let mut duplicates = Vec::new();
    for (d, n) in seen_digests.into_iter().filter(|&(_, n)| n > 1) {
        duplicates.push(
            Diagnostic::new(
                Lint::DuplicateEntry,
                format!("digest {d:#010x} appears in {n} entries"),
            )
            .module(module.name())
            .hint("duplicate entries waste SC capacity; deduplicate at build time"),
        );
    }
    for ((tag, target), n) in seen_cfi.into_iter().filter(|&(_, n)| n > 1) {
        duplicates.push(
            Diagnostic::new(
                Lint::DuplicateEntry,
                format!("CFI pair (tag {tag:#x} -> {target:#x}) appears in {n} entries"),
            )
            .module(module.name())
            .addr(target)
            .hint("duplicate entries waste SC capacity; deduplicate at build time"),
        );
    }
    duplicates.sort_by(|a, b| a.message.cmp(&b.message));
    push_capped(report, Lint::DuplicateEntry, module.name(), duplicates);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_isa::{Instruction, Reg};
    use rev_prog::ModuleBuilder;

    fn clean_program() -> Program {
        let mut b = ModuleBuilder::new("m", 0x1000);
        let main = b.begin_function("main");
        let callee = b.new_label();
        b.call(callee);
        b.push(Instruction::Halt);
        b.end_function(main);
        let f = b.begin_function("f");
        b.bind(callee);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.push(Instruction::Ret);
        b.end_function(f);
        let mut pb = Program::builder();
        pb.module(b.finish().unwrap());
        pb.build()
    }

    #[test]
    fn clean_program_passes_gate_in_all_modes() {
        for mode in [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly]
        {
            let report = lint_build(clean_program(), RevConfig::paper_default().with_mode(mode));
            assert!(
                report.passes_gate(),
                "mode {mode}: unexpected errors:\n{}",
                report.render_text()
            );
        }
    }

    #[test]
    fn never_called_function_warns() {
        let mut b = ModuleBuilder::new("m", 0x1000);
        let main = b.begin_function("main");
        b.push(Instruction::Halt);
        b.end_function(main);
        let f = b.begin_function("dead");
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.push(Instruction::Ret);
        b.end_function(f);
        let mut pb = Program::builder();
        pb.module(b.finish().unwrap());
        let report = lint_build(pb.build(), RevConfig::paper_default());
        assert!(report.passes_gate(), "{}", report.render_text());
        assert!(!report.with_lint(Lint::ReturnNeverCalled).is_empty());
    }

    #[test]
    fn missing_table_is_an_error() {
        let program = clean_program();
        let report = lint_tables(&program, &[], BbLimits::default());
        assert!(!report.passes_gate());
        assert!(!report.with_lint(Lint::ModuleUntabled).is_empty());
    }

    #[test]
    fn unparseable_program_reports_analysis_failed() {
        // A raw indirect jump with no recorded target set fails analysis.
        let mut b = ModuleBuilder::new("m", 0x1000);
        b.push(Instruction::JmpInd { rt: Reg::R1 });
        b.push(Instruction::Halt);
        let mut pb = Program::builder();
        pb.module(b.finish().unwrap());
        let report = lint_build(pb.build(), RevConfig::paper_default());
        assert!(!report.passes_gate());
        assert!(!report.with_lint(Lint::AnalysisFailed).is_empty());
    }
}
