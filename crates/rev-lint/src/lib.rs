//! # rev-lint — static whole-program verification for REV
//!
//! REV validates executions against signature tables emitted by a trusted
//! toolchain. That trust is only as good as the table generator: a table
//! that misses a reachable block, disagrees with the splitting rule, or
//! maps an address to the wrong module turns a *correct* run into a
//! violation (or worse, fails open). `rev-lint` is the static analysis
//! pass that audits a guest [`rev_prog::Program`] together with its built
//! [`rev_sigtable::SignatureTable`]s before anything is simulated.
//!
//! The checks, grouped by lint-code family:
//!
//! - **Coverage (REV-L00x)** — every statically reachable basic block has
//!   a digest-matching table entry; orphan and duplicate entries flagged.
//! - **Splitting (REV-L01x)** — the artificial split rule
//!   ([`rev_prog::BbLimits`]) re-derived and diffed against the CFG.
//! - **SAG sanity (REV-L02x)** — overlapping base/limit ranges, tables
//!   resolving to no module, modules without tables, unreachable modules.
//! - **Indirect flow (REV-L03x)** — indirect branches with empty target
//!   sets or targets escaping every module.
//! - **Returns (REV-L04x)** — delayed return validation needs the
//!   return-site block's predecessor linkage; missing sites flagged.
//! - **Memory hazards (REV-L05x)** — code mapped in writable segments
//!   (self-modifying / overlapping code defeats hash binding).
//! - **Differential oracle (REV-L06x)** — runs the program on the
//!   simulated core and asserts every dynamically discovered
//!   (leader, terminator, hash) triple was statically predicted.
//! - **Decode (REV-L07x)** — entry chains that fail to parse.
//! - **Security audit (REV-A1xx)** — the [`audit`] module's
//!   protection-coverage matrix, digest-collision classes and
//!   detection-latency bounds per validation mode, cross-checked by the
//!   dynamic oracle in `rev-chaos` (violations are REV-A000).
//!
//! Diagnostics are structured ([`Diagnostic`]) and render as human text or
//! JSON. The severity gate ([`Report::passes_gate`]) fails on any `error`;
//! bench drivers consult it via `--preflight`.

pub mod audit;
pub mod diag;
pub mod lint;
pub mod oracle;

pub use audit::{
    audit_program, AuditOutcome, CollisionStats, CoverageMatrix, LatencyBounds, ModeAudit,
    AUDIT_MODES,
};
pub use diag::{Diagnostic, Lint, Report, Severity};
pub use lint::{lint_build, lint_tables};
pub use oracle::{run_oracle, static_triples, OracleOutcome};
