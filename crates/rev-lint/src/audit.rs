//! `rev-audit` — static protection-coverage and detection-latency bound
//! analysis over the CFG + built signature tables (the `REV-A` family).
//!
//! Where the `REV-L` lints ask *"is the table consistent with the
//! program?"*, the audit asks the paper's security questions and answers
//! them statically, per validation mode:
//!
//! 1. **Digest-collision classes** — equivalence classes of table
//!    entries the validator cannot tell apart (standard mode: truncated
//!    digest + bound successor; aggressive mode additionally the 16-bit
//!    BB tag; CFI-only mode: the 12-bit source tag). Entries sharing a
//!    class are interchangeable to an attacker.
//! 2. **Per-edge protection classification** — every static CFG edge is
//!    labelled with the checks guarding it (body hash, target check,
//!    return latch, store containment) under each mode, yielding the
//!    per-profile × per-mode coverage matrix behind Table 1's claims.
//! 3. **Worst-case detection-latency bounds** — a static upper bound, in
//!    committed instructions, between a fault striking a block's
//!    validation state and the kill verdict, from the in-flight window
//!    (ROB), the block's own commit run, and return-latch deferral.
//!
//! Every quantity is closed dynamically by the differential oracle in
//! `rev-chaos` (chaos-measured latencies must stay ≤ the bound; attack
//! outcomes must match the coverage prediction), whose violations
//! surface as `REV-A000`.

use crate::diag::{Diagnostic, Lint, Report};
use rev_core::{analyze_and_link, CpuConfig, RevConfig, RevSimulator};
use rev_prog::{BlockInfo, Cfg, Program, TermKind};
use rev_sigtable::{RawEntry, SignatureTable, ValidationMode};
use rev_trace::MetricRegistry;
use std::collections::BTreeMap;

/// How many collision-class findings to report per module before folding
/// the remainder into one summarizing diagnostic.
const PER_AUDIT_CAP: usize = 8;

/// Guard-set bit flags for [`CoverageMatrix`] edge classification.
pub mod guard {
    /// The source block's bytes are hashed by the CHG and bound into a
    /// keyed digest — any byte (including an embedded static target)
    /// that changes kills the block at commit.
    pub const BODY_HASH: u8 = 1 << 0;
    /// The taken target is compared against the entry's bound successor
    /// set at commit (gate 4).
    pub const TARGET_CHECK: u8 = 1 << 1;
    /// The return target is validated one block late through the return
    /// latch against the successor block's predecessor set (gate 5).
    pub const RETURN_LATCH: u8 = 1 << 2;
    /// Stores from the source block are quarantined (deferred-store
    /// buffer or shadow pages) until the block validates.
    pub const STORE_CONTAIN: u8 = 1 << 3;
}

/// The audited modes, in report order.
pub const AUDIT_MODES: [ValidationMode; 3] =
    [ValidationMode::Standard, ValidationMode::Aggressive, ValidationMode::CfiOnly];

/// Short metric-namespace label for a mode (`audit.{label}.*`).
pub fn mode_label(mode: ValidationMode) -> &'static str {
    match mode {
        ValidationMode::Standard => "std",
        ValidationMode::Aggressive => "aggr",
        ValidationMode::CfiOnly => "cfi",
    }
}

/// Per-mode protection-coverage matrix: how many static CFG edges each
/// check class guards, and how many no check guards at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageMatrix {
    /// Total static CFG edges (one per block successor).
    pub edges: u64,
    /// Edges whose source block's bytes are hashed.
    pub body_hash: u64,
    /// Edges whose taken target is checked against the entry.
    pub target_check: u64,
    /// Edges validated one block late through the return latch.
    pub return_latch: u64,
    /// Edges whose source block's stores are quarantined until
    /// validation.
    pub store_contain: u64,
    /// Edges carrying **no** check — the attack surface.
    pub unguarded: u64,
    /// Return edges (subset of `edges`).
    pub return_edges: u64,
    /// Return edges carrying at least one check.
    pub return_guarded: u64,
    /// Computed (indirect jump/call) edges.
    pub computed_edges: u64,
    /// Computed edges carrying at least one check.
    pub computed_guarded: u64,
}

/// Per-mode digest-collision statistics over the decoded table entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollisionStats {
    /// Identity-bearing entries examined (primaries; CFI transfers).
    pub entries: u64,
    /// Distinct identity classes.
    pub classes: u64,
    /// Classes holding two or more entries.
    pub colliding: u64,
    /// Size of the largest class.
    pub max_class: u64,
    /// Entries an attacker could swap for a classmate
    /// (`entries - classes`).
    pub substitutable: u64,
}

/// Per-mode worst-case detection-latency bound, in committed
/// instructions between a fault strike and the kill verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBounds {
    /// Commits from older in-flight instructions between the strike and
    /// the faulted block's own terminator commit (ROB capacity).
    pub inflight: u64,
    /// Longest block body (instructions incl. terminator) — commits of
    /// the faulted block itself.
    pub max_block: u64,
    /// Longest return-latch deferral: the max successor-block length
    /// over all return sites (standard mode's delayed validation).
    pub max_latch_defer: u64,
    /// The bound: `inflight + max over blocks of (len + latch defer)` —
    /// the longest ≤ 2-block detection path through the CFG.
    pub bound: u64,
}

/// One mode's complete audit.
#[derive(Debug, Clone, Copy)]
pub struct ModeAudit {
    /// The audited validation mode.
    pub mode: ValidationMode,
    /// Edge protection coverage.
    pub coverage: CoverageMatrix,
    /// Entry collision classes.
    pub collision: CollisionStats,
    /// Detection-latency bound.
    pub latency: LatencyBounds,
}

/// The full audit of one program: findings plus the three per-mode
/// matrices behind them.
#[derive(Debug)]
pub struct AuditOutcome {
    /// REV-A findings (info/warning summaries; errors refute a claim).
    pub report: Report,
    /// Per-mode audits, in [`AUDIT_MODES`] order.
    pub modes: Vec<ModeAudit>,
}

impl AuditOutcome {
    /// The audit of `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` was not audited (all three always are).
    pub fn mode(&self, mode: ValidationMode) -> &ModeAudit {
        self.modes.iter().find(|m| m.mode == mode).expect("all modes audited")
    }

    /// Exports the matrices into the `audit.*` metric namespace
    /// (documented in `docs/METRICS.md`) — the deterministic JSON
    /// section merged into `BENCH_rev.json` and
    /// `baselines/audit_quick.json`.
    pub fn metrics(&self) -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        for ma in &self.modes {
            let m = mode_label(ma.mode);
            let cov = &ma.coverage;
            reg.counter(&format!("audit.{m}.edges"), cov.edges);
            reg.counter(&format!("audit.{m}.edges.body_hash"), cov.body_hash);
            reg.counter(&format!("audit.{m}.edges.target_check"), cov.target_check);
            reg.counter(&format!("audit.{m}.edges.return_latch"), cov.return_latch);
            reg.counter(&format!("audit.{m}.edges.store_contain"), cov.store_contain);
            reg.counter(&format!("audit.{m}.edges.unguarded"), cov.unguarded);
            let col = &ma.collision;
            reg.counter(&format!("audit.{m}.entries"), col.entries);
            reg.counter(&format!("audit.{m}.collision.classes"), col.classes);
            reg.counter(&format!("audit.{m}.collision.colliding"), col.colliding);
            reg.counter(&format!("audit.{m}.collision.max_class"), col.max_class);
            reg.counter(&format!("audit.{m}.collision.substitutable"), col.substitutable);
            let lat = &ma.latency;
            reg.counter(&format!("audit.{m}.latency.inflight"), lat.inflight);
            reg.counter(&format!("audit.{m}.latency.max_block"), lat.max_block);
            reg.counter(&format!("audit.{m}.latency.latch_defer"), lat.max_latch_defer);
            reg.counter(&format!("audit.{m}.latency.bound"), lat.bound);
        }
        reg
    }
}

/// The guard set protecting every outgoing edge of `block` under `mode`
/// — a static restatement of the commit gates in
/// `rev-core::rev_monitor` (gates 3–5 and the containment policy).
pub fn edge_guards(config: &RevConfig, mode: ValidationMode, block: &BlockInfo) -> u8 {
    let computed = matches!(block.term, TermKind::JumpIndirect | TermKind::CallIndirect);
    let ret = block.term == TermKind::Return;
    match mode {
        ValidationMode::Standard => {
            let mut g = guard::BODY_HASH;
            if computed || (ret && config.naive_return_validation) {
                g |= guard::TARGET_CHECK;
            }
            if ret && !config.naive_return_validation {
                g |= guard::RETURN_LATCH;
            }
            if block.num_stores > 0 {
                g |= guard::STORE_CONTAIN;
            }
            g
        }
        ValidationMode::Aggressive => {
            // Every branch target is bound into the entry and verified
            // inline; returns included (no latch deferral).
            let mut g = guard::BODY_HASH | guard::TARGET_CHECK;
            if block.num_stores > 0 {
                g |= guard::STORE_CONTAIN;
            }
            g
        }
        ValidationMode::CfiOnly => {
            // No hashing, no deferral: only computed transfers (and
            // returns, which carry a computed target) are checked.
            if computed || ret {
                guard::TARGET_CHECK
            } else {
                0
            }
        }
    }
}

/// Accumulates the per-edge coverage matrix for one module's CFG.
fn coverage_for(config: &RevConfig, mode: ValidationMode, cfg: &Cfg, acc: &mut CoverageMatrix) {
    for block in cfg.blocks() {
        let g = edge_guards(config, mode, block);
        let n = block.successors.len() as u64;
        if n == 0 {
            continue;
        }
        acc.edges += n;
        if g & guard::BODY_HASH != 0 {
            acc.body_hash += n;
        }
        if g & guard::TARGET_CHECK != 0 {
            acc.target_check += n;
        }
        if g & guard::RETURN_LATCH != 0 {
            acc.return_latch += n;
        }
        if g & guard::STORE_CONTAIN != 0 {
            acc.store_contain += n;
        }
        if g == 0 {
            acc.unguarded += n;
        }
        if block.term == TermKind::Return {
            acc.return_edges += n;
            if g != 0 {
                acc.return_guarded += n;
            }
        }
        if matches!(block.term, TermKind::JumpIndirect | TermKind::CallIndirect) {
            acc.computed_edges += n;
            if g != 0 {
                acc.computed_guarded += n;
            }
        }
    }
}

/// The identity a mode's validator actually compares when matching an
/// entry, for classing decoded entries into interchangeability classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EntryIdentity {
    /// Standard: truncated digest + bound primary successor (the gate 3
    /// scan key plus the gate 4 successor signature).
    Standard(u32, u32),
    /// Aggressive: digest + both inline successors + the 16-bit BB tag
    /// chain discriminator.
    Aggressive(u32, [u32; 2], u16),
    /// CFI-only: the 12-bit source tag is the *only* source identity —
    /// every entry sharing a tag is accepted for every aliased source.
    CfiTag(u16),
}

/// Classes the decoded entries of one table; returns per-class counts
/// keyed by identity.
fn entry_classes(table: &SignatureTable) -> BTreeMap<EntryIdentity, u64> {
    let mut classes: BTreeMap<EntryIdentity, u64> = BTreeMap::new();
    for entry in table.decode_entries().iter().flatten() {
        let id = match entry {
            RawEntry::Primary { digest, succ, .. } => EntryIdentity::Standard(*digest, *succ),
            RawEntry::AggressivePrimary { digest, succs, bb_tag, .. } => {
                EntryIdentity::Aggressive(*digest, *succs, *bb_tag)
            }
            RawEntry::Cfi { src_tag, .. } => EntryIdentity::CfiTag(*src_tag),
            RawEntry::Invalid | RawEntry::Spill { .. } => continue,
        };
        *classes.entry(id).or_insert(0) += 1;
    }
    classes
}

/// Folds one table's classes into the mode's [`CollisionStats`] and
/// emits per-class findings (collisions in hashed modes are truncation
/// collisions — warnings; CFI tag aliasing is the mode's designed
/// weakness — a single summarizing info finding).
fn collision_for(
    table: &SignatureTable,
    mode: ValidationMode,
    acc: &mut CollisionStats,
    report: &mut Report,
) {
    let classes = entry_classes(table);
    let mut colliding = Vec::new();
    let mut aliased_entries = 0u64;
    for (id, n) in &classes {
        acc.entries += n;
        acc.classes += 1;
        acc.max_class = acc.max_class.max(*n);
        if *n > 1 {
            acc.colliding += 1;
            acc.substitutable += n - 1;
            match id {
                EntryIdentity::Standard(digest, succ) => colliding.push(
                    Diagnostic::new(
                        Lint::AuditDigestCollision,
                        format!(
                            "{n} entries share digest {digest:#010x} / successor {succ:#x}: \
                             interchangeable under standard validation"
                        ),
                    )
                    .module(table.module_name())
                    .hint("aggressive mode's BB tag discriminates such classes"),
                ),
                EntryIdentity::Aggressive(digest, _, tag) => colliding.push(
                    Diagnostic::new(
                        Lint::AuditDigestCollision,
                        format!(
                            "{n} entries share digest {digest:#010x} / tag {tag:#06x}: \
                             interchangeable even under aggressive validation"
                        ),
                    )
                    .module(table.module_name()),
                ),
                EntryIdentity::CfiTag(_) => aliased_entries += n,
            }
        }
    }
    for d in colliding.into_iter().take(PER_AUDIT_CAP) {
        report.push(d);
    }
    if mode == ValidationMode::CfiOnly && acc.colliding > 0 {
        report.push(
            Diagnostic::new(
                Lint::AuditTagAlias,
                format!(
                    "{} source-tag class(es) alias {} entries (12-bit tags): aliased \
                     sources accept each other's target sets",
                    acc.colliding, aliased_entries
                ),
            )
            .module(table.module_name())
            .hint("expected for CFI-only; hashed modes bind the full BB address"),
        );
    }
}

/// Computes the per-mode detection-latency bound by the longest ≤ 2-block
/// path: the faulted block's own commit run plus (standard mode only) the
/// return latch's one-block deferral into its longest return site.
///
/// Stalls never widen the window: signature-cache misses, table walks and
/// the bounded sigline retry all *stall* the terminator's commit, so no
/// instruction commits while they run; superblock memo replay re-executes
/// the same gates at the same commit point (and is bypassed entirely
/// while a fault campaign is armed).
fn latency_for(config: &RevConfig, mode: ValidationMode, cfgs: &[Cfg]) -> LatencyBounds {
    let inflight = CpuConfig::paper_default().rob_size as u64;
    let block_len_at = |addr: u64| -> u64 {
        cfgs.iter().find_map(|c| c.block_by_start(addr)).map_or(0, |b| b.len() as u64)
    };
    let mut max_block = 0u64;
    let mut max_latch = 0u64;
    let mut worst_path = 0u64;
    for cfg in cfgs {
        for block in cfg.blocks() {
            let len = block.len() as u64;
            max_block = max_block.max(len);
            let latch = if mode == ValidationMode::Standard
                && !config.naive_return_validation
                && block.term == TermKind::Return
            {
                block.successors.iter().map(|&s| block_len_at(s)).max().unwrap_or(0)
            } else {
                0
            };
            max_latch = max_latch.max(latch);
            worst_path = worst_path.max(len + latch);
        }
    }
    LatencyBounds { inflight, max_block, max_latch_defer: max_latch, bound: inflight + worst_path }
}

/// Runs the full audit: builds each mode's tables exactly as a run would
/// (via the simulator's trusted linker), computes the three analyses and
/// returns the findings plus the per-mode matrices.
///
/// A program that fails static analysis or table generation reports
/// [`Lint::AnalysisFailed`] and an empty mode list.
pub fn audit_program(program: &Program, base: &RevConfig) -> AuditOutcome {
    let mut report = Report::new();
    let cfgs = match analyze_and_link(program, base.bb_limits) {
        Ok(cfgs) => cfgs,
        Err(e) => {
            report.push(Diagnostic::new(
                Lint::AnalysisFailed,
                format!("audit: static analysis failed: {e}"),
            ));
            return AuditOutcome { report, modes: Vec::new() };
        }
    };
    let mut modes = Vec::with_capacity(AUDIT_MODES.len());
    for mode in AUDIT_MODES {
        let config = base.with_mode(mode);
        let sim = match RevSimulator::new(program.clone(), config) {
            Ok(sim) => sim,
            Err(e) => {
                report.push(Diagnostic::new(
                    Lint::AnalysisFailed,
                    format!("audit: {mode} table build failed: {e}"),
                ));
                continue;
            }
        };
        let mut coverage = CoverageMatrix::default();
        let mut collision = CollisionStats::default();
        for cfg in &cfgs {
            coverage_for(&config, mode, cfg, &mut coverage);
        }
        for table in sim.monitor().sag().tables() {
            collision_for(table, mode, &mut collision, &mut report);
        }
        let latency = latency_for(&config, mode, &cfgs);

        // Refutation tripwire: a hashed mode must leave no edge
        // unguarded — every block is hashed, so an unguarded edge means
        // the classification (or a new terminator kind) broke.
        if mode.uses_hashes() && coverage.unguarded > 0 {
            report.push(Diagnostic::new(
                Lint::AuditUnguardedEdge,
                format!(
                    "{} of {} edge(s) carry no check under {mode} validation",
                    coverage.unguarded, coverage.edges
                ),
            ));
        }
        if mode == ValidationMode::CfiOnly && coverage.unguarded > 0 {
            report.push(
                Diagnostic::new(
                    Lint::AuditCfiUnguarded,
                    format!(
                        "{} of {} edge(s) carry no check under cfi-only validation \
                         (implicit transfers and all code bytes are unprotected)",
                        coverage.unguarded, coverage.edges
                    ),
                )
                .hint("this is CFI's designed trade-off; see the coverage matrix"),
            );
        }
        report.push(Diagnostic::new(
            Lint::AuditLatencyBound,
            format!(
                "{mode}: worst-case detection latency {} commits \
                 (in-flight {} + worst block path {}; max block {}, max latch defer {})",
                latency.bound,
                latency.inflight,
                latency.bound - latency.inflight,
                latency.max_block,
                latency.max_latch_defer
            ),
        ));
        modes.push(ModeAudit { mode, coverage, collision, latency });
    }

    // Quantify the standard -> aggressive refinement (tentpole claim:
    // aggressive shrinks the interchangeability classes).
    if let (Some(std_a), Some(aggr)) = (
        modes.iter().find(|m| m.mode == ValidationMode::Standard),
        modes.iter().find(|m| m.mode == ValidationMode::Aggressive),
    ) {
        report.push(Diagnostic::new(
            Lint::AuditRefinement,
            format!(
                "aggressive refines standard identities: colliding classes {} -> {}, \
                 substitutable entries {} -> {}",
                std_a.collision.colliding,
                aggr.collision.colliding,
                std_a.collision.substitutable,
                aggr.collision.substitutable
            ),
        ));
    }
    report.sort();
    AuditOutcome { report, modes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_isa::{Instruction, Reg};
    use rev_prog::ModuleBuilder;

    fn small_program() -> Program {
        let mut b = ModuleBuilder::new("m", 0x1000);
        let main = b.begin_function("main");
        let callee = b.new_label();
        b.call(callee);
        b.push(Instruction::Halt);
        b.end_function(main);
        let f = b.begin_function("f");
        b.bind(callee);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.push(Instruction::Ret);
        b.end_function(f);
        let mut pb = Program::builder();
        pb.module(b.finish().unwrap());
        pb.build()
    }

    #[test]
    fn hashed_modes_leave_no_edge_unguarded() {
        let out = audit_program(&small_program(), &RevConfig::paper_default());
        assert!(out.report.passes_gate(), "{}", out.report.render_text());
        for mode in [ValidationMode::Standard, ValidationMode::Aggressive] {
            let ma = out.mode(mode);
            assert_eq!(ma.coverage.unguarded, 0, "{mode}");
            assert_eq!(ma.coverage.body_hash, ma.coverage.edges, "{mode}: every edge hashed");
        }
    }

    #[test]
    fn cfi_mode_leaves_implicit_edges_unguarded() {
        let out = audit_program(&small_program(), &RevConfig::paper_default());
        let cfi = out.mode(ValidationMode::CfiOnly);
        assert!(cfi.coverage.unguarded > 0, "call/fallthrough edges carry no CFI check");
        assert_eq!(cfi.coverage.body_hash, 0);
        // Return edges stay guarded: returns carry a computed target.
        assert_eq!(cfi.coverage.return_guarded, cfi.coverage.return_edges);
        assert!(!out.report.with_lint(Lint::AuditCfiUnguarded).is_empty());
    }

    #[test]
    fn return_edges_latched_in_standard_checked_in_aggressive() {
        let out = audit_program(&small_program(), &RevConfig::paper_default());
        let std_a = out.mode(ValidationMode::Standard);
        assert!(std_a.coverage.return_latch > 0);
        let aggr = out.mode(ValidationMode::Aggressive);
        assert_eq!(aggr.coverage.return_latch, 0, "aggressive validates returns inline");
        assert_eq!(aggr.coverage.target_check, aggr.coverage.edges);
    }

    #[test]
    fn latency_bound_covers_rob_plus_worst_path() {
        let out = audit_program(&small_program(), &RevConfig::paper_default());
        let lat = out.mode(ValidationMode::Standard).latency;
        assert_eq!(lat.inflight, CpuConfig::paper_default().rob_size as u64);
        assert!(lat.bound >= lat.inflight + lat.max_block);
        // Aggressive has no latch deferral, so its bound never exceeds
        // standard's.
        let aggr = out.mode(ValidationMode::Aggressive).latency;
        assert!(aggr.bound <= lat.bound);
        assert_eq!(aggr.max_latch_defer, 0);
    }

    #[test]
    fn metrics_are_deterministic_and_namespaced() {
        let a = audit_program(&small_program(), &RevConfig::paper_default()).metrics();
        let b = audit_program(&small_program(), &RevConfig::paper_default()).metrics();
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert!(a.names().all(|n| n.starts_with("audit.")));
        assert!(a.get("audit.std.latency.bound").is_some());
        assert!(a.get("audit.cfi.edges.unguarded").is_some());
    }
}
