//! The differential CFG oracle: static prediction vs. dynamic discovery.
//!
//! The static side enumerates every (leader, terminator, body-hash) triple
//! the analysis predicts, via the same [`rev_core::analyze_and_link`] pass
//! the table generator consumes. The dynamic side runs the program on the
//! simulated REV core with block-trace recording switched on, collecting
//! the triples the hardware front end actually discovers and validates.
//!
//! The guarantee being checked: **dynamic ⊆ static**. A dynamically
//! discovered block absent from the static set is a lint bug (the table
//! generator would have missed it too — the run would raise a spurious
//! violation), reported at `error` severity. The reverse direction,
//! static-minus-dynamic, is merely cold code and reported as `info`.

use crate::diag::{Diagnostic, Lint, Report};
use rev_core::{analyze_and_link, DynBlockTriple, RevSimulator, SimBuildError};
use rev_crypto::bb_body_hash;
use rev_prog::{BbLimits, Program};
use rev_sigtable::ValidationMode;
use std::collections::BTreeSet;

/// How many dynamic-not-static triples to report individually before
/// folding the rest into one summarizing diagnostic.
const PER_RUN_CAP: usize = 16;

/// The oracle's result: the findings plus the set sizes behind them.
#[derive(Debug)]
pub struct OracleOutcome {
    /// Findings (empty but for cold-code info when the oracle passes).
    pub report: Report,
    /// Distinct (leader, terminator, hash) triples discovered dynamically.
    pub dynamic_blocks: usize,
    /// Distinct triples predicted statically.
    pub static_blocks: usize,
    /// Statically predicted triples that never executed.
    pub cold_blocks: usize,
}

impl OracleOutcome {
    /// `true` when every dynamic triple was statically predicted.
    pub fn dynamic_subset_of_static(&self) -> bool {
        self.report.with_lint(Lint::OracleDynamicNotStatic).is_empty()
    }
}

/// Statically predicts every (leader, terminator, body-hash) triple for
/// `program` — one per CFG block, hashed exactly as the CHG will hash it.
///
/// # Errors
///
/// Returns [`SimBuildError`] if a module fails static analysis.
pub fn static_triples(
    program: &Program,
    limits: BbLimits,
) -> Result<BTreeSet<DynBlockTriple>, SimBuildError> {
    let cfgs = analyze_and_link(program, limits)?;
    let mut set = BTreeSet::new();
    for (module, cfg) in program.modules().iter().zip(&cfgs) {
        for block in cfg.blocks() {
            let body = bb_body_hash(cfg.block_bytes(module, block));
            set.insert((block.start, block.bb_addr, body.0));
        }
    }
    Ok(set)
}

/// Runs the differential oracle on an already-built simulator: switches on
/// block-trace recording, commits up to `instructions` instructions, and
/// diffs the discovered triples against the static prediction.
///
/// Only the hashed modes (standard, aggressive) record body hashes; for a
/// CFI-only simulator the oracle reports nothing (the CFG agreement it
/// certifies is a property of the hashed tables).
pub fn run_oracle(sim: &mut RevSimulator, instructions: u64) -> OracleOutcome {
    let mut report = Report::new();
    if sim.config().mode == ValidationMode::CfiOnly {
        return OracleOutcome { report, dynamic_blocks: 0, static_blocks: 0, cold_blocks: 0 };
    }
    let static_set = match static_triples(sim.program(), sim.config().bb_limits) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::new(
                Lint::AnalysisFailed,
                format!("static prediction failed: {e}"),
            ));
            return OracleOutcome { report, dynamic_blocks: 0, static_blocks: 0, cold_blocks: 0 };
        }
    };

    sim.monitor_mut().enable_block_trace();
    let run = sim.run(instructions);
    if let Some(v) = run.rev.violation {
        report.push(
            Diagnostic::new(
                Lint::OracleDynamicNotStatic,
                format!("oracle run raised a violation: {v}"),
            )
            .hint("a clean program must validate end to end; the table or CFG is wrong"),
        );
    }
    let dynamic: BTreeSet<DynBlockTriple> =
        sim.monitor().block_trace().cloned().unwrap_or_default();

    let mut escaped = 0usize;
    for triple in &dynamic {
        if static_set.contains(triple) {
            continue;
        }
        escaped += 1;
        if escaped <= PER_RUN_CAP {
            let (leader, terminator, _) = *triple;
            report.push(
                Diagnostic::new(
                    Lint::OracleDynamicNotStatic,
                    format!(
                        "dynamic block (leader {leader:#x}, terminator {terminator:#x}) was not statically predicted"
                    ),
                )
                .addr(terminator)
                .hint("block discovery and the hardware front end disagree; fix the analysis"),
            );
        }
    }
    if escaped > PER_RUN_CAP {
        report.push(Diagnostic::new(
            Lint::OracleDynamicNotStatic,
            format!("... and {} more unpredicted dynamic block(s)", escaped - PER_RUN_CAP),
        ));
    }

    let cold = static_set.difference(&dynamic).count();
    if cold > 0 {
        report.push(
            Diagnostic::new(
                Lint::OracleColdCode,
                format!(
                    "{cold} of {} statically predicted block(s) never executed (cold code)",
                    static_set.len()
                ),
            )
            .hint("expected for short runs; raise --instructions to shrink"),
        );
    }
    report.sort();
    OracleOutcome {
        report,
        dynamic_blocks: dynamic.len(),
        static_blocks: static_set.len(),
        cold_blocks: cold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rev_core::RevConfig;
    use rev_isa::{BranchCond, Instruction, Reg};
    use rev_prog::ModuleBuilder;

    fn looping_program() -> Program {
        let mut b = ModuleBuilder::new("m", 0x1000);
        let f = b.begin_function("main");
        let top = b.new_label();
        b.push(Instruction::AddI { rd: Reg::R2, rs: Reg::R0, imm: 50 });
        b.bind(top);
        b.push(Instruction::AddI { rd: Reg::R1, rs: Reg::R1, imm: 1 });
        b.branch(BranchCond::Lt, Reg::R1, Reg::R2, top);
        b.push(Instruction::Halt);
        b.end_function(f);
        let mut pb = Program::builder();
        pb.module(b.finish().unwrap());
        pb.build()
    }

    #[test]
    fn dynamic_is_subset_of_static_on_clean_program() {
        let mut sim = RevSimulator::new(looping_program(), RevConfig::paper_default()).unwrap();
        let outcome = run_oracle(&mut sim, 10_000);
        assert!(outcome.dynamic_blocks > 0, "the loop must discover blocks");
        assert!(
            outcome.dynamic_subset_of_static(),
            "unexpected escapes:\n{}",
            outcome.report.render_text()
        );
        assert!(outcome.report.passes_gate());
        assert_eq!(
            outcome.static_blocks,
            outcome.dynamic_blocks + outcome.cold_blocks,
            "set arithmetic must be consistent"
        );
    }

    #[test]
    fn cfi_mode_is_a_no_op() {
        let config = RevConfig::paper_default().with_mode(ValidationMode::CfiOnly);
        let mut sim = RevSimulator::new(looping_program(), config).unwrap();
        let outcome = run_oracle(&mut sim, 5_000);
        assert_eq!(outcome.dynamic_blocks, 0);
        assert!(outcome.report.diagnostics.is_empty());
    }
}
