//! Structured lint diagnostics: severities, the lint catalogue, and the
//! report container with its human-text and JSON renderers.
//!
//! Every finding carries a stable code (`REV-Lxxx`) so CI gates and tests
//! can match on codes instead of message strings. The JSON renderer is
//! hand-rolled (the build environment is offline; no serde) but emits a
//! stable, machine-parseable shape:
//!
//! ```json
//! {"diagnostics":[{"severity":"error","code":"REV-L001",...}],
//!  "summary":{"error":1,"warning":0,"info":0}}
//! ```

use std::fmt;

/// Diagnostic severity, ordered so `Error` compares greatest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational finding (e.g. cold code); never fails a gate.
    Info,
    /// Suspicious but not provably unsound (e.g. orphan entries).
    Warning,
    /// The table or program is unsound: simulation must be refused.
    Error,
}

impl Severity {
    /// Lower-case name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The lint catalogue. Codes are stable; see DESIGN.md "Static validation
/// (rev-lint)" for the prose catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// REV-L000: static analysis or table generation itself failed.
    AnalysisFailed,
    /// REV-L001: a statically reachable block has no digest-matching
    /// (or tag/target-matching, in CFI mode) table entry.
    CoverageMissing,
    /// REV-L002: a table entry matches no statically predicted block.
    OrphanEntry,
    /// REV-L003: two table entries carry the same identity.
    DuplicateEntry,
    /// REV-L010: a block exceeds the artificial-split limits.
    SplitLimitExceeded,
    /// REV-L011: a natural terminator sits in a block's interior.
    SplitInteriorTerminator,
    /// REV-L020: two tables' module base/limit ranges overlap.
    SagOverlap,
    /// REV-L021: a table's range matches no loaded module.
    SagNoModule,
    /// REV-L022: a module's code range is covered by no table.
    ModuleUntabled,
    /// REV-L023: a module is statically unreachable from the entry.
    ModuleUnreachable,
    /// REV-L030: a computed jump/call has an empty target set.
    IndirectEmptyTargets,
    /// REV-L031: a computed target escapes every module (or lands off a
    /// block boundary).
    IndirectEscapingTarget,
    /// REV-L040: a return's latched-validation successor block (or its
    /// predecessor linkage) is missing.
    ReturnSiteMissing,
    /// REV-L041: a return-terminated block has no return sites (the
    /// function is never called).
    ReturnNeverCalled,
    /// REV-L050: a code range intersects writable memory (self-modifying
    /// or overlapping-code hazard).
    CodeInWritableMemory,
    /// REV-L070: a table entry (or chain) fails to decode.
    ChainParseFailure,
    /// REV-L060: a dynamically discovered block was not statically
    /// predicted — the differential oracle's failure case.
    OracleDynamicNotStatic,
    /// REV-L061: statically predicted blocks never executed (cold code).
    OracleColdCode,
    /// REV-A000: the differential dynamic oracle contradicted a static
    /// audit claim (measured latency above the bound, or an attack
    /// outcome disagreeing with the coverage prediction).
    AuditOracleViolation,
    /// REV-A101: table entries share a truncated-digest identity and are
    /// interchangeable to an attacker under the audited mode.
    AuditDigestCollision,
    /// REV-A102: CFI-only source tags alias (12-bit tag space), so
    /// aliased sources accept each other's target sets.
    AuditTagAlias,
    /// REV-A110: quantified standard → aggressive identity refinement
    /// (how much the BB tag shrinks the collision classes).
    AuditRefinement,
    /// REV-A120: an edge carries no check under a *hashed* mode — a
    /// refuted coverage claim.
    AuditUnguardedEdge,
    /// REV-A121: edges carry no check under CFI-only mode (the designed
    /// trade-off, reported for the coverage matrix).
    AuditCfiUnguarded,
    /// REV-A140: the per-mode worst-case detection-latency bound.
    AuditLatencyBound,
}

impl Lint {
    /// Every catalogued lint, in code order.
    pub const ALL: [Lint; 25] = [
        Lint::AnalysisFailed,
        Lint::CoverageMissing,
        Lint::OrphanEntry,
        Lint::DuplicateEntry,
        Lint::SplitLimitExceeded,
        Lint::SplitInteriorTerminator,
        Lint::SagOverlap,
        Lint::SagNoModule,
        Lint::ModuleUntabled,
        Lint::ModuleUnreachable,
        Lint::IndirectEmptyTargets,
        Lint::IndirectEscapingTarget,
        Lint::ReturnSiteMissing,
        Lint::ReturnNeverCalled,
        Lint::CodeInWritableMemory,
        Lint::OracleDynamicNotStatic,
        Lint::OracleColdCode,
        Lint::ChainParseFailure,
        Lint::AuditOracleViolation,
        Lint::AuditDigestCollision,
        Lint::AuditTagAlias,
        Lint::AuditRefinement,
        Lint::AuditUnguardedEdge,
        Lint::AuditCfiUnguarded,
        Lint::AuditLatencyBound,
    ];

    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            Lint::AnalysisFailed => "REV-L000",
            Lint::CoverageMissing => "REV-L001",
            Lint::OrphanEntry => "REV-L002",
            Lint::DuplicateEntry => "REV-L003",
            Lint::SplitLimitExceeded => "REV-L010",
            Lint::SplitInteriorTerminator => "REV-L011",
            Lint::SagOverlap => "REV-L020",
            Lint::SagNoModule => "REV-L021",
            Lint::ModuleUntabled => "REV-L022",
            Lint::ModuleUnreachable => "REV-L023",
            Lint::IndirectEmptyTargets => "REV-L030",
            Lint::IndirectEscapingTarget => "REV-L031",
            Lint::ReturnSiteMissing => "REV-L040",
            Lint::ReturnNeverCalled => "REV-L041",
            Lint::CodeInWritableMemory => "REV-L050",
            Lint::OracleDynamicNotStatic => "REV-L060",
            Lint::OracleColdCode => "REV-L061",
            Lint::ChainParseFailure => "REV-L070",
            Lint::AuditOracleViolation => "REV-A000",
            Lint::AuditDigestCollision => "REV-A101",
            Lint::AuditTagAlias => "REV-A102",
            Lint::AuditRefinement => "REV-A110",
            Lint::AuditUnguardedEdge => "REV-A120",
            Lint::AuditCfiUnguarded => "REV-A121",
            Lint::AuditLatencyBound => "REV-A140",
        }
    }

    /// Short kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::AnalysisFailed => "analysis-failed",
            Lint::CoverageMissing => "coverage-missing",
            Lint::OrphanEntry => "orphan-entry",
            Lint::DuplicateEntry => "duplicate-entry",
            Lint::SplitLimitExceeded => "split-limit-exceeded",
            Lint::SplitInteriorTerminator => "split-interior-terminator",
            Lint::SagOverlap => "sag-overlap",
            Lint::SagNoModule => "sag-no-module",
            Lint::ModuleUntabled => "module-untabled",
            Lint::ModuleUnreachable => "module-unreachable",
            Lint::IndirectEmptyTargets => "indirect-empty-targets",
            Lint::IndirectEscapingTarget => "indirect-escaping-target",
            Lint::ReturnSiteMissing => "return-site-missing",
            Lint::ReturnNeverCalled => "return-never-called",
            Lint::CodeInWritableMemory => "code-in-writable-memory",
            Lint::OracleDynamicNotStatic => "oracle-dynamic-not-static",
            Lint::OracleColdCode => "oracle-cold-code",
            Lint::ChainParseFailure => "chain-parse-failure",
            Lint::AuditOracleViolation => "audit-oracle-violation",
            Lint::AuditDigestCollision => "audit-digest-collision",
            Lint::AuditTagAlias => "audit-tag-alias",
            Lint::AuditRefinement => "audit-refinement",
            Lint::AuditUnguardedEdge => "audit-unguarded-edge",
            Lint::AuditCfiUnguarded => "audit-cfi-unguarded",
            Lint::AuditLatencyBound => "audit-latency-bound",
        }
    }

    /// The lint's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Lint::AnalysisFailed
            | Lint::CoverageMissing
            | Lint::SplitLimitExceeded
            | Lint::SplitInteriorTerminator
            | Lint::SagOverlap
            | Lint::SagNoModule
            | Lint::ModuleUntabled
            | Lint::IndirectEmptyTargets
            | Lint::IndirectEscapingTarget
            | Lint::ReturnSiteMissing
            | Lint::CodeInWritableMemory
            | Lint::ChainParseFailure
            | Lint::OracleDynamicNotStatic
            | Lint::AuditOracleViolation
            | Lint::AuditUnguardedEdge => Severity::Error,
            Lint::OrphanEntry
            | Lint::DuplicateEntry
            | Lint::ModuleUnreachable
            | Lint::ReturnNeverCalled
            | Lint::AuditDigestCollision => Severity::Warning,
            Lint::OracleColdCode
            | Lint::AuditTagAlias
            | Lint::AuditRefinement
            | Lint::AuditCfiUnguarded
            | Lint::AuditLatencyBound => Severity::Info,
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which catalogue entry fired.
    pub lint: Lint,
    /// Module name the finding concerns, if any.
    pub module: Option<String>,
    /// Address the finding anchors to (BB address, target, or base).
    pub addr: Option<u64>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Suggested fix, when one is mechanical.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with just a message.
    pub fn new<S: Into<String>>(lint: Lint, message: S) -> Self {
        Diagnostic { lint, module: None, addr: None, message: message.into(), hint: None }
    }

    /// Attaches the module name.
    pub fn module<S: Into<String>>(mut self, module: S) -> Self {
        self.module = Some(module.into());
        self
    }

    /// Attaches the anchor address.
    pub fn addr(mut self, addr: u64) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Attaches a fix hint.
    pub fn hint<S: Into<String>>(mut self, hint: S) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// The finding's severity (fixed per lint).
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.lint.code())?;
        if let Some(m) = &self.module {
            write!(f, " {m}")?;
        }
        if let Some(a) = self.addr {
            write!(f, " @ {a:#x}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(h) = &self.hint {
            write!(f, " (fix: {h})")?;
        }
        Ok(())
    }
}

/// A collection of findings plus renderers and gate predicates.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in emission order until [`Report::sort`].
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding from `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == severity).count()
    }

    /// Number of error-severity findings — the preflight gate quantity.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// `true` when no error-severity finding exists (warnings and info
    /// pass the gate).
    pub fn passes_gate(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings with a given code (test helper).
    pub fn with_lint(&self, lint: Lint) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == lint).collect()
    }

    /// Orders findings by severity (errors first), then module, address
    /// and code — a stable presentation order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then_with(|| a.module.cmp(&b.module))
                .then_with(|| a.addr.cmp(&b.addr))
                .then_with(|| a.lint.code().cmp(b.lint.code()))
        });
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out
    }

    /// Machine-readable rendering (single line of JSON).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"name\":\"{}\"",
                d.severity(),
                d.lint.code(),
                d.lint.name()
            ));
            if let Some(m) = &d.module {
                out.push_str(&format!(",\"module\":\"{}\"", json_escape(m)));
            }
            if let Some(a) = d.addr {
                out.push_str(&format!(",\"addr\":\"{a:#x}\""));
            }
            out.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
            if let Some(h) = &d.hint {
                out.push_str(&format!(",\"hint\":\"{}\"", json_escape(h)));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"summary\":{{\"error\":{},\"warning\":{},\"info\":{}}}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = Lint::ALL.iter().map(|l| l.code()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate lint codes");
        assert_eq!(Lint::CoverageMissing.code(), "REV-L001");
        assert_eq!(Lint::OracleDynamicNotStatic.code(), "REV-L060");
    }

    #[test]
    fn severity_ordering_and_gate() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let mut r = Report::new();
        assert!(r.passes_gate());
        r.push(Diagnostic::new(Lint::OrphanEntry, "x"));
        assert!(r.passes_gate(), "warnings pass the gate");
        r.push(Diagnostic::new(Lint::CoverageMissing, "y").addr(0x10).module("m"));
        assert!(!r.passes_gate());
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Lint::CoverageMissing, "block \"a\"\nmissing")
                .module("mod\\1")
                .addr(0x1234)
                .hint("rebuild"),
        );
        let j = r.render_json();
        assert!(j.contains("\"code\":\"REV-L001\""));
        assert!(j.contains("\"addr\":\"0x1234\""));
        assert!(j.contains("block \\\"a\\\"\\nmissing"));
        assert!(j.contains("mod\\\\1"));
        assert!(j.contains("\"summary\":{\"error\":1,\"warning\":0,\"info\":0}"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Lint::OracleColdCode, "cold"));
        r.push(Diagnostic::new(Lint::OrphanEntry, "orphan"));
        r.push(Diagnostic::new(Lint::CoverageMissing, "missing"));
        r.sort();
        assert_eq!(r.diagnostics[0].lint, Lint::CoverageMissing);
        assert_eq!(r.diagnostics[2].lint, Lint::OracleColdCode);
    }
}
